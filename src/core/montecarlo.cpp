#include "core/montecarlo.hpp"

#include <stdexcept>
#include <vector>

#include "obs/obs.hpp"
#include "util/rng.hpp"
#include "util/task_pool.hpp"

namespace ftbesst::core {

EnsembleResult run_ensemble(const AppBEO& app, const ArchBEO& arch,
                            EngineOptions options, std::size_t trials,
                            unsigned threads) {
  FTBESST_OBS_SPAN("core.run_ensemble");
  if (trials == 0) throw std::invalid_argument("need at least one trial");
  options.monte_carlo = true;
  static const obs::Counter ensembles = obs::counter("mc.ensembles");
  static const obs::Counter trial_count = obs::counter("mc.trials");
  ensembles.add();

  // Per-trial seeds are derived up front so the result is identical no
  // matter how trials are scheduled across workers.
  util::Rng seeder(options.seed);
  std::vector<std::uint64_t> seeds(trials);
  for (std::size_t t = 0; t < trials; ++t) seeds[t] = seeder.split(t)();

  std::vector<RunResult> runs(trials);
  auto run_trial = [&](std::size_t t) {
    EngineOptions per_trial = options;
    per_trial.seed = seeds[t];
    runs[t] = run_bsp(app, arch, per_trial);
    trial_count.add();
  };
  if (threads == 1 || trials == 1) {
    for (std::size_t t = 0; t < trials; ++t) run_trial(t);
  } else {
    // One shared-pool task per trial. The pool claims tasks dynamically, so
    // slow trials (injected faults, rollbacks) never idle a worker the way
    // the old static `t += threads` striding did — and when this ensemble
    // itself runs inside a run_dse point task, trials simply interleave
    // with other points on the same workers instead of spawning a nested
    // thread set that oversubscribes the machine.
    util::TaskGroup group;
    for (std::size_t t = 0; t < trials; ++t)
      group.run([&run_trial, t] { run_trial(t); });
    group.wait();
  }

  EnsembleResult out;
  out.totals.reserve(trials);
  out.mean_timestep_end.assign(static_cast<std::size_t>(app.timesteps()),
                               0.0);
  for (const RunResult& r : runs) {
    out.totals.push_back(r.total_seconds);
    out.mean_faults += static_cast<double>(r.faults);
    out.mean_rollbacks += static_cast<double>(r.rollbacks);
    out.mean_full_restarts += static_cast<double>(r.full_restarts);
    if (!r.completed) ++out.incomplete_trials;
    for (std::size_t i = 0; i < out.mean_timestep_end.size() &&
                            i < r.timestep_end_times.size();
         ++i)
      out.mean_timestep_end[i] += r.timestep_end_times[i];
  }
  const auto n = static_cast<double>(trials);
  for (double& x : out.mean_timestep_end) x /= n;
  out.mean_faults /= n;
  out.mean_rollbacks /= n;
  out.mean_full_restarts /= n;
  out.total = util::summarize(out.totals);
  // Injection statistics, accumulated separately (after the original
  // aggregate so the floating-point reduction order of the pre-existing
  // fields — and therefore the golden corpus bytes — is untouched).
  for (std::size_t t = 0; t < trials; ++t) {
    const RunResult& r = runs[t];
    out.mean_lost_work += r.lost_work_seconds;
    for (std::size_t l = 0; l < 4; ++l)
      out.mean_recoveries_by_level[l] +=
          static_cast<double>(r.recoveries_by_level[l]);
    out.fault_log.append_trial(r.fault_log,
                               static_cast<std::int64_t>(t));
  }
  out.mean_lost_work /= n;
  for (double& x : out.mean_recoveries_by_level) x /= n;
  return out;
}

}  // namespace ftbesst::core
