#include "core/montecarlo.hpp"

#include <stdexcept>
#include <thread>
#include <vector>

#include "util/rng.hpp"

namespace ftbesst::core {

EnsembleResult run_ensemble(const AppBEO& app, const ArchBEO& arch,
                            EngineOptions options, std::size_t trials,
                            unsigned threads) {
  if (trials == 0) throw std::invalid_argument("need at least one trial");
  options.monte_carlo = true;
  if (threads == 0) threads = std::thread::hardware_concurrency();
  threads = std::max(1u, std::min<unsigned>(threads, trials));

  // Per-trial seeds are derived up front so the result is identical no
  // matter how trials are scheduled across threads.
  util::Rng seeder(options.seed);
  std::vector<std::uint64_t> seeds(trials);
  for (std::size_t t = 0; t < trials; ++t) seeds[t] = seeder.split(t)();

  std::vector<RunResult> runs(trials);
  auto worker = [&](unsigned worker_index) {
    for (std::size_t t = worker_index; t < trials; t += threads) {
      EngineOptions per_trial = options;
      per_trial.seed = seeds[t];
      runs[t] = run_bsp(app, arch, per_trial);
    }
  };
  if (threads == 1) {
    worker(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned w = 0; w < threads; ++w) pool.emplace_back(worker, w);
    for (auto& t : pool) t.join();
  }

  EnsembleResult out;
  out.totals.reserve(trials);
  out.mean_timestep_end.assign(static_cast<std::size_t>(app.timesteps()),
                               0.0);
  for (const RunResult& r : runs) {
    out.totals.push_back(r.total_seconds);
    out.mean_faults += static_cast<double>(r.faults);
    out.mean_rollbacks += static_cast<double>(r.rollbacks);
    out.mean_full_restarts += static_cast<double>(r.full_restarts);
    if (!r.completed) ++out.incomplete_trials;
    for (std::size_t i = 0; i < out.mean_timestep_end.size() &&
                            i < r.timestep_end_times.size();
         ++i)
      out.mean_timestep_end[i] += r.timestep_end_times[i];
  }
  const auto n = static_cast<double>(trials);
  for (double& x : out.mean_timestep_end) x /= n;
  out.mean_faults /= n;
  out.mean_rollbacks /= n;
  out.mean_full_restarts /= n;
  out.total = util::summarize(out.totals);
  return out;
}

}  // namespace ftbesst::core
