#pragma once
// Monte-Carlo ensemble driver.
//
// "Because actual machine performance is non-deterministic due to noise and
// other factors, BE-SST implements Monte Carlo simulations to capture the
// variance that exists in the calibration samples ... each of the points on
// the graph represent a distribution of results."

#include <array>
#include <cstdint>
#include <vector>

#include "core/engine_bsp.hpp"
#include "ft/fault_log.hpp"
#include "util/stats.hpp"

namespace ftbesst::core {

struct EnsembleResult {
  util::Summary total;                ///< distribution of total runtime (s)
  std::vector<double> totals;         ///< per-trial totals
  std::vector<double> mean_timestep_end;  ///< mean cumulative trace
  double mean_faults = 0.0;
  double mean_rollbacks = 0.0;
  double mean_full_restarts = 0.0;
  std::size_t incomplete_trials = 0;  ///< trials that hit the horizon
  // --- injection statistics (all zero when inject_faults is off). These
  // are additions on top of the original aggregate; the verify corpus text
  // format serializes explicit fields only, so appending here is
  // corpus-safe. ---
  double mean_lost_work = 0.0;  ///< mean discarded execution per trial (s)
  /// Mean rollbacks that restored a level-L checkpoint, at index L-1.
  std::array<double, 4> mean_recoveries_by_level{};
  /// Every trial's fault records merged, re-tagged with the trial index —
  /// the campaign log exported by `ftbesst inject` (CSV / replay text).
  ft::FaultLog fault_log;
};

/// Run `trials` Monte-Carlo replications of the coarse engine with
/// independent seeds derived from options.seed. Each trial draws fresh
/// model noise (and, when enabled, a fresh fault timeline). Trials are
/// independent and run as tasks on the shared util::TaskPool, which claims
/// them dynamically and composes with an enclosing run_dse sweep without
/// oversubscription. `threads`: 0 (default) = shared pool, 1 = inline on
/// the calling thread; other values are a deprecated compatibility hint
/// that also routes through the pool (the raw per-call std::thread path is
/// gone). Results are bit-identical for a fixed options.seed regardless of
/// threads because per-trial seeds are derived before scheduling.
[[nodiscard]] EnsembleResult run_ensemble(const AppBEO& app,
                                          const ArchBEO& arch,
                                          EngineOptions options,
                                          std::size_t trials,
                                          unsigned threads = 0);

}  // namespace ftbesst::core
