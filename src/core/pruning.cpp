#include "core/pruning.hpp"

#include <algorithm>
#include <stdexcept>

namespace ftbesst::core {

std::vector<PruneDecision> prune_design_space(
    const std::vector<DsePoint>& points, const PruneOptions& options) {
  if (points.empty()) return {};
  if (options.keep_fraction <= 0.0 || options.keep_fraction > 1.0)
    throw std::invalid_argument("keep_fraction must be in (0,1]");
  if (options.uncertainty_threshold < 0.0)
    throw std::invalid_argument("uncertainty_threshold must be >= 0");

  const auto objective =
      options.objective
          ? options.objective
          : [](const DsePoint& p) { return p.ensemble.total.mean; };

  std::vector<PruneDecision> decisions;
  decisions.reserve(points.size());
  for (const DsePoint& p : points) {
    PruneDecision d;
    d.point = &p;
    d.objective = objective(p);
    d.uncertainty = p.ensemble.total.mean > 0.0
                        ? p.ensemble.total.stddev / p.ensemble.total.mean
                        : 0.0;
    decisions.push_back(d);
  }

  // Rank by objective to find the keep cutoff.
  std::vector<double> objectives;
  objectives.reserve(decisions.size());
  for (const auto& d : decisions) objectives.push_back(d.objective);
  std::vector<double> sorted = objectives;
  std::sort(sorted.begin(), sorted.end());
  const auto keep_count = static_cast<std::size_t>(
      std::max<double>(1.0, options.keep_fraction *
                                static_cast<double>(decisions.size())));
  const double cutoff = sorted[std::min(keep_count, sorted.size()) - 1];

  for (auto& d : decisions) {
    if (d.uncertainty > options.uncertainty_threshold) {
      // Cannot be trusted either way at this granularity.
      d.verdict = Verdict::kDetailStudy;
    } else if (d.objective <= cutoff) {
      d.verdict = Verdict::kKeep;
    } else {
      d.verdict = Verdict::kPrune;
    }
  }
  return decisions;
}

}  // namespace ftbesst::core
