#pragma once
// Design-space reduction — the point of coarse-grained MODSIM.
//
// "BE-SST ... facilitates preliminary exploration & reduction of large
// design spaces, particularly by highlighting areas of the space for
// detailed study and pruning less optimal areas." After a DSE sweep, the
// designer keeps (a) the best candidates by objective, and (b) the points
// whose prediction is least trustworthy (high Monte-Carlo spread, or at the
// edge of the validated region) — those are the Fig. 5D/6D "areas of
// interest for more detailed study with fine-grained simulators".

#include <functional>
#include <vector>

#include "core/workflow.hpp"

namespace ftbesst::core {

enum class Verdict {
  kKeep,         ///< promising: carry into the next design round
  kDetailStudy,  ///< uncertain: hand to a fine-grained simulator
  kPrune         ///< dominated: drop
};

struct PruneDecision {
  const DsePoint* point = nullptr;
  Verdict verdict = Verdict::kPrune;
  double objective = 0.0;     ///< lower is better
  double uncertainty = 0.0;   ///< relative Monte-Carlo spread (cv)
};

struct PruneOptions {
  /// Fraction of points (by objective rank) to keep.
  double keep_fraction = 0.25;
  /// Points whose coefficient of variation (stddev/mean) exceeds this are
  /// flagged for detailed study instead of being trusted either way.
  double uncertainty_threshold = 0.2;
  /// Objective; defaults to mean total runtime.
  std::function<double(const DsePoint&)> objective;
};

/// Classify every DSE point. Deterministic: ties broken by sweep order.
[[nodiscard]] std::vector<PruneDecision> prune_design_space(
    const std::vector<DsePoint>& points, const PruneOptions& options = {});

}  // namespace ftbesst::core
