#pragma once
// FT-BESST umbrella header — the full public API in one include.
//
// Layering (each layer depends only on those above it):
//
//   util/      deterministic RNG, statistics, tables, args, config, logging
//   sim/       SST-like parallel discrete-event kernel (components, links,
//              serial + conservative-parallel engines, named statistics)
//   net/       topologies (fat-tree, torus), closed-form collective models,
//              executed DES networks (switches/routers with per-port
//              serialization)
//   model/     calibration datasets, interpolation tables, feature / power-
//              law / symbolic regression, noise calibration, k-fold CV,
//              text serialization
//   ft/        FTI checkpoint semantics + costs, executable FTI runtime,
//              GF(256)+Reed-Solomon, fault processes and log analysis,
//              Young/Daly and multilevel plan optimization
//   analytic/  reliability-aware scaling laws (related-work baselines)
//   core/      BE-SST proper: AppBEO/ArchBEO, coarse + discrete-event
//              engines, Monte-Carlo ensembles, workflow, DSE, pruning
//   apps/      LULESH_FTI / CMT-bone / Stencil3D builders, synthetic
//              testbeds, the executable MiniHydro kernel + LocalTestbed
//
// Typical use: include this header, follow examples/quickstart.cpp.

#include "analytic/speedup.hpp"
#include "apps/cmtbone.hpp"
#include "apps/kernels.hpp"
#include "apps/lulesh.hpp"
#include "apps/minihydro.hpp"
#include "apps/stencil3d.hpp"
#include "apps/testbed.hpp"
#include "apps/testbed_local.hpp"
#include "core/arch.hpp"
#include "core/beo.hpp"
#include "core/engine_bsp.hpp"
#include "core/engine_des.hpp"
#include "core/montecarlo.hpp"
#include "core/pruning.hpp"
#include "core/trace.hpp"
#include "core/workflow.hpp"
#include "ft/checkpoint_cost.hpp"
#include "ft/fault_log.hpp"
#include "ft/faults.hpp"
#include "ft/fti.hpp"
#include "ft/fti_runtime.hpp"
#include "ft/gf256.hpp"
#include "ft/multilevel_opt.hpp"
#include "ft/reed_solomon.hpp"
#include "ft/young_daly.hpp"
#include "model/crossval.hpp"
#include "model/dataset.hpp"
#include "model/expr.hpp"
#include "model/feature_model.hpp"
#include "model/fitting.hpp"
#include "model/perf_model.hpp"
#include "model/powerlaw.hpp"
#include "model/serialize.hpp"
#include "model/symreg.hpp"
#include "model/table_model.hpp"
#include "net/comm.hpp"
#include "net/des_network.hpp"
#include "net/des_torus.hpp"
#include "net/topology.hpp"
#include "sim/component.hpp"
#include "sim/event.hpp"
#include "sim/simulation.hpp"
#include "sim/time.hpp"
#include "util/args.hpp"
#include "util/config.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
