#pragma once
// Discrete-event interconnect: fat-tree switches as PDES components.
//
// The analytic CommModel answers "how long does a transfer take" in closed
// form; this substrate *executes* transfers through switch components with
// per-output-port serialization, so contention emerges from the event
// timeline instead of a formula — the fidelity rung between behavioural
// models and a flit-level simulator, and the hook for architectural DSE of
// the network itself (the paper's planned Quartz fat-tree modeling).
//
// Topology realized: two-stage fat-tree. Endpoint NICs attach to leaf
// switches; every leaf connects to every spine. Routing is deterministic
// ECMP (spine chosen by flow hash). Each switch output port is a
// store-and-forward serializer: a message occupies the port for
// bytes/bandwidth seconds; later messages queue behind it.

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "net/comm.hpp"
#include "net/topology.hpp"
#include "sim/fold.hpp"
#include "sim/simulation.hpp"

namespace ftbesst::net {

/// A transfer traversing the network.
struct FlowMsg final : sim::Payload {
  NodeId src = 0;
  NodeId dst = 0;
  std::uint64_t bytes = 0;
  std::uint64_t tag = 0;
};

/// Delivery callback: invoked at the simulated arrival time on the
/// destination node.
using DeliveryHandler =
    std::function<void(const FlowMsg&, sim::SimTime arrival)>;

/// Builds and owns the switch/NIC components for a TwoStageFatTree inside a
/// Simulation. The Simulation and topology must outlive the network.
class DesNetwork {
 public:
  DesNetwork(sim::Simulation& sim, const TwoStageFatTree& topo,
             CommParams params);

  /// Inject a transfer at `time` (absolute). Delivery is reported through
  /// the handler registered for the destination node.
  void send(NodeId src, NodeId dst, std::uint64_t bytes, sim::SimTime time,
            std::uint64_t tag = 0);

  /// Register the delivery handler for a node (replaces any previous one).
  void on_delivery(NodeId node, DeliveryHandler handler);

  [[nodiscard]] const TwoStageFatTree& topology() const noexcept {
    return *topo_;
  }
  /// Total messages delivered so far.
  [[nodiscard]] std::uint64_t delivered() const noexcept;

  /// Detection-only symmetry metadata: one FoldSpec per substrate
  /// component, ordered [NICs 0..num_nodes), leaves, spines], with peers
  /// as indices into the returned vector. Ports are canonicalized to roles
  /// (0 = down/host side, 1 = up side) because every port of a role is
  /// behaviourally identical under the store-and-forward serialization
  /// model. On a symmetric fat-tree, sim::plan_folds collapses this to
  /// exactly three equivalence classes — NIC, leaf, spine. The *executed*
  /// substrate never folds at runtime (ECMP spine choice and delivery
  /// handlers depend on concrete node ids — the reason run_des disables
  /// rank folding under use_des_network); this metadata drives fold
  /// planning, analyses and tests.
  [[nodiscard]] std::vector<sim::FoldSpec> fold_specs() const;

 private:
  class Nic;
  class Switch;

  sim::Simulation* sim_;
  const TwoStageFatTree* topo_;
  CommParams params_;
  std::vector<Nic*> nics_;        // one per node
  std::vector<Switch*> leaves_;   // one per leaf
  std::vector<Switch*> spines_;   // one per spine
};

}  // namespace ftbesst::net
