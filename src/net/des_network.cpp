#include "net/des_network.hpp"

#include <stdexcept>
#include <string>

namespace ftbesst::net {

namespace {
constexpr sim::PortId kInject = 1;  // NIC: local injection from send()

std::uint64_t flow_hash(NodeId src, NodeId dst) {
  auto x = static_cast<std::uint64_t>(src) * 0x9e3779b97f4a7c15ULL +
           static_cast<std::uint64_t>(dst);
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  return x;
}
}  // namespace

/// Shared serializer bookkeeping for store-and-forward output ports.
class PortSerializer {
 public:
  explicit PortSerializer(double bandwidth) : bandwidth_(bandwidth) {}

  /// Returns the extra delay (beyond link latency) for a message leaving
  /// now: queueing behind the port plus its own serialization.
  [[nodiscard]] sim::SimTime occupy(std::vector<sim::SimTime>& busy,
                                    std::size_t port, sim::SimTime now,
                                    std::uint64_t bytes) const {
    if (busy.size() <= port) busy.resize(port + 1, 0);
    const sim::SimTime start = std::max(now, busy[port]);
    const sim::SimTime ser =
        sim::from_seconds(static_cast<double>(bytes) / bandwidth_);
    busy[port] = start + ser;
    return busy[port] - now;
  }

 private:
  double bandwidth_;
};

class DesNetwork::Nic final : public sim::Component {
 public:
  Nic(NodeId node, PortSerializer serializer)
      : Component("nic" + std::to_string(node)),
        node_(node),
        serializer_(serializer) {}

  void handle_event(sim::PortId port,
                    std::unique_ptr<sim::Payload> payload) override {
    auto* msg = dynamic_cast<FlowMsg*>(payload.get());
    if (!msg) throw std::logic_error("NIC received a non-flow payload");
    if (port == kInject) {
      if (msg->dst == node_) {  // loopback, no wire involved
        deliver(*msg);
        return;
      }
      const sim::SimTime delay =
          serializer_.occupy(uplink_busy_, 0, now(), msg->bytes);
      bump("nic_msgs_injected");
      bump("nic_bytes_injected", msg->bytes);
      send(0, std::move(payload), delay);
      return;
    }
    deliver(*msg);
  }

  void set_handler(DeliveryHandler handler) { handler_ = std::move(handler); }
  [[nodiscard]] std::uint64_t delivered() const noexcept { return delivered_; }

 private:
  void deliver(const FlowMsg& msg) {
    ++delivered_;
    bump("nic_msgs_delivered");
    bump("nic_bytes_delivered", msg.bytes);
    if (handler_) handler_(msg, now());
  }

  NodeId node_;
  PortSerializer serializer_;
  std::vector<sim::SimTime> uplink_busy_;
  DeliveryHandler handler_;
  std::uint64_t delivered_ = 0;
};

class DesNetwork::Switch final : public sim::Component {
 public:
  enum class Role { kLeaf, kSpine };

  Switch(std::string name, Role role, const TwoStageFatTree& topo,
         PortSerializer serializer, NodeId my_leaf = -1)
      : Component(std::move(name)),
        role_(role),
        topo_(&topo),
        serializer_(serializer),
        my_leaf_(my_leaf) {}

  void handle_event(sim::PortId,
                    std::unique_ptr<sim::Payload> payload) override {
    auto* msg = dynamic_cast<FlowMsg*>(payload.get());
    if (!msg) throw std::logic_error("switch received a non-flow payload");
    const sim::PortId out = route(*msg);
    const sim::SimTime delay =
        serializer_.occupy(busy_, out, now(), msg->bytes);
    bump("switch_msgs_forwarded");
    bump("switch_bytes_forwarded", msg->bytes);
    send(out, std::move(payload), delay);
  }

 private:
  [[nodiscard]] sim::PortId route(const FlowMsg& msg) const {
    const NodeId down = topo_->num_nodes() / topo_->num_leaves();
    if (role_ == Role::kSpine)
      return static_cast<sim::PortId>(topo_->leaf_of(msg.dst));
    // Leaf: deliver down if the destination lives here, else ECMP up.
    if (topo_->leaf_of(msg.dst) == my_leaf_)
      return static_cast<sim::PortId>(msg.dst % down);
    return static_cast<sim::PortId>(
        down + flow_hash(msg.src, msg.dst) %
                   static_cast<std::uint64_t>(topo_->num_spines()));
  }

  Role role_;
  const TwoStageFatTree* topo_;
  PortSerializer serializer_;
  NodeId my_leaf_;
  std::vector<sim::SimTime> busy_;
};

DesNetwork::DesNetwork(sim::Simulation& sim, const TwoStageFatTree& topo,
                       CommParams params)
    : sim_(&sim), topo_(&topo), params_(params) {
  if (params_.bandwidth <= 0)
    throw std::invalid_argument("bandwidth must be positive");
  const PortSerializer serializer(params_.bandwidth);
  const NodeId down = topo.num_nodes() / topo.num_leaves();

  for (NodeId n = 0; n < topo.num_nodes(); ++n)
    nics_.push_back(sim.add_component<Nic>(n, serializer));
  for (NodeId l = 0; l < topo.num_leaves(); ++l)
    leaves_.push_back(sim.add_component<Switch>(
        "leaf" + std::to_string(l), Switch::Role::kLeaf, topo, serializer,
        l));
  for (NodeId s = 0; s < topo.num_spines(); ++s)
    spines_.push_back(sim.add_component<Switch>(
        "spine" + std::to_string(s), Switch::Role::kSpine, topo, serializer));

  const sim::SimTime inj = sim::from_seconds(params_.injection_latency);
  const sim::SimTime hop = sim::from_seconds(params_.sw_latency);
  // NIC <-> leaf: NIC port 0 to leaf port (local index).
  for (NodeId n = 0; n < topo.num_nodes(); ++n)
    sim.connect(nics_[static_cast<std::size_t>(n)]->id(), 0,
                leaves_[static_cast<std::size_t>(topo.leaf_of(n))]->id(),
                static_cast<sim::PortId>(n % down), std::max<sim::SimTime>(
                    inj, 1));
  // Leaf <-> spine: leaf port (down + s) to spine port (leaf index).
  for (NodeId l = 0; l < topo.num_leaves(); ++l)
    for (NodeId s = 0; s < topo.num_spines(); ++s)
      sim.connect(leaves_[static_cast<std::size_t>(l)]->id(),
                  static_cast<sim::PortId>(down + s),
                  spines_[static_cast<std::size_t>(s)]->id(),
                  static_cast<sim::PortId>(l), std::max<sim::SimTime>(hop, 1));
}

void DesNetwork::send(NodeId src, NodeId dst, std::uint64_t bytes,
                      sim::SimTime time, std::uint64_t tag) {
  if (src < 0 || src >= topo_->num_nodes() || dst < 0 ||
      dst >= topo_->num_nodes())
    throw std::out_of_range("DesNetwork::send: node out of range");
  auto msg = std::make_unique<FlowMsg>();
  msg->src = src;
  msg->dst = dst;
  msg->bytes = bytes;
  msg->tag = tag;
  sim_->schedule(sim::kNoComponent,
                 nics_[static_cast<std::size_t>(src)]->id(), kInject, time,
                 std::move(msg));
}

void DesNetwork::on_delivery(NodeId node, DeliveryHandler handler) {
  if (node < 0 || node >= topo_->num_nodes())
    throw std::out_of_range("DesNetwork::on_delivery: node out of range");
  nics_[static_cast<std::size_t>(node)]->set_handler(std::move(handler));
}

std::uint64_t DesNetwork::delivered() const noexcept {
  std::uint64_t total = 0;
  for (const Nic* nic : nics_) total += nic->delivered();
  return total;
}

std::vector<sim::FoldSpec> DesNetwork::fold_specs() const {
  // Port roles in the metadata: 0 = down/host side, 1 = up side.
  constexpr std::uint32_t kDown = 0;
  constexpr std::uint32_t kUp = 1;
  const NodeId nodes = topo_->num_nodes();
  const NodeId nleaves = topo_->num_leaves();
  const NodeId nspines = topo_->num_spines();
  const auto leaf0 = static_cast<std::size_t>(nodes);
  const std::size_t spine0 = leaf0 + static_cast<std::size_t>(nleaves);

  std::uint64_t config = sim::kFoldDigestSeed;
  config = sim::fold_digest_f64(config, params_.bandwidth);
  config = sim::fold_digest_f64(config, params_.injection_latency);
  config = sim::fold_digest_f64(config, params_.sw_latency);

  std::vector<sim::FoldSpec> specs(spine0 + static_cast<std::size_t>(nspines));
  auto sign = [&](std::size_t i, const char* type) {
    specs[i].signature.type = type;
    specs[i].signature.behavior_digest = sim::kFoldDigestSeed;
    specs[i].signature.config_digest = config;
  };
  for (NodeId n = 0; n < nodes; ++n) sign(static_cast<std::size_t>(n), "nic");
  for (NodeId l = 0; l < nleaves; ++l) sign(leaf0 + l, "leaf-switch");
  for (NodeId s = 0; s < nspines; ++s) sign(spine0 + s, "spine-switch");

  // Mirror the constructor's wiring, including its minimum-1-tick clamps.
  const auto inj = std::max<sim::SimTime>(
      sim::from_seconds(params_.injection_latency), 1);
  const auto hop =
      std::max<sim::SimTime>(sim::from_seconds(params_.sw_latency), 1);
  for (NodeId n = 0; n < nodes; ++n) {
    const std::size_t leaf = leaf0 + static_cast<std::size_t>(topo_->leaf_of(n));
    specs[static_cast<std::size_t>(n)].links.push_back(
        sim::FoldEndpoint{kUp, kDown, inj, leaf});
    specs[leaf].links.push_back(
        sim::FoldEndpoint{kDown, kUp, inj, static_cast<std::size_t>(n)});
  }
  for (NodeId l = 0; l < nleaves; ++l)
    for (NodeId s = 0; s < nspines; ++s) {
      specs[leaf0 + l].links.push_back(
          sim::FoldEndpoint{kUp, kDown, hop, spine0 + s});
      specs[spine0 + s].links.push_back(
          sim::FoldEndpoint{kDown, kUp, hop, leaf0 + l});
    }
  return specs;
}

}  // namespace ftbesst::net
