#pragma once
// Interconnect topologies.
//
// BE-SST performs architectural DSE by swapping interconnect models under an
// unchanged application model. We provide the two topologies the paper's
// systems use: a two-stage bidirectional fat-tree (Quartz, Omni-Path) and a
// k-ary n-dimensional torus (Vulcan, BlueGene/Q 5-D torus). The coarse
// quantity a behavioural model needs from a topology is the hop count
// between endpoints and a contention summary, not per-flit routing.

#include <cstdint>
#include <string>
#include <vector>

namespace ftbesst::net {

using NodeId = std::int64_t;

class Topology {
 public:
  virtual ~Topology() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual NodeId num_nodes() const noexcept = 0;
  /// Switch-to-switch hops on the route between nodes `a` and `b`
  /// (0 when a == b). Endpoint injection/ejection is accounted separately
  /// by the communication model.
  [[nodiscard]] virtual int hops(NodeId a, NodeId b) const = 0;
  /// Maximum hop count between any two nodes (network diameter).
  [[nodiscard]] virtual int diameter() const = 0;
  /// Number of links crossing a worst-case bisection — used by the
  /// communication model to estimate contention under global traffic.
  [[nodiscard]] virtual double bisection_links() const = 0;

 protected:
  void check_node(NodeId n) const;
};

/// Two-stage bidirectional fat-tree (leaf/spine), as deployed on Quartz:
/// nodes attach to leaf ("edge") switches; every leaf connects to every
/// spine ("core") switch. Minimal routes: same leaf -> 2 hops
/// (node-leaf-node); different leaves -> 4 hops (node-leaf-spine-leaf-node).
class TwoStageFatTree final : public Topology {
 public:
  /// `nodes_per_leaf` endpoints under each of `num_leaves` leaf switches,
  /// with `num_spines` spine switches. All must be >= 1.
  TwoStageFatTree(NodeId num_leaves, NodeId nodes_per_leaf, NodeId num_spines);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] NodeId num_nodes() const noexcept override {
    return num_leaves_ * nodes_per_leaf_;
  }
  [[nodiscard]] int hops(NodeId a, NodeId b) const override;
  [[nodiscard]] int diameter() const override;
  [[nodiscard]] double bisection_links() const override;

  [[nodiscard]] NodeId leaf_of(NodeId node) const;
  [[nodiscard]] NodeId num_leaves() const noexcept { return num_leaves_; }
  [[nodiscard]] NodeId num_spines() const noexcept { return num_spines_; }
  /// Ratio of downlinks to uplinks per leaf (oversubscription); > 1 means
  /// the spine level is a bandwidth bottleneck under all-to-all traffic.
  [[nodiscard]] double oversubscription() const noexcept;

 private:
  NodeId num_leaves_;
  NodeId nodes_per_leaf_;
  NodeId num_spines_;
};

/// k-ary n-dimensional torus (e.g. Vulcan's 5-D torus). Nodes are laid out
/// in row-major order over `dims`; each dimension wraps.
class Torus final : public Topology {
 public:
  explicit Torus(std::vector<NodeId> dims);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] NodeId num_nodes() const noexcept override { return total_; }
  [[nodiscard]] int hops(NodeId a, NodeId b) const override;
  [[nodiscard]] int diameter() const override;
  [[nodiscard]] double bisection_links() const override;

  [[nodiscard]] const std::vector<NodeId>& dims() const noexcept {
    return dims_;
  }
  [[nodiscard]] std::vector<NodeId> coords(NodeId node) const;
  [[nodiscard]] NodeId node_at(const std::vector<NodeId>& coords) const;

 private:
  std::vector<NodeId> dims_;
  NodeId total_ = 1;
};

}  // namespace ftbesst::net
