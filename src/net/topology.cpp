#include "net/topology.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

namespace ftbesst::net {

void Topology::check_node(NodeId n) const {
  if (n < 0 || n >= num_nodes())
    throw std::out_of_range("node id out of range: " + std::to_string(n));
}

TwoStageFatTree::TwoStageFatTree(NodeId num_leaves, NodeId nodes_per_leaf,
                                 NodeId num_spines)
    : num_leaves_(num_leaves),
      nodes_per_leaf_(nodes_per_leaf),
      num_spines_(num_spines) {
  if (num_leaves < 1 || nodes_per_leaf < 1 || num_spines < 1)
    throw std::invalid_argument("fat-tree dimensions must be >= 1");
}

std::string TwoStageFatTree::name() const {
  return "fattree2(" + std::to_string(num_leaves_) + "x" +
         std::to_string(nodes_per_leaf_) + ",spines=" +
         std::to_string(num_spines_) + ")";
}

NodeId TwoStageFatTree::leaf_of(NodeId node) const {
  check_node(node);
  return node / nodes_per_leaf_;
}

int TwoStageFatTree::hops(NodeId a, NodeId b) const {
  check_node(a);
  check_node(b);
  if (a == b) return 0;
  return leaf_of(a) == leaf_of(b) ? 2 : 4;
}

int TwoStageFatTree::diameter() const { return num_leaves_ > 1 ? 4 : 2; }

double TwoStageFatTree::bisection_links() const {
  // Cutting the spine level in half: each leaf keeps links to half the
  // spines across the cut.
  return static_cast<double>(num_leaves_) *
         (static_cast<double>(num_spines_) / 2.0);
}

double TwoStageFatTree::oversubscription() const noexcept {
  return static_cast<double>(nodes_per_leaf_) /
         static_cast<double>(num_spines_);
}

Torus::Torus(std::vector<NodeId> dims) : dims_(std::move(dims)) {
  if (dims_.empty()) throw std::invalid_argument("torus needs >= 1 dimension");
  for (NodeId d : dims_) {
    if (d < 1) throw std::invalid_argument("torus dimensions must be >= 1");
    total_ *= d;
  }
}

std::string Torus::name() const {
  std::string s = "torus(";
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    if (i) s += "x";
    s += std::to_string(dims_[i]);
  }
  return s + ")";
}

std::vector<NodeId> Torus::coords(NodeId node) const {
  check_node(node);
  std::vector<NodeId> c(dims_.size());
  for (std::size_t i = dims_.size(); i-- > 0;) {
    c[i] = node % dims_[i];
    node /= dims_[i];
  }
  return c;
}

NodeId Torus::node_at(const std::vector<NodeId>& coords) const {
  if (coords.size() != dims_.size())
    throw std::invalid_argument("coordinate rank mismatch");
  NodeId node = 0;
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    if (coords[i] < 0 || coords[i] >= dims_[i])
      throw std::out_of_range("torus coordinate out of range");
    node = node * dims_[i] + coords[i];
  }
  return node;
}

int Torus::hops(NodeId a, NodeId b) const {
  const auto ca = coords(a);
  const auto cb = coords(b);
  int total = 0;
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    const NodeId direct = std::abs(ca[i] - cb[i]);
    total += static_cast<int>(std::min(direct, dims_[i] - direct));
  }
  return total;
}

int Torus::diameter() const {
  int total = 0;
  for (NodeId d : dims_) total += static_cast<int>(d / 2);
  return total;
}

double Torus::bisection_links() const {
  // Cut across the largest dimension: the cut is crossed twice per wrap.
  const NodeId largest = *std::max_element(dims_.begin(), dims_.end());
  return 2.0 * static_cast<double>(total_) / static_cast<double>(largest);
}

}  // namespace ftbesst::net
