#include "net/comm.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ftbesst::net {

namespace {
double log2_ceil(std::int64_t n) {
  return n <= 1 ? 0.0 : std::ceil(std::log2(static_cast<double>(n)));
}
}  // namespace

CommModel::CommModel(const Topology& topo, CommParams params)
    : topo_(&topo), params_(params) {
  if (params_.bandwidth <= 0.0)
    throw std::invalid_argument("bandwidth must be positive");
  if (params_.sw_latency < 0.0 || params_.injection_latency < 0.0 ||
      params_.congestion_gamma < 0.0)
    throw std::invalid_argument("latencies/gamma must be non-negative");
}

double CommModel::alpha(int hops) const noexcept {
  return params_.injection_latency + params_.sw_latency * hops;
}

double CommModel::ptp_time(NodeId a, NodeId b, std::uint64_t bytes) const {
  if (a == b) return 0.0;  // intra-node copies are part of the compute model
  const int h = topo_->hops(a, b);
  return alpha(h) + static_cast<double>(bytes) / params_.bandwidth;
}

double CommModel::contention_factor(double active_flows) const {
  const double capacity = std::max(1.0, topo_->bisection_links());
  const double excess = active_flows / capacity - 1.0;
  if (excess <= 0.0) return 1.0;
  return 1.0 + params_.congestion_gamma * excess * capacity /
                   std::max(1.0, capacity);
}

double CommModel::barrier_time(std::int64_t ranks) const {
  if (ranks <= 1) return 0.0;
  return log2_ceil(ranks) * alpha(topo_->diameter());
}

double CommModel::allreduce_time(std::int64_t ranks,
                                 std::uint64_t bytes) const {
  if (ranks <= 1) return 0.0;
  const double lat = 2.0 * log2_ceil(ranks) * alpha(topo_->diameter());
  const double bw = 2.0 * static_cast<double>(bytes) / params_.bandwidth;
  return lat + bw;
}

double CommModel::neighbor_exchange_time(std::int64_t ranks, int degree,
                                         std::uint64_t bytes) const {
  if (ranks <= 1 || degree <= 0) return 0.0;
  // Each rank sends `degree` messages; injection serializes them, and the
  // network applies contention if all ranks exchange at once.
  const double per_msg =
      alpha(topo_->diameter() / 2 + 1) +
      static_cast<double>(bytes) / params_.bandwidth;
  const double flows = static_cast<double>(ranks) * degree / 2.0;
  return per_msg * degree * contention_factor(flows);
}

double CommModel::broadcast_time(std::int64_t ranks,
                                 std::uint64_t bytes) const {
  if (ranks <= 1) return 0.0;
  return log2_ceil(ranks) *
         (alpha(topo_->diameter()) +
          static_cast<double>(bytes) / params_.bandwidth);
}

double CommModel::average_hops() const {
  const NodeId n = topo_->num_nodes();
  if (n <= 1) return 0.0;
  if (n <= 256) {
    double acc = 0.0;
    std::int64_t pairs = 0;
    for (NodeId a = 0; a < n; ++a)
      for (NodeId b = a + 1; b < n; ++b) {
        acc += topo_->hops(a, b);
        ++pairs;
      }
    return acc / static_cast<double>(pairs);
  }
  // Large networks: sample deterministic stratified pairs.
  double acc = 0.0;
  std::int64_t pairs = 0;
  const NodeId stride = std::max<NodeId>(1, n / 128);
  for (NodeId a = 0; a < n; a += stride)
    for (NodeId b = a + 1; b < n; b += stride) {
      acc += topo_->hops(a, b);
      ++pairs;
    }
  return pairs ? acc / static_cast<double>(pairs)
               : static_cast<double>(topo_->diameter()) / 2.0;
}

}  // namespace ftbesst::net
