#include "net/des_torus.hpp"

#include <stdexcept>
#include <string>

namespace ftbesst::net {

namespace {
constexpr sim::PortId kInject = 1u << 16;  // well above any neighbour port

/// FlowMsg extended with a hop counter for routing validation.
struct TorusMsg final : sim::Payload {
  FlowMsg flow;
  int hops = 0;
};
}  // namespace

class DesTorus::Router final : public sim::Component {
 public:
  Router(NodeId node, const Torus& topo, double bandwidth,
         TorusRouting routing)
      : Component("router" + std::to_string(node)),
        node_(node),
        topo_(&topo),
        bandwidth_(bandwidth),
        routing_(routing) {}

  void handle_event(sim::PortId port,
                    std::unique_ptr<sim::Payload> payload) override {
    auto* msg = dynamic_cast<TorusMsg*>(payload.get());
    if (!msg) throw std::logic_error("torus router got a foreign payload");
    if (port != kInject) ++msg->hops;
    if (msg->flow.dst == node_) {
      ++delivered_;
      hops_total_ += static_cast<std::uint64_t>(msg->hops);
      bump("router_msgs_delivered");
      if (handler_) handler_(msg->flow, now());
      return;
    }
    const sim::PortId out = next_port(msg->flow.dst);
    if (busy_.size() <= out) busy_.resize(out + 1, 0);
    const sim::SimTime start = std::max(now(), busy_[out]);
    const sim::SimTime ser = sim::from_seconds(
        static_cast<double>(msg->flow.bytes) / bandwidth_);
    busy_[out] = start + ser;
    bump("router_msgs_forwarded");
    bump("router_bytes_forwarded", msg->flow.bytes);
    send(out, std::move(payload), busy_[out] - now());
  }

  void set_handler(DeliveryHandler handler) { handler_ = std::move(handler); }
  [[nodiscard]] std::uint64_t delivered() const noexcept { return delivered_; }
  [[nodiscard]] std::uint64_t hops_total() const noexcept {
    return hops_total_;
  }

  /// Neighbour port ids: dimension d, minus = 2d, plus = 2d + 1.
  /// Dimension-order: first unresolved dimension, shorter ring direction.
  /// Minimal adaptive: among ALL productive (dimension, direction) choices
  /// on a shortest path, the output port whose serializer drains soonest.
  [[nodiscard]] sim::PortId next_port(NodeId dst) const {
    const auto mine = topo_->coords(node_);
    const auto theirs = topo_->coords(dst);
    sim::PortId best_port = 0;
    bool found = false;
    sim::SimTime best_backlog = 0;
    for (std::size_t d = 0; d < mine.size(); ++d) {
      if (mine[d] == theirs[d]) continue;
      const NodeId k = topo_->dims()[d];
      const NodeId forward = (theirs[d] - mine[d] + k) % k;  // hops going +
      const bool go_plus = forward <= k - forward;           // shorter way
      const auto port = static_cast<sim::PortId>(2 * d + (go_plus ? 1 : 0));
      if (routing_ == TorusRouting::kDimensionOrder) return port;
      const sim::SimTime backlog =
          port < busy_.size() ? std::max<sim::SimTime>(busy_[port], now()) -
                                    now()
                              : 0;
      if (!found || backlog < best_backlog) {
        found = true;
        best_port = port;
        best_backlog = backlog;
      }
    }
    if (!found) throw std::logic_error("routing called with dst == self");
    return best_port;
  }

 private:
  NodeId node_;
  const Torus* topo_;
  double bandwidth_;
  TorusRouting routing_;
  std::vector<sim::SimTime> busy_;
  DeliveryHandler handler_;
  std::uint64_t delivered_ = 0;
  std::uint64_t hops_total_ = 0;
};

DesTorus::DesTorus(sim::Simulation& sim, const Torus& topo, CommParams params,
                   TorusRouting routing)
    : sim_(&sim), topo_(&topo), params_(params), routing_(routing) {
  if (params_.bandwidth <= 0)
    throw std::invalid_argument("bandwidth must be positive");
  for (NodeId n = 0; n < topo.num_nodes(); ++n)
    routers_.push_back(
        sim.add_component<Router>(n, topo, params_.bandwidth, routing));

  const sim::SimTime hop =
      std::max<sim::SimTime>(sim::from_seconds(params_.sw_latency), 1);
  const auto& dims = topo.dims();
  for (NodeId n = 0; n < topo.num_nodes(); ++n) {
    auto coords = topo.coords(n);
    for (std::size_t d = 0; d < dims.size(); ++d) {
      if (dims[d] < 2) continue;  // degenerate ring: no links
      auto next = coords;
      next[d] = (coords[d] + 1) % dims[d];
      const NodeId peer = topo.node_at(next);
      // Wire n's plus port in dimension d to peer's minus port. Each
      // directed ring edge is created exactly once (by its minus-side
      // endpoint), and the link is bidirectional.
      sim.connect(routers_[static_cast<std::size_t>(n)]->id(),
                  static_cast<sim::PortId>(2 * d + 1),
                  routers_[static_cast<std::size_t>(peer)]->id(),
                  static_cast<sim::PortId>(2 * d), hop);
    }
  }
}

void DesTorus::send(NodeId src, NodeId dst, std::uint64_t bytes,
                    sim::SimTime time, std::uint64_t tag) {
  if (src < 0 || src >= topo_->num_nodes() || dst < 0 ||
      dst >= topo_->num_nodes())
    throw std::out_of_range("DesTorus::send: node out of range");
  auto msg = std::make_unique<TorusMsg>();
  msg->flow.src = src;
  msg->flow.dst = dst;
  msg->flow.bytes = bytes;
  msg->flow.tag = tag;
  // Injection latency models the NIC/software stack.
  const sim::SimTime when =
      time + sim::from_seconds(params_.injection_latency);
  sim_->schedule(sim::kNoComponent,
                 routers_[static_cast<std::size_t>(src)]->id(), kInject, when,
                 std::move(msg));
}

void DesTorus::on_delivery(NodeId node, DeliveryHandler handler) {
  if (node < 0 || node >= topo_->num_nodes())
    throw std::out_of_range("DesTorus::on_delivery: node out of range");
  routers_[static_cast<std::size_t>(node)]->set_handler(std::move(handler));
}

std::uint64_t DesTorus::delivered() const noexcept {
  std::uint64_t total = 0;
  for (const Router* r : routers_) total += r->delivered();
  return total;
}

std::uint64_t DesTorus::total_hops() const noexcept {
  std::uint64_t total = 0;
  for (const Router* r : routers_) total += r->hops_total();
  return total;
}

std::vector<sim::FoldSpec> DesTorus::fold_specs() const {
  std::uint64_t config = sim::kFoldDigestSeed;
  config = sim::fold_digest_f64(config, params_.bandwidth);
  config = sim::fold_digest_f64(config, params_.injection_latency);
  config = sim::fold_digest_f64(config, params_.sw_latency);
  config = sim::fold_digest_u64(config,
                                static_cast<std::uint64_t>(routing_));
  const auto& dims = topo_->dims();
  config = sim::fold_digest_u64(config, dims.size());
  for (const NodeId k : dims)
    config = sim::fold_digest_u64(config, static_cast<std::uint64_t>(k));

  std::vector<sim::FoldSpec> specs(
      static_cast<std::size_t>(topo_->num_nodes()));
  for (auto& spec : specs) {
    spec.signature.type = "torus-router";
    spec.signature.behavior_digest = sim::kFoldDigestSeed;
    spec.signature.config_digest = config;
  }
  const auto hop =
      std::max<sim::SimTime>(sim::from_seconds(params_.sw_latency), 1);
  for (NodeId n = 0; n < topo_->num_nodes(); ++n) {
    auto coords = topo_->coords(n);
    for (std::size_t d = 0; d < dims.size(); ++d) {
      if (dims[d] < 2) continue;
      auto next = coords;
      next[d] = (coords[d] + 1) % dims[d];
      const NodeId peer = topo_->node_at(next);
      const auto plus = static_cast<std::uint32_t>(2 * d + 1);
      const auto minus = static_cast<std::uint32_t>(2 * d);
      specs[static_cast<std::size_t>(n)].links.push_back(
          sim::FoldEndpoint{plus, minus, hop, static_cast<std::size_t>(peer)});
      specs[static_cast<std::size_t>(peer)].links.push_back(
          sim::FoldEndpoint{minus, plus, hop, static_cast<std::size_t>(n)});
    }
  }
  return specs;
}

}  // namespace ftbesst::net
