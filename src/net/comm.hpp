#pragma once
// Coarse-grained communication cost models (LogGP-flavoured).
//
// BE models do not simulate packets; a communication instruction asks the
// architecture model "how long does this transfer/collective take on this
// machine at this scale?". These formulas are the standard coarse models
// used in the DSE literature: alpha-beta point-to-point with per-hop
// latency, log-tree collectives, and a contention factor derived from the
// topology's bisection when many flows are active at once.

#include <cstdint>
#include <memory>

#include "net/topology.hpp"

namespace ftbesst::net {

/// Machine communication parameters (all seconds / bytes-per-second).
struct CommParams {
  double sw_latency = 100e-9;        ///< per-hop switch traversal
  double injection_latency = 600e-9; ///< NIC + software stack, per message
  double bandwidth = 12.5e9;         ///< per-link bandwidth (B/s)
  double congestion_gamma = 0.05;    ///< contention growth per excess flow
};

class CommModel {
 public:
  /// The topology must outlive the model.
  CommModel(const Topology& topo, CommParams params);

  [[nodiscard]] const CommParams& params() const noexcept { return params_; }
  [[nodiscard]] const Topology& topology() const noexcept { return *topo_; }

  /// Point-to-point message time between nodes `a` and `b`.
  [[nodiscard]] double ptp_time(NodeId a, NodeId b,
                                std::uint64_t bytes) const;

  /// Effective bandwidth derating when `active_flows` flows share the
  /// network relative to its bisection capacity. Returns a multiplier >= 1
  /// applied to serialization time.
  [[nodiscard]] double contention_factor(double active_flows) const;

  /// Binomial-tree barrier across `ranks` endpoints.
  [[nodiscard]] double barrier_time(std::int64_t ranks) const;

  /// Allreduce of `bytes` across `ranks` endpoints
  /// (recursive-doubling/Rabenseifner hybrid: latency term 2*log2(P)*alpha,
  /// bandwidth term 2*bytes/bw for large messages).
  [[nodiscard]] double allreduce_time(std::int64_t ranks,
                                      std::uint64_t bytes) const;

  /// Nearest-neighbour halo exchange: each rank exchanges `bytes` with
  /// `degree` neighbours; exchanges overlap pairwise but share injection
  /// bandwidth.
  [[nodiscard]] double neighbor_exchange_time(std::int64_t ranks, int degree,
                                              std::uint64_t bytes) const;

  /// Broadcast of `bytes` from one root to `ranks` endpoints (binomial).
  [[nodiscard]] double broadcast_time(std::int64_t ranks,
                                      std::uint64_t bytes) const;

  /// Average hop count between two random distinct nodes (sampled exactly
  /// for small networks, estimated from diameter for large ones).
  [[nodiscard]] double average_hops() const;

 private:
  [[nodiscard]] double alpha(int hops) const noexcept;

  const Topology* topo_;
  CommParams params_;
};

}  // namespace ftbesst::net
