#pragma once
// Discrete-event k-ary n-dimensional torus (the Vulcan-style interconnect),
// companion to the fat-tree in des_network.hpp.
//
// One router component per node, each with 2n neighbour ports (+/- per
// dimension) plus a host port. Routing is deterministic dimension-order
// (resolve dimension 0 first, taking the shorter ring direction, then
// dimension 1, ...), the classic deadlock-free torus scheme. Every output
// port is a store-and-forward serializer, so link contention emerges from
// the event timeline exactly as in the fat-tree substrate.

#include <cstdint>
#include <functional>
#include <vector>

#include "net/comm.hpp"
#include "net/des_network.hpp"  // FlowMsg, DeliveryHandler
#include "net/topology.hpp"
#include "sim/simulation.hpp"

namespace ftbesst::net {

/// Torus routing policies.
enum class TorusRouting {
  kDimensionOrder,  ///< deterministic, deadlock-free (default)
  kMinimalAdaptive  ///< among productive dimensions, pick the output port
                    ///< with the least queued serialization backlog
};

class DesTorus {
 public:
  DesTorus(sim::Simulation& sim, const Torus& topo, CommParams params,
           TorusRouting routing = TorusRouting::kDimensionOrder);

  /// Inject a transfer at absolute `time`.
  void send(NodeId src, NodeId dst, std::uint64_t bytes, sim::SimTime time,
            std::uint64_t tag = 0);
  void on_delivery(NodeId node, DeliveryHandler handler);

  [[nodiscard]] const Torus& topology() const noexcept { return *topo_; }
  [[nodiscard]] std::uint64_t delivered() const noexcept;
  /// Total router-to-router hops taken by all delivered messages (for
  /// validating dimension-order routing against Topology::hops).
  [[nodiscard]] std::uint64_t total_hops() const noexcept;

  /// Detection-only symmetry metadata: one FoldSpec per router (indices =
  /// node ids), mirroring the constructor's ring wiring (dimension-d plus
  /// port 2d+1 to the neighbour's minus port 2d). On a symmetric torus
  /// every router lands in a single equivalence class under
  /// sim::plan_folds. As with the fat-tree substrate, the executed network
  /// never folds at runtime (routing and delivery handlers address
  /// concrete nodes); the metadata is for planning and tests.
  [[nodiscard]] std::vector<sim::FoldSpec> fold_specs() const;

 private:
  class Router;

  sim::Simulation* sim_;
  const Torus* topo_;
  CommParams params_;
  TorusRouting routing_;
  std::vector<Router*> routers_;  // one per node
};

}  // namespace ftbesst::net
