#include "verify/search_check.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "ft/checkpoint_cost.hpp"
#include "model/perf_model.hpp"
#include "net/topology.hpp"
#include "search/pareto.hpp"

namespace ftbesst::verify {

namespace {

constexpr const char* kWorkKernel = "work";

std::string checkpoint_kernel_name(ft::Level level) {
  return "ckpt_l" + std::to_string(static_cast<int>(level));
}

/// The work kernel, parameter-aware: compute instructions carry
/// {ranks, kernel_scale}. Strong scaling — the scenario's kernel_cost is
/// the per-timestep work at the scenario's own rank count, and adding
/// ranks divides it — so the ranks axis changes every cell by a large,
/// learnable margin (per-cell differences that only µs of comm or model
/// noise could produce are below any surrogate's resolution and would
/// make the bit-exact optimum gate a lottery).
class ScaledWorkModel final : public model::PerfModel {
 public:
  ScaledWorkModel(double base_seconds, double base_ranks)
      : base_(base_seconds), base_ranks_(base_ranks) {}
  [[nodiscard]] double predict(std::span<const double> p) const override {
    const double ranks = p.empty() || p[0] <= 0.0 ? base_ranks_ : p[0];
    const double scale = p.size() > 1 ? p[1] : 1.0;
    return base_ * scale * (base_ranks_ / ranks);
  }
  [[nodiscard]] std::string describe() const override {
    return "search_work(" + std::to_string(base_) +
           "s x scale x strong-scaling)";
  }

 private:
  double base_;
  double base_ranks_;
};

/// Checkpoint (or restart) cost evaluated from each instruction's own
/// {bytes_per_rank, ranks} params — the same device the service registry
/// uses (svc::RestartCostModel) so a single ArchBEO is correct for every
/// ranks point of the sweep.
class GridCheckpointModel final : public model::PerfModel {
 public:
  GridCheckpointModel(ft::Level level, ft::CheckpointCostModel cost,
                      bool restart)
      : level_(level), cost_(std::move(cost)), restart_(restart) {}
  [[nodiscard]] double predict(std::span<const double> p) const override {
    const auto bytes = static_cast<std::uint64_t>(p.empty() ? 0.0 : p[0]);
    const auto ranks = static_cast<std::int64_t>(p.size() > 1 ? p[1] : 1.0);
    return restart_ ? cost_.restart_cost(level_, bytes, ranks)
                    : cost_.cost(level_, bytes, ranks);
  }
  [[nodiscard]] std::string describe() const override {
    return std::string(restart_ ? "search_restart_l" : "search_ckpt_l") +
           std::to_string(static_cast<int>(level_));
  }

 private:
  ft::Level level_;
  ft::CheckpointCostModel cost_;
  bool restart_;
};

bool bits_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

void add_failure(DiffReport& report, const Scenario& s, std::string check,
                 std::string detail) {
  DiffFailure f;
  f.check = std::move(check);
  f.detail = std::move(detail);
  f.scenario = s;
  report.failures.push_back(std::move(f));
}

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in)
    throw std::invalid_argument("cannot read '" + path.string() + "'");
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

}  // namespace

SearchGrid derive_search_grid(const Scenario& s) {
  if (s.timesteps < 1)
    throw std::invalid_argument("search grid needs timesteps >= 1");
  if (s.trials < 1)
    throw std::invalid_argument("search grid needs trials >= 1");
  if (s.kernel_cost <= 0.0 || !std::isfinite(s.kernel_cost))
    throw std::invalid_argument("search grid needs kernel_cost > 0");
  core::validate_plan(s.plan);

  auto topo = std::make_shared<net::TwoStageFatTree>(s.leaves,
                                                     s.nodes_per_leaf,
                                                     s.spines);
  core::ArchBEO arch("search_verify", topo, s.comm, s.ranks_per_node);
  arch.set_fti(s.fti);
  if (s.ranks < 1 || s.ranks > arch.max_ranks())
    throw std::invalid_argument("scenario ranks exceed the machine");

  // --- scenario axis: checkpoint-plan variants of the scenario's plan ---
  std::vector<ft::PlanEntry> base = s.plan;
  if (base.empty())
    base = {ft::PlanEntry{ft::Level::kL1, std::max(1, s.timesteps / 4),
                          false}};

  std::vector<core::Scenario> variants;
  auto add_variant = [&](const char* name, std::vector<ft::PlanEntry> plan) {
    const std::string key = core::format_plan(plan);
    for (const core::Scenario& v : variants)
      if (core::format_plan(v.plan) == key) return;
    variants.push_back(core::Scenario{name, std::move(plan)});
  };
  auto rescaled = [&](double factor) {
    std::vector<ft::PlanEntry> plan = base;
    for (ft::PlanEntry& e : plan)
      e.period = std::max(
          1, static_cast<int>(std::lround(e.period * factor)));
    return plan;
  };
  add_variant("no ft", {});
  add_variant("base", base);
  add_variant("sparse", rescaled(2.0));
  add_variant("dense", rescaled(0.5));
  const bool has_l4 = std::any_of(
      base.begin(), base.end(),
      [](const ft::PlanEntry& e) { return e.level == ft::Level::kL4; });
  if (!has_l4) {
    int max_period = 1;
    for (const ft::PlanEntry& e : base)
      max_period = std::max(max_period, e.period);
    std::vector<ft::PlanEntry> plan = base;
    plan.push_back(ft::PlanEntry{
        ft::Level::kL4, std::min(std::max(1, s.timesteps), 2 * max_period),
        false});
    add_variant("plus l4", plan);
  } else if (base.size() > 1) {
    const ft::PlanEntry lowest = *std::min_element(
        base.begin(), base.end(),
        [](const ft::PlanEntry& a, const ft::PlanEntry& b) {
          return static_cast<int>(a.level) < static_cast<int>(b.level);
        });
    add_variant("local only", {lowest});
  }

  // --- parameter axes: {kernel_scale, ranks} ---
  const std::vector<double> kscales{0.5, 0.75, 1.0, 1.25,
                                    1.5, 2.0,  2.5, 3.0};
  std::vector<std::int64_t> ranks_axis;
  for (std::int64_t r = s.ranks;
       r <= arch.max_ranks() && ranks_axis.size() < 4; r *= 2)
    ranks_axis.push_back(r);

  std::vector<std::vector<double>> points;
  points.reserve(kscales.size() * ranks_axis.size());
  for (double k : kscales)
    for (std::int64_t r : ranks_axis)
      points.push_back({k, static_cast<double>(r)});

  // --- models: all four levels bound so every plan variant prices ---
  model::PerfModelPtr work = std::make_shared<ScaledWorkModel>(
      s.kernel_cost, static_cast<double>(s.ranks));
  if (s.noise_sigma > 0.0)
    work = std::make_shared<model::NoisyModel>(std::move(work),
                                               s.noise_sigma);
  arch.bind_kernel(kWorkKernel, std::move(work));
  const ft::CheckpointCostModel cost(s.storage, s.fti);
  for (int l = 1; l <= 4; ++l) {
    const auto level = static_cast<ft::Level>(l);
    arch.bind_kernel(checkpoint_kernel_name(level),
                     std::make_shared<GridCheckpointModel>(level, cost,
                                                           false));
    arch.bind_restart(level,
                      std::make_shared<GridCheckpointModel>(level, cost,
                                                            true));
  }
  if (s.inject_faults)
    arch.set_fault_process(ft::FaultProcess(s.node_mtbf_seconds,
                                            s.loss_fraction,
                                            s.weibull_shape));

  // --- horizon: bound the worst cell of the grid, not just the scenario ---
  const std::int64_t worst_ranks = ranks_axis.back();
  double per_timestep = s.kernel_cost * kscales.back();
  if (s.exchange_degree > 0)
    per_timestep += arch.comm().neighbor_exchange_time(
        worst_ranks, s.exchange_degree, s.exchange_bytes);
  if (s.allreduce_bytes > 0)
    per_timestep += arch.comm().allreduce_time(worst_ranks,
                                               s.allreduce_bytes);
  if (s.barrier) per_timestep += arch.comm().barrier_time(worst_ranks);
  double worst_ckpt = 0.0;
  for (const core::Scenario& v : variants) {
    double total = 0.0;
    for (const ft::PlanEntry& e : v.plan)
      total += cost.cost(e.level, s.ckpt_bytes_per_rank, worst_ranks) *
               static_cast<double>(s.timesteps / std::max(1, e.period));
    worst_ckpt = std::max(worst_ckpt, total);
  }

  core::EngineOptions options;
  options.seed = s.seed;
  options.monte_carlo = s.monte_carlo;
  options.inject_faults = s.inject_faults;
  options.downtime_seconds = s.downtime_seconds;
  options.async_stage_fraction = s.async_stage_fraction;
  options.max_sim_seconds =
      s.horizon_multiplier * (per_timestep * s.timesteps + worst_ckpt +
                              10.0 * s.downtime_seconds + 1.0);

  const Scenario sc = s;  // self-contained copy for the app factory
  auto make_app = [sc](const core::Scenario& scenario,
                       const std::vector<double>& params) {
    const double kscale = params.at(0);
    const auto ranks = static_cast<std::int64_t>(params.at(1));
    core::AppBEO app("search_app", ranks);
    app.set_checkpoint_bytes_per_rank(sc.ckpt_bytes_per_rank);
    const ft::CheckpointScheduler scheduler(scenario.plan);
    const double ranks_d = static_cast<double>(ranks);
    const double bytes_d = static_cast<double>(sc.ckpt_bytes_per_rank);
    for (int t = 1; t <= sc.timesteps; ++t) {
      app.compute(kWorkKernel, {ranks_d, kscale});
      if (sc.exchange_degree > 0)
        app.neighbor_exchange(sc.exchange_degree, sc.exchange_bytes);
      if (sc.allreduce_bytes > 0) app.allreduce(sc.allreduce_bytes);
      if (sc.barrier) app.barrier();
      app.end_timestep();
      for (const ft::PlanEntry& entry : scheduler.due_entries_after(t))
        app.checkpoint(entry.level, checkpoint_kernel_name(entry.level),
                       {bytes_d, ranks_d}, entry.async);
    }
    return app;
  };

  search::SearchSpace space;
  space.scenarios = std::move(variants);
  space.points = std::move(points);
  space.validate();
  return SearchGrid{std::move(space), std::move(arch), options,
                    std::move(make_app)};
}

DiffReport check_search_vs_exhaustive(const Scenario& s,
                                      double budget_fraction) {
  DiffReport report;
  report.scenarios = 1;
  try {
    const SearchGrid g = derive_search_grid(s);
    const std::size_t cells = g.space.size();
    const auto trials = static_cast<std::size_t>(s.trials);

    const std::vector<core::DsePoint> exhaustive = core::run_dse(
        g.space.scenarios, g.space.points, g.make_app, g.arch, g.options,
        trials);

    double best_mean = exhaustive[0].ensemble.total.mean;
    for (const core::DsePoint& p : exhaustive)
      best_mean = std::min(best_mean, p.ensemble.total.mean);

    std::vector<search::ParetoPoint> all;
    all.reserve(cells);
    for (std::size_t flat = 0; flat < cells; ++flat)
      all.push_back(search::ParetoPoint{
          flat, exhaustive[flat].ensemble.total.mean,
          search::recoverability_score(
              g.space.scenarios[g.space.scenario_of(flat)].plan, s.fti)});
    const std::vector<search::ParetoPoint> exhaustive_front =
        search::pareto_front(all);

    search::SearchOptions opt;
    opt.method = search::Method::kGp;
    opt.mode = search::Mode::kPareto;
    opt.seed = s.seed;
    opt.trials = trials;
    opt.budget_fraction = budget_fraction;
    opt.fti = s.fti;
    // Sequential acquisition: refit after every evaluation. Batched picks
    // trade sample efficiency for wall-clock parallelism, and at a 10%
    // budget every evaluation has to count.
    opt.batch = 1;
    opt.threads = 1;
    const search::SearchResult serial =
        search::run_search_dse(g.space, opt, g.make_app, g.arch, g.options);
    opt.threads = 0;
    const search::SearchResult pooled =
        search::run_search_dse(g.space, opt, g.make_app, g.arch, g.options);

    ++report.search_checks;
    if (serial.to_text() != pooled.to_text())
      add_failure(report, s, "search_vs_exhaustive",
                  "to_text differs between threads=1 and the shared pool");

    ++report.search_checks;
    const auto max_evals = static_cast<std::size_t>(
        std::ceil(budget_fraction * static_cast<double>(cells)));
    if (serial.evaluations > max_evals ||
        serial.trial_units > serial.budget_units)
      add_failure(report, s, "search_vs_exhaustive",
                  "budget exceeded: " + std::to_string(serial.evaluations) +
                      " evaluations (cap " + std::to_string(max_evals) +
                      "), " + std::to_string(serial.trial_units) +
                      " trial units of " +
                      std::to_string(serial.budget_units));

    ++report.search_checks;
    if (!bits_equal(serial.best.objective, best_mean))
      add_failure(report, s, "search_vs_exhaustive",
                  "guided best " + std::to_string(serial.best.objective) +
                      " != exhaustive optimum " + std::to_string(best_mean));

    ++report.search_checks;
    std::vector<search::ParetoPoint> candidate;
    candidate.reserve(serial.pareto.size());
    for (const search::EvaluatedCell& c : serial.pareto)
      candidate.push_back(
          search::ParetoPoint{c.flat, c.objective, c.recoverability});
    if (!search::front_dominates_or_equals(candidate, exhaustive_front))
      add_failure(report, s, "search_vs_exhaustive",
                  "searched Pareto front (" +
                      std::to_string(candidate.size()) +
                      " points) fails to cover the exhaustive front (" +
                      std::to_string(exhaustive_front.size()) + " points)");

    // Successive halving promotes on reduced-fidelity values, so its
    // optimum gate only holds where reduced fidelity is exact: the
    // deterministic scenarios.
    if (!s.monte_carlo && !s.inject_faults && s.noise_sigma == 0.0) {
      search::SearchOptions bopt;
      bopt.method = search::Method::kBandit;
      bopt.mode = search::Mode::kSingle;
      bopt.seed = s.seed;
      bopt.trials = trials;
      bopt.budget_fraction = 1.0;
      bopt.fti = s.fti;
      bopt.threads = 1;
      const search::SearchResult bandit = search::run_search_dse(
          g.space, bopt, g.make_app, g.arch, g.options);
      ++report.search_checks;
      if (!bits_equal(bandit.best.objective, best_mean))
        add_failure(report, s, "search_vs_exhaustive",
                    "bandit best " + std::to_string(bandit.best.objective) +
                        " != exhaustive optimum " +
                        std::to_string(best_mean));
    }
  } catch (const std::exception& e) {
    add_failure(report, s, "exception", e.what());
  }
  return report;
}

DiffReport run_search_corpus(const std::string& dir,
                             double budget_fraction) {
  std::vector<std::filesystem::path> files;
  try {
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      const std::string name = entry.path().filename().string();
      if (name.rfind("search_", 0) == 0 &&
          entry.path().extension() == ".scenario")
        files.push_back(entry.path());
    }
  } catch (const std::filesystem::filesystem_error& e) {
    throw std::invalid_argument("search corpus directory '" + dir +
                                "': " + e.what());
  }
  std::sort(files.begin(), files.end());

  DiffReport report;
  for (const std::filesystem::path& path : files) {
    const Scenario s = Scenario::from_text(read_file(path));
    report.merge(check_search_vs_exhaustive(s, budget_fraction));
  }
  return report;
}

}  // namespace ftbesst::verify
