#pragma once
// Deterministic number formatting for the verification harness.
//
// Scenario files and recorded corpus outputs are compared byte-exactly, so
// every double must be printed as the shortest decimal that round-trips the
// exact binary64 value (the same contract svc::Json uses for its canonical
// dumps) and parsed back without locale or precision surprises.

#include <charconv>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace ftbesst::verify {

inline void append_double(std::string& out, double v) {
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  out.append(buf, res.ptr);
}

[[nodiscard]] inline std::string format_double(double v) {
  std::string out;
  append_double(out, v);
  return out;
}

[[nodiscard]] inline double parse_double(std::string_view text) {
  double v = 0.0;
  const auto res = std::from_chars(text.data(), text.data() + text.size(), v);
  if (res.ec != std::errc{} || res.ptr != text.data() + text.size())
    throw std::invalid_argument("bad number '" + std::string(text) + "'");
  return v;
}

[[nodiscard]] inline std::int64_t parse_int(std::string_view text) {
  std::int64_t v = 0;
  const auto res = std::from_chars(text.data(), text.data() + text.size(), v);
  if (res.ec != std::errc{} || res.ptr != text.data() + text.size())
    throw std::invalid_argument("bad integer '" + std::string(text) + "'");
  return v;
}

/// Full-range uint64 (RNG seeds routinely exceed INT64_MAX).
[[nodiscard]] inline std::uint64_t parse_u64(std::string_view text) {
  std::uint64_t v = 0;
  const auto res = std::from_chars(text.data(), text.data() + text.size(), v);
  if (res.ec != std::errc{} || res.ptr != text.data() + text.size())
    throw std::invalid_argument("bad unsigned integer '" + std::string(text) +
                                "'");
  return v;
}

}  // namespace ftbesst::verify
