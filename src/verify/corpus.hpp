#pragma once
// Golden scenario corpus: curated `.scenario` files with recorded expected
// outputs (`.expected`), replayed byte-exactly.
//
// Each corpus entry prices its scenario through the Monte-Carlo ensemble
// driver (the path every real DSE result takes) with the scenario's fixed
// seed and serializes the result with shortest-round-trip doubles
// (result_to_text). Replay recomputes that text and compares it to the
// recorded file byte for byte — any drift in an engine, a cost model, the
// RNG, or the threading layer shows up as a one-line diff naming the first
// divergent line. Because per-trial seeds are pre-derived, the text is also
// required to be identical for threads 1 vs N, which replay checks by
// default (and the obs-under-verify test extends to obs on/off).
//
// To add an entry: write `tests/corpus/<name>.scenario` (omitted keys take
// the documented defaults), then run
//   ftbesst verify --corpus tests/corpus --update
// and commit both files. See docs/TESTING.md.

#include <string>
#include <vector>

#include "verify/scenario.hpp"

namespace ftbesst::verify {

/// Price `s` through run_ensemble (s.trials trials, fixed s.seed) and
/// serialize the full result canonically. `threads` must not change the
/// output; 1 = serial reference.
[[nodiscard]] std::string result_to_text(const Scenario& s,
                                         unsigned threads = 1);

struct CorpusMismatch {
  std::string name;    ///< corpus entry (file stem)
  std::string detail;  ///< what diverged, incl. the first differing line
};

struct CorpusReport {
  int entries = 0;    ///< .scenario files found
  int replayed = 0;   ///< entries priced and compared
  std::vector<CorpusMismatch> mismatches;

  [[nodiscard]] bool ok() const noexcept { return mismatches.empty(); }
  [[nodiscard]] std::string summary() const;
};

/// Replay every `<dir>/*.scenario` (sorted by name) against its sibling
/// `.expected`. With `check_thread_invariance`, each entry is priced at
/// threads 1 and threads 4 and both texts must match the recording.
[[nodiscard]] CorpusReport replay_corpus(const std::string& dir,
                                         bool check_thread_invariance = true);

/// (Re)record `<name>.expected` for every scenario in `dir`. Returns the
/// number of entries written.
int record_corpus(const std::string& dir);

/// Fold-invariance replay: price a deterministic copy of every corpus
/// scenario through run_des twice — symmetry folding on and off — and
/// require the serialized prediction texts to match byte for byte (the
/// text deliberately excludes the diagnostic event count, which folding
/// shrinks). Entries with more than `max_unfolded_ranks` logical ranks
/// skip the unfolded leg (pricing 400k individual rank components is a
/// slow-tier job, exercised by the labelled ctest target and the
/// bench_ext_des gate) but still must price cleanly folded, so the
/// notional-machine corpus entry stays under tier-1 replay.
[[nodiscard]] CorpusReport replay_corpus_folded(
    const std::string& dir, std::int64_t max_unfolded_ranks = 1 << 16);

}  // namespace ftbesst::verify
