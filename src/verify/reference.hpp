#pragma once
// The analytic twin: an independent re-derivation of what a clean
// (fault-free, noise-free) run of a Scenario must cost.
//
// The engines under test all consume ft::CheckpointCostModel through the
// arch's bound kernels, so cross-engine agreement alone cannot detect a
// regression in the cost model itself — every engine would drift together.
// This file re-transcribes the per-level FTI cost composition (paper
// Sec. on FTI levels / Table I) directly from StorageParams + FtiConfig,
// in its own words, and walks the timestep timeline (including the
// async-checkpoint stall/stage/background-channel semantics and the final
// flush barrier) without touching the engine code. A change to
// ft/checkpoint_cost.cpp or the BSP clean path that alters results now
// disagrees with this twin and fails the differential checker.
//
// Communication times intentionally come from the same net::CommModel the
// engines use: the twin targets the FT cost path and engine timeline
// logic, not the LogGP formulas (those have their own unit tests).

#include <cstdint>

#include "ft/checkpoint_cost.hpp"
#include "ft/fti.hpp"
#include "verify/scenario.hpp"

namespace ftbesst::verify {

/// Time of one coordinated checkpoint at `level` — independent transcription
/// of the FTI level cost composition (do NOT call ft::CheckpointCostModel
/// here; the whole point is to disagree with it when it regresses).
[[nodiscard]] double reference_checkpoint_cost(const ft::StorageParams& sp,
                                               const ft::FtiConfig& fti,
                                               ft::Level level,
                                               std::uint64_t bytes_per_rank,
                                               std::int64_t ranks);

/// Recovery time from a `level` checkpoint, same independence rule.
[[nodiscard]] double reference_restart_cost(const ft::StorageParams& sp,
                                            const ft::FtiConfig& fti,
                                            ft::Level level,
                                            std::uint64_t bytes_per_rank,
                                            std::int64_t ranks);

/// Seconds of work + communication in one solver timestep (no checkpoints).
[[nodiscard]] double reference_timestep_seconds(const Scenario& s);

/// Total clean-run seconds: the full timestep/checkpoint timeline, with
/// asynchronous checkpoints staged onto a single background-flush channel
/// (stall until the previous flush drains, pay the staging fraction on the
/// critical path, wait for the trailing flush at the end). Only meaningful
/// for deterministic scenarios (noise_sigma == 0, monte_carlo == false)
/// priced without fault injection.
[[nodiscard]] double reference_clean_total_seconds(const Scenario& s);

}  // namespace ftbesst::verify
