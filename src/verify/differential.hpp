#pragma once
// Cross-engine differential checking.
//
// A Scenario can be priced four ways: run_bsp, run_des, the analytic twin
// (verify/reference.*), and — for a statistically tractable subset — the
// Young/Daly closed form. They model the same physics, so they must agree
// within documented tolerances (see DiffTolerances); a disagreement means a
// regression in one of them. check_scenario runs every applicable
// comparison; run_differential drives it over a seeded scenario stream,
// shrinks any failure to a minimal reproducer, and (optionally) dumps the
// shrunk `.scenario` files for triage.
//
// Tolerance contract (documented in docs/TESTING.md):
//  * analytic twin vs run_bsp (clean, deterministic): relative 1e-9 —
//    identical math, different summation order.
//  * run_des vs run_bsp (clean, deterministic, no async entries — the DES
//    engine charges full checkpoint cost): relative 1e-8 plus an absolute
//    allowance of one simulator tick (1 ns) per executed instruction — the
//    PDES kernel quantizes every duration to integer nanoseconds
//    (sim/time.hpp), so quantization error grows with program length.
//    Totals and the per-timestep trace are both checked.
//  * run_des folded vs unfolded (clean, deterministic): bit-identical —
//    symmetry folding (sim/fold.hpp) is a pure execution-cost optimization
//    and must never change a prediction. Totals, the per-timestep trace,
//    checkpoint counts, and scaled instruction counters are all compared;
//    the folded run must also process no more events than the unfolded one.
//  * run_ensemble threads 1 vs N: bit-identical (memcmp on every double).
//  * Young/Daly expected runtime vs ensemble mean (eligible fault
//    scenarios): within a x1.6 multiplicative band — first-order waste
//    model vs simulated rollback, so only the scale must match.
//  * in-simulation injection (src/inject, every fault scenario):
//    injected run_des folded vs unfolded bit-identical (coordinated
//    rollback keeps fold groups symmetric); injection campaign threads
//    1 vs 4 bit-identical; and, on Young/Daly-eligible scenarios, the
//    campaign mean makespan within the same x1.6 band.
//  * ExprProgram eval backends (scalar strip vs the SIMD batch backends,
//    model/expr_simd.*): bit-identical over scenario-seeded expressions on
//    an adversarial dataset — the dispatch must never change a number.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "verify/scenario.hpp"

namespace ftbesst::verify {

struct DiffTolerances {
  double analytic_rel = 1e-9;
  double engine_rel = 1e-8;
  /// DES tick size (seconds): absolute slack of one tick per executed
  /// instruction on every des-vs-bsp comparison.
  double des_tick_seconds = 1e-9;
  double young_daly_band = 1.6;
  /// Trials used for the Young/Daly statistical leg (fixed so the check is
  /// deterministic per seed, large enough that the band holds).
  int young_daly_trials = 32;
};

struct DiffFailure {
  std::string check;   ///< "analytic_twin" | "des_vs_bsp" | "fold_vs_unfold"
                       ///< | "thread_bits" | "young_daly" | "inject_fold"
                       ///< | "inject_threads" | "inject_young_daly"
                       ///< | "eval_backend" | "search_vs_exhaustive"
                       ///< | "exception"
  std::string detail;  ///< human-readable disagreement description
  std::uint64_t generator_seed = 0;  ///< 0 when not generator-produced
  std::uint64_t scenario_index = 0;
  Scenario scenario;   ///< shrunk reproducer (== original if unshrinkable)
};

struct DiffReport {
  int scenarios = 0;
  int analytic_checks = 0;
  int engine_checks = 0;
  int fold_checks = 0;
  int thread_checks = 0;
  int young_daly_checks = 0;
  int inject_checks = 0;
  int inject_young_daly_checks = 0;
  int backend_checks = 0;
  int search_checks = 0;
  std::vector<DiffFailure> failures;

  [[nodiscard]] bool ok() const noexcept { return failures.empty(); }
  void merge(const DiffReport& other);
  /// One-line counts plus one block per failure (check, seed/index,
  /// detail, and the full scenario text for copy-paste reproduction).
  [[nodiscard]] std::string summary() const;
};

/// Run every applicable comparison for one scenario. `overrides` feeds the
/// regression-injection tests: a checkpoint_cost_scale != 1 mis-prices the
/// engines' checkpoint models (the analytic twin is computed from the
/// scenario alone and is immune), which MUST surface as an analytic_twin
/// failure. Exceptions from build/engines are captured as "exception"
/// failures, never thrown.
[[nodiscard]] DiffReport check_scenario(const Scenario& s,
                                        const DiffTolerances& tol = {},
                                        const BuildOverrides& overrides = {});

/// Greedy delta-debugging: repeatedly apply structure-removing
/// transformations (halve timesteps, drop plan entries, strip comm, drop
/// noise/faults, shrink ranks/trials) and keep any candidate for which
/// `still_fails` returns true, until a full pass makes no progress or
/// `budget` predicate evaluations are spent. Deterministic.
[[nodiscard]] Scenario shrink(
    const Scenario& start,
    const std::function<bool(const Scenario&)>& still_fails,
    int budget = 128);

/// Generate `scenarios` scenarios from `seed` and check each one. Failures
/// are shrunk (predicate: same check still fails) and, when `dump_dir` is
/// non-empty, written to `<dump_dir>/diff-<seed>-<index>-<check>.scenario`.
[[nodiscard]] DiffReport run_differential(int scenarios, std::uint64_t seed,
                                          const DiffTolerances& tol = {},
                                          const std::string& dump_dir = "");

}  // namespace ftbesst::verify
