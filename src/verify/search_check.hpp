#pragma once
// The search_vs_exhaustive differential leg.
//
// A verify Scenario describes ONE pricing problem; guided search explores a
// GRID of them. derive_search_grid() turns a scenario into the small
// co-design grid around it — checkpoint-plan variants of its plan (No-FT,
// the plan itself, sparser/denser periods, one extra protection level) x
// {kernel-scale, ranks} parameter points — with the work/checkpoint/restart
// models rebuilt as parameter-aware PerfModels so one prepared ArchBEO
// prices every cell of the grid (the plain build() binds constants computed
// from the scenario's fixed ranks, which would misprice every other cell).
//
// check_search_vs_exhaustive() then prices the grid both ways and holds the
// guided search to the ISSUE's acceptance contract:
//   * bit identity: SearchResult::to_text() at threads=1 equals threads=pool
//   * budget: charged evaluations <= ceil(budget_fraction x grid cells) and
//     charged trial units never exceed the granted budget
//   * optimum: the GP search's best objective is bit-equal to the exhaustive
//     grid minimum (same cell seeds, so equality is exact, not approximate)
//   * Pareto: the searched {objective x recoverability} front
//     dominates-or-equals the exhaustive front
//   * bandit (deterministic scenarios only): successive halving at full
//     budget also lands on the exhaustive optimum bit-exactly
//
// run_search_corpus() replays the committed `tests/corpus/search_*.scenario`
// machines through the leg — the golden corpus the acceptance gate (and
// bench_ext_search) runs on.

#include <functional>
#include <string>
#include <vector>

#include "core/workflow.hpp"
#include "search/search.hpp"
#include "verify/differential.hpp"
#include "verify/scenario.hpp"

namespace ftbesst::verify {

/// A scenario's derived co-design grid, ready for run_dse / run_search_dse.
struct SearchGrid {
  search::SearchSpace space;
  core::ArchBEO arch;          ///< parameter-aware models bound
  core::EngineOptions options;
  std::function<core::AppBEO(const core::Scenario&,
                             const std::vector<double>&)>
      make_app;
};

/// Build the grid: plan variants x {kernel_scale, ranks} points. Throws
/// std::invalid_argument when the scenario cannot host a grid (timesteps or
/// trials < 1, ranks exceed the machine).
[[nodiscard]] SearchGrid derive_search_grid(const Scenario& s);

/// Run every search-vs-exhaustive comparison for one scenario (see the
/// header comment). Exceptions are captured as "exception" failures.
[[nodiscard]] DiffReport check_search_vs_exhaustive(
    const Scenario& s, double budget_fraction = 0.10);

/// Replay every `search_*.scenario` file in `dir` (sorted by filename)
/// through check_search_vs_exhaustive. Throws std::invalid_argument when
/// the directory cannot be read.
[[nodiscard]] DiffReport run_search_corpus(const std::string& dir,
                                           double budget_fraction = 0.10);

}  // namespace ftbesst::verify
