#pragma once
// Structure-aware fuzzing for every parser that eats untrusted bytes:
// svc::Json, the wire frame codec (extract_frame), the checkpoint-plan
// grammar (core::parse_plan), and the model-serialize loader.
//
// Each target has a single-input entry point `fuzz_<target>_one(data,
// size)` with libFuzzer semantics: feed the bytes to the parser, and if
// they are accepted, check the target's invariants (canonical-dump
// fixpoint, incremental-vs-whole framing equivalence, plan round-trip,
// serialize round-trip). The ONLY exception a target may raise on hostile
// input is std::invalid_argument, which the entry catches and counts as a
// clean rejection; an invariant violation throws std::logic_error, and any
// other escaping exception type is itself a bug. The same entries back
//   * the in-process budgeted loops below (grammar-based generators +
//     byte-level mutators, fixed seed, run as a tier-1 ctest target), and
//   * the optional libFuzzer harnesses under tools/fuzz/ (FTBESST_FUZZ).

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace ftbesst::verify {

/// Returns true if the input was accepted (parsed), false on a clean
/// std::invalid_argument rejection. Throws std::logic_error on an
/// invariant violation; lets any other exception escape (a bug).
bool fuzz_json_one(const std::uint8_t* data, std::size_t size);
bool fuzz_wire_one(const std::uint8_t* data, std::size_t size);
bool fuzz_plan_one(const std::uint8_t* data, std::size_t size);
bool fuzz_model_one(const std::uint8_t* data, std::size_t size);

struct FuzzBug {
  std::uint64_t iteration = 0;
  std::string what;       ///< escaped exception / invariant description
  std::string input_hex;  ///< offending input, hex-encoded reproducer
};

struct FuzzResult {
  std::string target;
  std::uint64_t seed = 0;
  std::uint64_t iterations = 0;
  std::uint64_t accepted = 0;  ///< inputs the parser accepted
  std::vector<FuzzBug> bugs;

  [[nodiscard]] bool ok() const noexcept { return bugs.empty(); }
  /// "target: N iterations, A accepted, B bug(s)" plus one line per bug
  /// with its seed/iteration and hex reproducer.
  [[nodiscard]] std::string summary() const;
};

/// Budgeted in-process campaigns: generate structured inputs from the
/// target's grammar, mutate them at the byte level, and drive the entry
/// point, capturing bugs instead of throwing. Deterministic per seed.
[[nodiscard]] FuzzResult fuzz_json(std::uint64_t seed,
                                   std::uint64_t iterations);
[[nodiscard]] FuzzResult fuzz_wire(std::uint64_t seed,
                                   std::uint64_t iterations);
[[nodiscard]] FuzzResult fuzz_plan(std::uint64_t seed,
                                   std::uint64_t iterations);
[[nodiscard]] FuzzResult fuzz_model(std::uint64_t seed,
                                    std::uint64_t iterations);

/// All four targets with the same per-target budget.
[[nodiscard]] std::vector<FuzzResult> fuzz_all(std::uint64_t seed,
                                               std::uint64_t iterations);

/// Decode the `input_hex` of a FuzzBug back to bytes (for replay).
[[nodiscard]] std::vector<std::uint8_t> fuzz_unhex(const std::string& hex);

}  // namespace ftbesst::verify
