#include "verify/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <sstream>
#include <stdexcept>

#include "core/workflow.hpp"
#include "model/perf_model.hpp"
#include "net/topology.hpp"
#include "verify/format.hpp"

namespace ftbesst::verify {

namespace {

constexpr const char* kMagic = "ftbesst-scenario v1";
constexpr const char* kWorkKernel = "work";

std::string checkpoint_kernel_name(ft::Level level) {
  return "ckpt_l" + std::to_string(static_cast<int>(level));
}

}  // namespace

bool Scenario::has_async() const noexcept {
  return std::any_of(plan.begin(), plan.end(),
                     [](const ft::PlanEntry& e) { return e.async; });
}

std::string plan_to_string(const std::vector<ft::PlanEntry>& plan) {
  std::string out;
  for (const ft::PlanEntry& e : plan) {
    if (!out.empty()) out += ',';
    out += 'L';
    out += std::to_string(static_cast<int>(e.level));
    out += ':';
    out += std::to_string(e.period);
    if (e.async) out += 'a';
  }
  return out;
}

std::string Scenario::to_text() const {
  std::string out(kMagic);
  out += '\n';
  auto put = [&out](const char* key, const std::string& value) {
    out += key;
    out += ' ';
    out += value;
    out += '\n';
  };
  auto put_d = [&put](const char* key, double v) { put(key, format_double(v)); };
  auto put_i = [&put](const char* key, std::int64_t v) {
    put(key, std::to_string(v));
  };
  auto put_u = [&put](const char* key, std::uint64_t v) {
    put(key, std::to_string(v));
  };
  auto put_b = [&put](const char* key, bool v) { put(key, v ? "1" : "0"); };

  put_u("seed", seed);
  put_i("trials", trials);
  put_b("monte_carlo", monte_carlo);
  put_d("noise_sigma", noise_sigma);
  put_d("horizon_multiplier", horizon_multiplier);
  put_d("async_stage_fraction", async_stage_fraction);
  put_i("leaves", leaves);
  put_i("nodes_per_leaf", nodes_per_leaf);
  put_i("spines", spines);
  put_i("ranks_per_node", ranks_per_node);
  put_d("comm.sw_latency", comm.sw_latency);
  put_d("comm.injection_latency", comm.injection_latency);
  put_d("comm.bandwidth", comm.bandwidth);
  put_d("comm.congestion_gamma", comm.congestion_gamma);
  put_i("fti.group_size", fti.group_size);
  put_i("fti.node_size", fti.node_size);
  put_i("fti.l2_partners", fti.l2_partners);
  put_d("storage.local_write_bw", storage.local_write_bw);
  put_d("storage.local_latency", storage.local_latency);
  put_d("storage.nic_bw", storage.nic_bw);
  put_d("storage.nic_latency", storage.nic_latency);
  put_d("storage.rs_encode_rate", storage.rs_encode_rate);
  put_d("storage.pfs_bw", storage.pfs_bw);
  put_d("storage.pfs_latency", storage.pfs_latency);
  put_d("storage.sync_latency", storage.sync_latency);
  put_d("storage.congestion_per_node", storage.congestion_per_node);
  put_i("ranks", ranks);
  put_i("timesteps", timesteps);
  put_d("kernel_cost", kernel_cost);
  put_i("exchange_degree", exchange_degree);
  put_u("exchange_bytes", exchange_bytes);
  put_u("allreduce_bytes", allreduce_bytes);
  put_b("barrier", barrier);
  put_u("ckpt_bytes_per_rank", ckpt_bytes_per_rank);
  put("plan", plan.empty() ? "-" : plan_to_string(plan));
  put_b("inject_faults", inject_faults);
  put_d("node_mtbf_seconds", node_mtbf_seconds);
  put_d("loss_fraction", loss_fraction);
  put_d("weibull_shape", weibull_shape);
  put_d("downtime_seconds", downtime_seconds);
  return out;
}

Scenario Scenario::from_text(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  if (!std::getline(is, line) || line != kMagic)
    throw std::invalid_argument(
        "not a scenario document (expected header '" + std::string(kMagic) +
        "', got '" + line + "')");

  Scenario s;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    const auto space = line.find(' ');
    if (space == std::string::npos)
      throw std::invalid_argument("bad scenario line '" + line +
                                  "' (expected 'key value')");
    const std::string key = line.substr(0, space);
    const std::string value = line.substr(space + 1);
    try {
      if (key == "seed")
        s.seed = parse_u64(value);
      else if (key == "trials")
        s.trials = static_cast<int>(parse_int(value));
      else if (key == "monte_carlo")
        s.monte_carlo = parse_int(value) != 0;
      else if (key == "noise_sigma")
        s.noise_sigma = parse_double(value);
      else if (key == "horizon_multiplier")
        s.horizon_multiplier = parse_double(value);
      else if (key == "async_stage_fraction")
        s.async_stage_fraction = parse_double(value);
      else if (key == "leaves")
        s.leaves = static_cast<int>(parse_int(value));
      else if (key == "nodes_per_leaf")
        s.nodes_per_leaf = static_cast<int>(parse_int(value));
      else if (key == "spines")
        s.spines = static_cast<int>(parse_int(value));
      else if (key == "ranks_per_node")
        s.ranks_per_node = static_cast<int>(parse_int(value));
      else if (key == "comm.sw_latency")
        s.comm.sw_latency = parse_double(value);
      else if (key == "comm.injection_latency")
        s.comm.injection_latency = parse_double(value);
      else if (key == "comm.bandwidth")
        s.comm.bandwidth = parse_double(value);
      else if (key == "comm.congestion_gamma")
        s.comm.congestion_gamma = parse_double(value);
      else if (key == "fti.group_size")
        s.fti.group_size = static_cast<int>(parse_int(value));
      else if (key == "fti.node_size")
        s.fti.node_size = static_cast<int>(parse_int(value));
      else if (key == "fti.l2_partners")
        s.fti.l2_partners = static_cast<int>(parse_int(value));
      else if (key == "storage.local_write_bw")
        s.storage.local_write_bw = parse_double(value);
      else if (key == "storage.local_latency")
        s.storage.local_latency = parse_double(value);
      else if (key == "storage.nic_bw")
        s.storage.nic_bw = parse_double(value);
      else if (key == "storage.nic_latency")
        s.storage.nic_latency = parse_double(value);
      else if (key == "storage.rs_encode_rate")
        s.storage.rs_encode_rate = parse_double(value);
      else if (key == "storage.pfs_bw")
        s.storage.pfs_bw = parse_double(value);
      else if (key == "storage.pfs_latency")
        s.storage.pfs_latency = parse_double(value);
      else if (key == "storage.sync_latency")
        s.storage.sync_latency = parse_double(value);
      else if (key == "storage.congestion_per_node")
        s.storage.congestion_per_node = parse_double(value);
      else if (key == "ranks")
        s.ranks = parse_int(value);
      else if (key == "timesteps")
        s.timesteps = static_cast<int>(parse_int(value));
      else if (key == "kernel_cost")
        s.kernel_cost = parse_double(value);
      else if (key == "exchange_degree")
        s.exchange_degree = static_cast<int>(parse_int(value));
      else if (key == "exchange_bytes")
        s.exchange_bytes = parse_u64(value);
      else if (key == "allreduce_bytes")
        s.allreduce_bytes = parse_u64(value);
      else if (key == "barrier")
        s.barrier = parse_int(value) != 0;
      else if (key == "ckpt_bytes_per_rank")
        s.ckpt_bytes_per_rank = parse_u64(value);
      else if (key == "plan")
        s.plan = value == "-" ? std::vector<ft::PlanEntry>{}
                              : core::parse_plan(value);
      else if (key == "inject_faults")
        s.inject_faults = parse_int(value) != 0;
      else if (key == "node_mtbf_seconds")
        s.node_mtbf_seconds = parse_double(value);
      else if (key == "loss_fraction")
        s.loss_fraction = parse_double(value);
      else if (key == "weibull_shape")
        s.weibull_shape = parse_double(value);
      else if (key == "downtime_seconds")
        s.downtime_seconds = parse_double(value);
      else
        throw std::invalid_argument("unknown scenario key '" + key + "'");
    } catch (const std::invalid_argument& e) {
      throw std::invalid_argument("scenario line '" + line +
                                  "': " + e.what());
    }
  }
  return s;
}

BuiltScenario build(const Scenario& s, const BuildOverrides& overrides) {
  if (s.timesteps < 0)
    throw std::invalid_argument("scenario timesteps must be >= 0");
  if (s.trials < 1)
    throw std::invalid_argument("scenario trials must be >= 1");
  if (s.kernel_cost < 0.0 || !std::isfinite(s.kernel_cost))
    throw std::invalid_argument("scenario kernel_cost must be finite >= 0");
  core::validate_plan(s.plan);

  auto topo = std::make_shared<net::TwoStageFatTree>(s.leaves,
                                                     s.nodes_per_leaf,
                                                     s.spines);
  core::ArchBEO arch("verify", topo, s.comm, s.ranks_per_node);
  arch.set_fti(s.fti);
  if (s.ranks > arch.max_ranks())
    throw std::invalid_argument("scenario ranks exceed the machine");

  model::PerfModelPtr work = std::make_shared<model::ConstantModel>(
      s.kernel_cost);
  if (s.noise_sigma > 0.0)
    work = std::make_shared<model::NoisyModel>(std::move(work),
                                               s.noise_sigma);
  arch.bind_kernel(kWorkKernel, std::move(work));

  // Closed-form clean runtime (engine-side models) used only to bound the
  // fault-injection horizon; the independent analytic twin lives in
  // verify/reference.cpp.
  double per_timestep = s.kernel_cost;
  if (s.exchange_degree > 0)
    per_timestep += arch.comm().neighbor_exchange_time(
        s.ranks, s.exchange_degree, s.exchange_bytes);
  if (s.allreduce_bytes > 0)
    per_timestep += arch.comm().allreduce_time(s.ranks, s.allreduce_bytes);
  if (s.barrier) per_timestep += arch.comm().barrier_time(s.ranks);
  double clean_estimate = per_timestep * s.timesteps;

  if (!s.plan.empty()) {
    const ft::CheckpointCostModel cost(s.storage, s.fti);
    const ft::CheckpointScheduler scheduler(s.plan);
    for (const ft::PlanEntry& entry : s.plan) {
      const double c = overrides.checkpoint_cost_scale *
                       cost.cost(entry.level, s.ckpt_bytes_per_rank, s.ranks);
      arch.bind_kernel(checkpoint_kernel_name(entry.level),
                       std::make_shared<model::ConstantModel>(c));
      const double r = overrides.restart_cost_scale *
                       cost.restart_cost(entry.level, s.ckpt_bytes_per_rank,
                                         s.ranks);
      arch.bind_restart(entry.level,
                        std::make_shared<model::ConstantModel>(r));
      clean_estimate += c * static_cast<double>(
                                s.timesteps / std::max(1, entry.period));
    }
  }

  if (s.inject_faults)
    arch.set_fault_process(ft::FaultProcess(s.node_mtbf_seconds,
                                            s.loss_fraction,
                                            s.weibull_shape));

  core::EngineOptions options;
  options.seed = s.seed;
  options.monte_carlo = s.monte_carlo;
  options.inject_faults = s.inject_faults;
  options.downtime_seconds = s.downtime_seconds;
  options.async_stage_fraction = s.async_stage_fraction;
  options.max_sim_seconds =
      s.horizon_multiplier *
      (clean_estimate + 10.0 * s.downtime_seconds + 1.0);

  core::AppBEO app("verify_app", s.ranks);
  app.set_checkpoint_bytes_per_rank(s.ckpt_bytes_per_rank);
  const ft::CheckpointScheduler scheduler(s.plan);
  const double ranks_d = static_cast<double>(s.ranks);
  for (int t = 1; t <= s.timesteps; ++t) {
    app.compute(kWorkKernel, {ranks_d});
    if (s.exchange_degree > 0)
      app.neighbor_exchange(s.exchange_degree, s.exchange_bytes);
    if (s.allreduce_bytes > 0) app.allreduce(s.allreduce_bytes);
    if (s.barrier) app.barrier();
    app.end_timestep();
    for (const ft::PlanEntry& entry : scheduler.due_entries_after(t))
      app.checkpoint(entry.level, checkpoint_kernel_name(entry.level),
                     {static_cast<double>(s.ckpt_bytes_per_rank), ranks_d},
                     entry.async);
  }

  return BuiltScenario{std::move(app), std::move(arch), options};
}

ScenarioGenerator::ScenarioGenerator(std::uint64_t seed) : rng_(seed) {}

Scenario ScenarioGenerator::next() {
  util::Rng rng = rng_.split(index_++);
  Scenario s;
  s.seed = rng();

  // Machine: keep it small enough that 200 scenarios (each priced by BSP,
  // DES, the analytic twin, and two ensembles) stay inside a CI budget.
  s.leaves = 1 + static_cast<int>(rng.uniform_int(3));
  s.nodes_per_leaf = 2 + static_cast<int>(rng.uniform_int(7));
  s.spines = 1 + static_cast<int>(rng.uniform_int(2));
  s.ranks_per_node = 1 + static_cast<int>(rng.uniform_int(4));
  s.comm.sw_latency = 100e-9 * std::pow(10.0, rng.uniform(-0.5, 0.5));
  s.comm.injection_latency = 600e-9 * std::pow(10.0, rng.uniform(-0.5, 0.5));
  s.comm.bandwidth = 12.5e9 * std::pow(10.0, rng.uniform(-1.0, 0.5));
  s.comm.congestion_gamma = rng.uniform(0.0, 0.2);

  s.fti.group_size = 2 + static_cast<int>(rng.uniform_int(3));
  s.fti.node_size = 1 + static_cast<int>(rng.uniform_int(2));
  s.fti.l2_partners = 1;

  // Perturb the storage speeds so the checkpoint-cost model is exercised
  // across its whole parameter space, not just the defaults.
  auto jitter = [&rng](double base) {
    return base * std::pow(10.0, rng.uniform(-0.5, 0.5));
  };
  s.storage.local_write_bw = jitter(1.0e9);
  s.storage.local_latency = jitter(2e-3);
  s.storage.nic_bw = jitter(6.0e9);
  s.storage.nic_latency = jitter(5e-6);
  s.storage.rs_encode_rate = jitter(1.2e9);
  s.storage.pfs_bw = jitter(40.0e9);
  s.storage.pfs_latency = jitter(15e-3);
  s.storage.sync_latency = jitter(20e-6);
  s.storage.congestion_per_node = jitter(2e-5);

  // Ranks: a multiple of the FTI unit (group_size x node_size) so any
  // checkpointing plan validates, bounded by the machine.
  const std::int64_t max_ranks = static_cast<std::int64_t>(s.leaves) *
                                 s.nodes_per_leaf * s.ranks_per_node;
  const std::int64_t unit = static_cast<std::int64_t>(s.fti.group_size) *
                            s.fti.node_size;
  const std::int64_t max_units = std::max<std::int64_t>(
      1, std::min<std::int64_t>(48, max_ranks) / unit);
  s.ranks = unit * static_cast<std::int64_t>(
                       1 + rng.uniform_int(
                               static_cast<std::uint64_t>(max_units)));
  if (s.ranks > max_ranks) {
    // Tiny machines may not fit one FTI unit; grow the tree instead of
    // shrinking the unit so the FTI semantics stay representative.
    s.leaves = static_cast<int>((s.ranks + s.nodes_per_leaf *
                                               s.ranks_per_node - 1) /
                                (s.nodes_per_leaf * s.ranks_per_node));
  }

  s.timesteps = 3 + static_cast<int>(rng.uniform_int(38));
  s.kernel_cost = std::pow(10.0, rng.uniform(-2.0, 1.5));
  if (rng.uniform() < 0.5) {
    s.exchange_degree = 1 + static_cast<int>(rng.uniform_int(6));
    s.exchange_bytes = 1ull << (8 + rng.uniform_int(15));
  }
  if (rng.uniform() < 0.5) s.allreduce_bytes = 1ull << (3 + rng.uniform_int(14));
  s.barrier = rng.uniform() < 0.3;
  s.ckpt_bytes_per_rank = 1ull << (16 + rng.uniform_int(11));

  // Checkpoint plan: 0-3 distinct levels.
  const int entries = static_cast<int>(rng.uniform_int(4));
  bool used[5] = {};
  for (int i = 0; i < entries; ++i) {
    const int level = 1 + static_cast<int>(rng.uniform_int(4));
    if (used[level]) continue;
    used[level] = true;
    ft::PlanEntry entry;
    entry.level = static_cast<ft::Level>(level);
    entry.period = 1 + static_cast<int>(rng.uniform_int(15));
    entry.async = rng.uniform() < 0.2;
    s.plan.push_back(entry);
  }
  std::sort(s.plan.begin(), s.plan.end(),
            [](const ft::PlanEntry& a, const ft::PlanEntry& b) {
              return static_cast<int>(a.level) < static_cast<int>(b.level);
            });

  s.noise_sigma = rng.uniform() < 0.4 ? rng.uniform(0.01, 0.3) : 0.0;
  s.monte_carlo = s.noise_sigma > 0.0;

  if (rng.uniform() < 0.5) {
    s.inject_faults = true;
    // Pin the system MTBF to the clean runtime scale so faults actually
    // strike (and sometimes don't) across the corpus.
    const double clean_scale =
        std::max(1e-3, s.kernel_cost * s.timesteps);
    const std::int64_t nodes =
        std::max<std::int64_t>(1, s.ranks / std::max(1, s.fti.node_size));
    const double system_mtbf = clean_scale * rng.uniform(0.3, 4.0);
    s.node_mtbf_seconds = system_mtbf * static_cast<double>(nodes);
    const double roll = rng.uniform();
    s.loss_fraction = roll < 0.4 ? 1.0 : roll < 0.7 ? 0.0 : 0.3;
    const double shape_roll = rng.uniform();
    s.weibull_shape = shape_roll < 0.6 ? 1.0
                      : shape_roll < 0.8 ? rng.uniform(0.6, 0.95)
                                         : rng.uniform(1.1, 2.5);
    s.downtime_seconds = rng.uniform(0.0, 5.0);
  }

  s.trials = 4 + static_cast<int>(rng.uniform_int(9));
  return s;
}

}  // namespace ftbesst::verify
