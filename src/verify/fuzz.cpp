#include "verify/fuzz.hpp"

#include <algorithm>
#include <functional>
#include <stdexcept>
#include <string_view>

#include "core/workflow.hpp"
#include "verify/format.hpp"
#include "model/feature_model.hpp"
#include "model/serialize.hpp"
#include "svc/json.hpp"
#include "svc/wire.hpp"
#include "util/rng.hpp"
#include "verify/scenario.hpp"

namespace ftbesst::verify {

namespace {

/// Small frame cap for fuzzing so the oversize-rejection path is reachable
/// with tiny inputs and no mutation can demand a large allocation.
constexpr std::uint32_t kFuzzFrameCap = 1u << 16;

std::string_view as_text(const std::uint8_t* data, std::size_t size) {
  return {reinterpret_cast<const char*>(data), size};
}

[[noreturn]] void invariant_violated(const char* target, const char* what) {
  throw std::logic_error(std::string(target) + ": " + what);
}

}  // namespace

// --- single-input entries -------------------------------------------------

bool fuzz_json_one(const std::uint8_t* data, std::size_t size) {
  svc::Json value;
  try {
    value = svc::Json::parse(as_text(data, size));
  } catch (const std::invalid_argument&) {
    return false;
  }
  const std::string canonical = value.dump();
  svc::Json reparsed;
  try {
    reparsed = svc::Json::parse(canonical);
  } catch (const std::invalid_argument&) {
    invariant_violated("json", "canonical dump failed to re-parse");
  }
  if (!(reparsed == value))
    invariant_violated("json", "parse(dump(v)) != v");
  if (reparsed.dump() != canonical)
    invariant_violated("json", "dump is not a fixpoint");
  return true;
}

bool fuzz_wire_one(const std::uint8_t* data, std::size_t size) {
  const std::string input(as_text(data, size));

  // Whole-buffer feed: drain every complete frame at once.
  std::vector<std::string> whole_frames;
  std::string whole_rest = input;
  bool whole_threw = false;
  try {
    std::string frame;
    while (svc::extract_frame(whole_rest, frame, kFuzzFrameCap))
      whole_frames.push_back(frame);
  } catch (const std::invalid_argument&) {
    whole_threw = true;
  }

  // Byte-at-a-time feed: the codec must be insensitive to how the stream
  // fragments across reads.
  std::vector<std::string> inc_frames;
  std::string inc_buffer;
  bool inc_threw = false;
  try {
    std::string frame;
    for (char c : input) {
      inc_buffer.push_back(c);
      while (svc::extract_frame(inc_buffer, frame, kFuzzFrameCap))
        inc_frames.push_back(frame);
    }
  } catch (const std::invalid_argument&) {
    inc_threw = true;
  }

  if (whole_threw != inc_threw)
    invariant_violated("wire", "oversize rejection depends on fragmentation");
  if (whole_frames != inc_frames)
    invariant_violated("wire", "frames depend on read fragmentation");
  if (!whole_threw && whole_rest != inc_buffer)
    invariant_violated("wire", "residual bytes depend on fragmentation");
  return !whole_frames.empty();
}

bool fuzz_plan_one(const std::uint8_t* data, std::size_t size) {
  const std::string text(as_text(data, size));
  std::vector<ft::PlanEntry> plan;
  try {
    plan = core::parse_plan(text);
  } catch (const std::invalid_argument&) {
    return false;
  }
  try {
    core::validate_plan(plan);
  } catch (const std::invalid_argument&) {
    invariant_violated("plan", "parse_plan output fails validate_plan");
  }
  const std::string canonical = plan_to_string(plan);
  std::vector<ft::PlanEntry> reparsed;
  try {
    reparsed = canonical.empty() ? std::vector<ft::PlanEntry>{}
                                 : core::parse_plan(canonical);
  } catch (const std::invalid_argument&) {
    invariant_violated("plan", "canonical spelling failed to re-parse");
  }
  if (reparsed.size() != plan.size())
    invariant_violated("plan", "round-trip changed entry count");
  for (std::size_t i = 0; i < plan.size(); ++i)
    if (reparsed[i].level != plan[i].level ||
        reparsed[i].period != plan[i].period ||
        reparsed[i].async != plan[i].async)
      invariant_violated("plan", "round-trip changed an entry");
  return true;
}

bool fuzz_model_one(const std::uint8_t* data, std::size_t size) {
  model::PerfModelPtr m;
  try {
    m = model::model_from_string(std::string(as_text(data, size)));
  } catch (const std::invalid_argument&) {
    return false;
  }
  std::string first;
  try {
    first = model::model_to_string(*m);
  } catch (const std::invalid_argument&) {
    invariant_violated("model", "loaded model failed to re-serialize");
  }
  model::PerfModelPtr again;
  try {
    again = model::model_from_string(first);
  } catch (const std::invalid_argument&) {
    invariant_violated("model", "serialized form failed to re-load");
  }
  if (model::model_to_string(*again) != first)
    invariant_violated("model", "serialization is not a fixpoint");
  return true;
}

// --- grammar-based generators --------------------------------------------

namespace {

void gen_json_value(util::Rng& rng, int depth, std::string& out) {
  const std::uint64_t kind =
      depth >= 4 ? rng.uniform_int(4) : rng.uniform_int(6);
  switch (kind) {
    case 0:
      out += "null";
      break;
    case 1:
      out += rng.uniform() < 0.5 ? "true" : "false";
      break;
    case 2: {
      switch (rng.uniform_int(4)) {
        case 0: out += std::to_string(static_cast<std::int64_t>(
                    rng.uniform_int(1u << 20)) - (1 << 19)); break;
        case 1: out += format_double(rng.uniform(-1e6, 1e6)); break;
        case 2: out += format_double(rng.uniform(0.0, 1.0)); break;
        default: out += std::to_string(rng.uniform_int(100)) + "e" +
                        std::to_string(static_cast<int>(rng.uniform_int(17)) -
                                       8); break;
      }
      break;
    }
    case 3: {
      out += '"';
      const std::uint64_t len = rng.uniform_int(12);
      for (std::uint64_t i = 0; i < len; ++i) {
        switch (rng.uniform_int(8)) {
          case 0: out += "\\\""; break;
          case 1: out += "\\\\"; break;
          case 2: out += "\\n"; break;
          case 3: {
            out += "\\u00";
            const char* hex = "0123456789abcdef";
            out += hex[rng.uniform_int(16)];
            out += hex[rng.uniform_int(16)];
            break;
          }
          default:
            out += static_cast<char>('a' + rng.uniform_int(26));
            break;
        }
      }
      out += '"';
      break;
    }
    case 4: {
      out += '[';
      const std::uint64_t n = rng.uniform_int(4);
      for (std::uint64_t i = 0; i < n; ++i) {
        if (i) out += ',';
        if (rng.uniform() < 0.2) out += ' ';
        gen_json_value(rng, depth + 1, out);
      }
      out += ']';
      break;
    }
    default: {
      out += '{';
      const std::uint64_t n = rng.uniform_int(4);
      for (std::uint64_t i = 0; i < n; ++i) {
        if (i) out += ',';
        out += '"';
        out += static_cast<char>('a' + rng.uniform_int(26));
        out += "\":";
        if (rng.uniform() < 0.2) out += ' ';
        gen_json_value(rng, depth + 1, out);
      }
      out += '}';
      break;
    }
  }
}

std::string gen_json(util::Rng& rng) {
  std::string out;
  gen_json_value(rng, 0, out);
  return out;
}

std::string gen_wire(util::Rng& rng) {
  std::string out;
  const std::uint64_t frames = rng.uniform_int(4);
  for (std::uint64_t f = 0; f < frames; ++f) {
    const std::uint64_t len = rng.uniform_int(64);
    unsigned char header[4];
    if (rng.uniform() < 0.1) {
      // Forged oversize / mismatched length prefix.
      svc::encode_length(
          static_cast<std::uint32_t>(rng.uniform_int(0xffffffffull)), header);
    } else {
      svc::encode_length(static_cast<std::uint32_t>(len), header);
    }
    out.append(reinterpret_cast<const char*>(header), 4);
    for (std::uint64_t i = 0; i < len; ++i)
      out += static_cast<char>(rng.uniform_int(256));
  }
  // Sometimes leave a dangling partial frame.
  if (rng.uniform() < 0.3) {
    const std::uint64_t tail = rng.uniform_int(6);
    for (std::uint64_t i = 0; i < tail; ++i)
      out += static_cast<char>(rng.uniform_int(256));
  }
  return out;
}

std::string gen_plan(util::Rng& rng) {
  std::string out;
  const std::uint64_t entries = rng.uniform_int(5);
  for (std::uint64_t i = 0; i < entries; ++i) {
    if (i) out += ',';
    if (rng.uniform() < 0.1) {
      out += "junk";
      continue;
    }
    out += 'L';
    out += static_cast<char>('0' + rng.uniform_int(7));  // 0-6: some invalid
    out += ':';
    out += std::to_string(static_cast<std::int64_t>(rng.uniform_int(200)) -
                          10);
    if (rng.uniform() < 0.3) out += 'a';
  }
  return out;
}

void gen_sexpr(util::Rng& rng, int depth, std::string& out) {
  const std::uint64_t kind =
      depth >= 5 ? rng.uniform_int(2) : rng.uniform_int(6);
  switch (kind) {
    case 0:
      out += "(const " + format_double(rng.uniform(-10.0, 10.0)) + ")";
      break;
    case 1:
      out += "(var " + std::to_string(rng.uniform_int(4)) + ")";
      break;
    case 2:
    case 3: {
      out += rng.uniform() < 0.5 ? "(log " : "(sqrt ";
      gen_sexpr(rng, depth + 1, out);
      out += ')';
      break;
    }
    default: {
      static const char* ops[] = {"add", "sub", "mul", "div"};
      out += '(';
      out += ops[rng.uniform_int(4)];
      out += ' ';
      gen_sexpr(rng, depth + 1, out);
      out += ' ';
      gen_sexpr(rng, depth + 1, out);
      out += ')';
      break;
    }
  }
}

std::string gen_model(util::Rng& rng) {
  std::string out = "ftbesst-model v1\n";
  if (rng.uniform() < 0.25) out += "noisy " + format_double(
                                        rng.uniform(0.0, 0.5)) + "\n";
  switch (rng.uniform_int(4)) {
    case 0:
      out += "constant " + format_double(rng.uniform(0.0, 100.0)) + "\n";
      break;
    case 1: {
      const std::uint64_t n = rng.uniform_int(4);
      out += "powerlaw " + format_double(rng.uniform(0.1, 10.0)) + " " +
             std::to_string(n);
      for (std::uint64_t i = 0; i < n; ++i)
        out += " " + format_double(rng.uniform(-2.0, 2.0));
      out += "\n";
      break;
    }
    case 2: {
      const std::uint64_t n = rng.uniform_int(3);
      out += "exprmodel " + format_double(rng.uniform(0.1, 10.0)) + " " +
             format_double(rng.uniform(-1.0, 1.0)) + " " + std::to_string(n);
      for (std::uint64_t i = 0; i < n; ++i)
        out += " p" + std::to_string(i);
      out += "\n";
      gen_sexpr(rng, 0, out);
      out += "\n";
      break;
    }
    default: {
      const std::uint64_t params = 1 + rng.uniform_int(3);
      const std::size_t weights =
          model::FeatureLibrary::polynomial(params).size();
      out += "featuremodel polynomial " + std::to_string(params) + " " +
             std::to_string(weights) + "\n";
      for (std::size_t i = 0; i < weights; ++i) {
        if (i) out += ' ';
        out += format_double(rng.uniform(-5.0, 5.0));
      }
      out += "\n";
      break;
    }
  }
  return out;
}

void mutate(util::Rng& rng, std::string& input) {
  const std::uint64_t rounds = rng.uniform_int(4);  // 0 = keep well-formed
  for (std::uint64_t r = 0; r < rounds && !input.empty(); ++r) {
    switch (rng.uniform_int(5)) {
      case 0:  // flip a byte
        input[rng.uniform_int(input.size())] =
            static_cast<char>(rng.uniform_int(256));
        break;
      case 1:  // insert a byte
        input.insert(input.begin() +
                         static_cast<std::ptrdiff_t>(
                             rng.uniform_int(input.size() + 1)),
                     static_cast<char>(rng.uniform_int(256)));
        break;
      case 2: {  // erase a short range
        const std::size_t at = rng.uniform_int(input.size());
        const std::size_t n =
            std::min<std::size_t>(1 + rng.uniform_int(4), input.size() - at);
        input.erase(at, n);
        break;
      }
      case 3: {  // duplicate a slice
        const std::size_t at = rng.uniform_int(input.size());
        const std::size_t n =
            std::min<std::size_t>(1 + rng.uniform_int(8), input.size() - at);
        input.insert(rng.uniform_int(input.size() + 1),
                     input.substr(at, n));
        break;
      }
      default:  // truncate
        input.resize(rng.uniform_int(input.size() + 1));
        break;
    }
  }
}

std::string to_hex(const std::string& bytes) {
  static const char* hex = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (unsigned char c : bytes) {
    out += hex[c >> 4];
    out += hex[c & 0xf];
  }
  return out;
}

template <typename Gen, typename Entry>
FuzzResult run_campaign(const char* target, std::uint64_t seed,
                        std::uint64_t iterations, Gen gen, Entry entry) {
  FuzzResult result;
  result.target = target;
  result.seed = seed;
  util::Rng rng = util::Rng(seed).split(
      std::hash<std::string_view>{}(target));
  for (std::uint64_t it = 0; it < iterations; ++it) {
    result.iterations = it + 1;
    std::string input = gen(rng);
    mutate(rng, input);
    try {
      if (entry(reinterpret_cast<const std::uint8_t*>(input.data()),
                input.size()))
        ++result.accepted;
    } catch (const std::exception& e) {
      result.bugs.push_back({it, e.what(), to_hex(input)});
    } catch (...) {
      result.bugs.push_back({it, "non-std exception", to_hex(input)});
    }
  }
  return result;
}

}  // namespace

std::string FuzzResult::summary() const {
  std::string out = target + ": " + std::to_string(iterations) +
                    " iterations, " + std::to_string(accepted) +
                    " accepted, " + std::to_string(bugs.size()) + " bug(s)";
  for (const FuzzBug& b : bugs)
    out += "\n  BUG seed=" + std::to_string(seed) +
           " iteration=" + std::to_string(b.iteration) + ": " + b.what +
           "\n  input_hex=" + b.input_hex;
  return out;
}

FuzzResult fuzz_json(std::uint64_t seed, std::uint64_t iterations) {
  return run_campaign("json", seed, iterations, gen_json, fuzz_json_one);
}
FuzzResult fuzz_wire(std::uint64_t seed, std::uint64_t iterations) {
  return run_campaign("wire", seed, iterations, gen_wire, fuzz_wire_one);
}
FuzzResult fuzz_plan(std::uint64_t seed, std::uint64_t iterations) {
  return run_campaign("plan", seed, iterations, gen_plan, fuzz_plan_one);
}
FuzzResult fuzz_model(std::uint64_t seed, std::uint64_t iterations) {
  return run_campaign("model", seed, iterations, gen_model, fuzz_model_one);
}

std::vector<FuzzResult> fuzz_all(std::uint64_t seed,
                                 std::uint64_t iterations) {
  return {fuzz_json(seed, iterations), fuzz_wire(seed, iterations),
          fuzz_plan(seed, iterations), fuzz_model(seed, iterations)};
}

std::vector<std::uint8_t> fuzz_unhex(const std::string& hex) {
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    throw std::invalid_argument("bad hex digit");
  };
  if (hex.size() % 2 != 0)
    throw std::invalid_argument("odd-length hex string");
  std::vector<std::uint8_t> out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2)
    out.push_back(static_cast<std::uint8_t>((nibble(hex[i]) << 4) |
                                            nibble(hex[i + 1])));
  return out;
}

}  // namespace ftbesst::verify
