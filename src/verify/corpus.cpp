#include "verify/corpus.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "core/engine_des.hpp"
#include "core/montecarlo.hpp"
#include "verify/format.hpp"

namespace ftbesst::verify {

namespace {

constexpr const char* kResultMagic = "ftbesst-verify-result v1";

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read " + path.string());
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void append_series(std::string& out, const char* key,
                   const std::vector<double>& xs) {
  out += key;
  for (double x : xs) {
    out += ' ';
    append_double(out, x);
  }
  out += '\n';
}

/// First line where two texts diverge (1-based), for mismatch messages.
std::string first_divergence(const std::string& got,
                             const std::string& want) {
  std::istringstream gs(got), ws(want);
  std::string gl, wl;
  int line = 0;
  for (;;) {
    ++line;
    const bool g = static_cast<bool>(std::getline(gs, gl));
    const bool w = static_cast<bool>(std::getline(ws, wl));
    if (!g && !w) return "texts differ only in trailing bytes";
    if (!g || !w || gl != wl)
      return "line " + std::to_string(line) + ": got '" +
             (g ? gl : "<eof>") + "' want '" + (w ? wl : "<eof>") + "'";
  }
}

}  // namespace

std::string result_to_text(const Scenario& s, unsigned threads) {
  BuiltScenario built = build(s);
  const core::EnsembleResult r =
      core::run_ensemble(built.app, built.arch, built.options,
                         static_cast<std::size_t>(s.trials), threads);
  std::string out(kResultMagic);
  out += '\n';
  out += "trials " + std::to_string(r.total.count) + '\n';
  out += "incomplete " + std::to_string(r.incomplete_trials) + '\n';
  out += "mean " + format_double(r.total.mean) + '\n';
  out += "stddev " + format_double(r.total.stddev) + '\n';
  out += "min " + format_double(r.total.min) + '\n';
  out += "max " + format_double(r.total.max) + '\n';
  out += "median " + format_double(r.total.median) + '\n';
  out += "mean_faults " + format_double(r.mean_faults) + '\n';
  out += "mean_rollbacks " + format_double(r.mean_rollbacks) + '\n';
  out += "mean_full_restarts " + format_double(r.mean_full_restarts) + '\n';
  append_series(out, "totals", r.totals);
  append_series(out, "timestep_end", r.mean_timestep_end);
  return out;
}

std::string CorpusReport::summary() const {
  std::string out = "corpus: " + std::to_string(entries) + " entries, " +
                    std::to_string(replayed) + " replayed, " +
                    std::to_string(mismatches.size()) + " mismatch(es)\n";
  for (const CorpusMismatch& m : mismatches)
    out += "MISMATCH [" + m.name + "] " + m.detail + "\n";
  return out;
}

namespace {

std::vector<std::filesystem::path> corpus_files(const std::string& dir) {
  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir))
    if (entry.is_regular_file() &&
        entry.path().extension() == ".scenario")
      files.push_back(entry.path());
  std::sort(files.begin(), files.end());
  return files;
}

}  // namespace

CorpusReport replay_corpus(const std::string& dir,
                           bool check_thread_invariance) {
  CorpusReport report;
  for (const std::filesystem::path& path : corpus_files(dir)) {
    ++report.entries;
    const std::string name = path.stem().string();
    std::filesystem::path expected_path = path;
    expected_path.replace_extension(".expected");
    try {
      const Scenario s = Scenario::from_text(read_file(path));
      if (!std::filesystem::exists(expected_path)) {
        report.mismatches.push_back(
            {name, "missing " + expected_path.filename().string() +
                       " (run `ftbesst verify --corpus <dir> --update`)"});
        continue;
      }
      const std::string want = read_file(expected_path);
      const std::string serial = result_to_text(s, 1);
      ++report.replayed;
      if (serial != want) {
        report.mismatches.push_back(
            {name, "threads=1 replay diverged: " +
                       first_divergence(serial, want)});
        continue;
      }
      if (check_thread_invariance) {
        const std::string parallel = result_to_text(s, 4);
        if (parallel != want)
          report.mismatches.push_back(
              {name, "threads=4 replay diverged: " +
                         first_divergence(parallel, want)});
      }
    } catch (const std::exception& e) {
      report.mismatches.push_back({name, std::string("exception: ") +
                                             e.what()});
    }
  }
  return report;
}

namespace {

/// Canonical text form of one run_des prediction. Mirrors result_to_text's
/// shortest-round-trip formatting; sim_events is deliberately excluded
/// (it is a diagnostic that folding shrinks, see core::RunResult).
std::string des_result_to_text(const core::RunResult& r) {
  std::string out = "ftbesst-verify-des-result v1\n";
  out += "completed " + std::to_string(r.completed ? 1 : 0) + '\n';
  out += "total " + format_double(r.total_seconds) + '\n';
  out += "instructions " + std::to_string(r.instructions_executed) + '\n';
  out += "faults " + std::to_string(r.faults) + '\n';
  out += "rollbacks " + std::to_string(r.rollbacks) + '\n';
  out += "full_restarts " + std::to_string(r.full_restarts) + '\n';
  append_series(out, "timestep_end", r.timestep_end_times);
  out += "checkpoints";
  for (const int t : r.checkpoint_timesteps)
    out += ' ' + std::to_string(t);
  out += '\n';
  return out;
}

}  // namespace

CorpusReport replay_corpus_folded(const std::string& dir,
                                  std::int64_t max_unfolded_ranks) {
  CorpusReport report;
  for (const std::filesystem::path& path : corpus_files(dir)) {
    ++report.entries;
    const std::string name = path.stem().string();
    try {
      Scenario clean = Scenario::from_text(read_file(path));
      // run_des prices single deterministic executions; strip the
      // stochastic ingredients exactly as the differential checker does.
      clean.inject_faults = false;
      clean.monte_carlo = false;
      clean.noise_sigma = 0.0;
      BuiltScenario built = build(clean);
      built.options.fold_symmetry = true;
      const std::string folded =
          des_result_to_text(core::run_des(built.app, built.arch,
                                           built.options));
      ++report.replayed;
      if (clean.ranks > max_unfolded_ranks) continue;  // folded-only tier
      built.options.fold_symmetry = false;
      const std::string unfolded =
          des_result_to_text(core::run_des(built.app, built.arch,
                                           built.options));
      if (folded != unfolded)
        report.mismatches.push_back(
            {name, "folded-vs-unfolded replay diverged: " +
                       first_divergence(folded, unfolded)});
    } catch (const std::exception& e) {
      report.mismatches.push_back({name, std::string("exception: ") +
                                             e.what()});
    }
  }
  return report;
}

int record_corpus(const std::string& dir) {
  int written = 0;
  for (const std::filesystem::path& path : corpus_files(dir)) {
    const Scenario s = Scenario::from_text(read_file(path));
    std::filesystem::path expected_path = path;
    expected_path.replace_extension(".expected");
    std::ofstream out(expected_path, std::ios::binary);
    if (!out)
      throw std::runtime_error("cannot write " + expected_path.string());
    out << result_to_text(s, 1);
    ++written;
  }
  return written;
}

}  // namespace ftbesst::verify
