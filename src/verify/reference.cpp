#include "verify/reference.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>

#include "net/comm.hpp"
#include "net/topology.hpp"

namespace ftbesst::verify {

namespace {

// Barrier-like agreement across all ranks before the coordinated write:
// one sync_latency per level of a binary reduction tree.
double agreement_time(const ft::StorageParams& sp, std::int64_t ranks) {
  if (ranks <= 1) return 0.0;
  const double tree_depth = std::ceil(std::log2(static_cast<double>(ranks)));
  return sp.sync_latency * tree_depth;
}

// Every level starts with the node dumping its ranks' state to local
// storage: metadata latency plus the serialized write of node_size ranks.
double local_dump_time(const ft::StorageParams& sp, const ft::FtiConfig& fti,
                       std::uint64_t bytes_per_rank) {
  const double node_bytes =
      static_cast<double>(bytes_per_rank) * static_cast<double>(fti.node_size);
  return sp.local_latency + node_bytes / sp.local_write_bw;
}

// Network sharing penalty when all `nodes` push partner/group traffic at
// once: effective NIC bandwidth shrinks linearly with machine size.
double shared_nic_seconds_per_byte(const ft::StorageParams& sp,
                                   std::int64_t nodes) {
  const double slowdown =
      1.0 + sp.congestion_per_node * static_cast<double>(nodes);
  return slowdown / sp.nic_bw;
}

}  // namespace

double reference_checkpoint_cost(const ft::StorageParams& sp,
                                 const ft::FtiConfig& fti, ft::Level level,
                                 std::uint64_t bytes_per_rank,
                                 std::int64_t ranks) {
  if (fti.node_size <= 0 || fti.group_size <= 0 ||
      ranks % (static_cast<std::int64_t>(fti.group_size) * fti.node_size) != 0)
    throw std::invalid_argument(
        "reference cost: ranks must fill whole FTI groups");
  const std::int64_t nodes = ranks / fti.node_size;
  const double node_bytes =
      static_cast<double>(bytes_per_rank) * static_cast<double>(fti.node_size);
  const double base =
      agreement_time(sp, ranks) + local_dump_time(sp, fti, bytes_per_rank);

  switch (level) {
    case ft::Level::kL1:
      return base;
    case ft::Level::kL2: {
      // Each node ships its full image to l2_partners group neighbours
      // over the congested NIC.
      const double per_copy =
          sp.nic_latency +
          node_bytes * shared_nic_seconds_per_byte(sp, nodes);
      return base + static_cast<double>(fti.l2_partners) * per_copy;
    }
    case ft::Level::kL3: {
      // Reed-Solomon across the group: group_size/2 parity shards encoded
      // at rs_encode_rate, then every node exchanges its 1/group_size shard
      // with the other group members.
      const int parity_shards = fti.group_size / 2;
      const double encode_time =
          node_bytes * static_cast<double>(parity_shards) / sp.rs_encode_rate;
      const double shard_bytes =
          node_bytes / static_cast<double>(fti.group_size);
      const double per_peer =
          sp.nic_latency + shard_bytes * shared_nic_seconds_per_byte(sp, nodes);
      return base + encode_time +
             static_cast<double>(fti.group_size - 1) * per_peer;
    }
    case ft::Level::kL4: {
      // All nodes drain through the shared PFS: aggregate volume over
      // aggregate bandwidth.
      const double machine_bytes = node_bytes * static_cast<double>(nodes);
      return base + sp.pfs_latency + machine_bytes / sp.pfs_bw;
    }
  }
  throw std::invalid_argument("reference cost: unknown level");
}

double reference_restart_cost(const ft::StorageParams& sp,
                              const ft::FtiConfig& fti, ft::Level level,
                              std::uint64_t bytes_per_rank,
                              std::int64_t ranks) {
  if (fti.node_size <= 0 || fti.group_size <= 0 ||
      ranks % (static_cast<std::int64_t>(fti.group_size) * fti.node_size) != 0)
    throw std::invalid_argument(
        "reference restart: ranks must fill whole FTI groups");
  const std::int64_t nodes = ranks / fti.node_size;
  const double node_bytes =
      static_cast<double>(bytes_per_rank) * static_cast<double>(fti.node_size);
  const double coord = agreement_time(sp, ranks);
  // Reading the image back costs the same as the local dump (symmetric bw).
  const double local_read = local_dump_time(sp, fti, bytes_per_rank);

  switch (level) {
    case ft::Level::kL1:
      return coord + local_read;
    case ft::Level::kL2:
      // Replacement nodes fetch the partner copy; no congestion term on the
      // recovery path (the machine is otherwise idle).
      return coord + local_read + sp.nic_latency + node_bytes / sp.nic_bw;
    case ft::Level::kL3: {
      // Reconstruction streams k = group - parity data shards through the
      // RS decoder per rebuilt byte.
      const int parity_shards = fti.group_size / 2;
      const double decode_time =
          node_bytes * static_cast<double>(fti.group_size - parity_shards) /
          sp.rs_encode_rate;
      return coord + local_read + decode_time + sp.nic_latency +
             node_bytes / sp.nic_bw;
    }
    case ft::Level::kL4: {
      const double machine_bytes = node_bytes * static_cast<double>(nodes);
      return coord + sp.pfs_latency + machine_bytes / sp.pfs_bw + local_read;
    }
  }
  throw std::invalid_argument("reference restart: unknown level");
}

double reference_timestep_seconds(const Scenario& s) {
  double t = s.kernel_cost;
  if (s.exchange_degree > 0 || s.allreduce_bytes > 0 || s.barrier) {
    const net::TwoStageFatTree topo(s.leaves, s.nodes_per_leaf, s.spines);
    const net::CommModel comm(topo, s.comm);
    if (s.exchange_degree > 0)
      t += comm.neighbor_exchange_time(s.ranks, s.exchange_degree,
                                       s.exchange_bytes);
    if (s.allreduce_bytes > 0) t += comm.allreduce_time(s.ranks,
                                                        s.allreduce_bytes);
    if (s.barrier) t += comm.barrier_time(s.ranks);
  }
  return t;
}

double reference_clean_total_seconds(const Scenario& s) {
  const double step = reference_timestep_seconds(s);
  // Checkpoints due after a timestep execute in ascending level order — the
  // schedule contract ft::CheckpointScheduler documents, re-derived here as
  // plain period arithmetic over a level-sorted view of the plan.
  std::vector<ft::PlanEntry> plan = s.plan;
  std::sort(plan.begin(), plan.end(),
            [](const ft::PlanEntry& a, const ft::PlanEntry& b) {
              return static_cast<int>(a.level) < static_cast<int>(b.level);
            });
  double clock = 0.0;
  double flush_busy_until = 0.0;  // single background-flush channel
  for (int t = 1; t <= s.timesteps; ++t) {
    clock += step;
    for (const ft::PlanEntry& entry : plan) {
      if (t % entry.period != 0) continue;
      const double c = reference_checkpoint_cost(
          s.storage, s.fti, entry.level, s.ckpt_bytes_per_rank, s.ranks);
      if (entry.async) {
        const double wait_for_channel =
            std::max(0.0, flush_busy_until - clock);
        const double staged = s.async_stage_fraction * c;
        clock += wait_for_channel + staged;
        flush_busy_until = clock + (c - staged);
      } else {
        clock += c;
      }
    }
  }
  // FTI finalization: the run is not done until the last flush lands.
  return std::max(clock, flush_busy_until);
}

}  // namespace ftbesst::verify
