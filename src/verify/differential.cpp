#include "verify/differential.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <exception>
#include <filesystem>
#include <fstream>
#include <optional>
#include <utility>

#include "core/engine_des.hpp"
#include "core/montecarlo.hpp"
#include "ft/young_daly.hpp"
#include "inject/campaign.hpp"
#include "model/dataset.hpp"
#include "model/expr.hpp"
#include "model/expr_program.hpp"
#include "model/expr_simd.hpp"
#include "util/rng.hpp"
#include "verify/format.hpp"
#include "verify/reference.hpp"

namespace ftbesst::verify {

namespace {

bool rel_close(double a, double b, double rel, double abs_slack = 0.0) {
  if (std::isnan(a) || std::isnan(b)) return false;
  return std::abs(a - b) <=
         rel * (1.0 + std::abs(a) + std::abs(b)) + abs_slack;
}

bool bits_equal(double a, double b) {
  std::uint64_t ua = 0, ub = 0;
  std::memcpy(&ua, &a, sizeof a);
  std::memcpy(&ub, &b, sizeof b);
  return ua == ub;
}

bool bits_equal(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (!bits_equal(a[i], b[i])) return false;
  return true;
}

std::string pair_detail(const char* what, double a, const char* a_name,
                        double b, const char* b_name) {
  std::string d(what);
  d += ": ";
  d += a_name;
  d += '=';
  append_double(d, a);
  d += ' ';
  d += b_name;
  d += '=';
  append_double(d, b);
  return d;
}

/// A copy of the scenario with every stochastic ingredient stripped — the
/// configuration the deterministic engines and the analytic twin price.
Scenario deterministic_copy(const Scenario& s) {
  Scenario clean = s;
  clean.inject_faults = false;
  clean.monte_carlo = false;
  clean.noise_sigma = 0.0;
  return clean;
}

void add_failure(DiffReport& report, std::string check, std::string detail,
                 const Scenario& s) {
  DiffFailure f;
  f.check = std::move(check);
  f.detail = std::move(detail);
  f.scenario = s;
  report.failures.push_back(std::move(f));
}

// --- leg 1: analytic twin vs run_bsp (clean, deterministic) ---
void check_analytic(const Scenario& s, const DiffTolerances& tol,
                    const BuildOverrides& overrides, DiffReport& report) {
  const Scenario clean = deterministic_copy(s);
  BuiltScenario built = build(clean, overrides);
  const core::RunResult bsp = core::run_bsp(built.app, built.arch,
                                            built.options);
  const double twin = reference_clean_total_seconds(clean);
  ++report.analytic_checks;
  if (!bsp.completed) {
    add_failure(report, "analytic_twin",
                "clean run hit the simulation horizon", clean);
    return;
  }
  if (!rel_close(bsp.total_seconds, twin, tol.analytic_rel))
    add_failure(report, "analytic_twin",
                pair_detail("clean total disagrees", bsp.total_seconds,
                            "bsp", twin, "analytic"),
                clean);
}

// --- leg 2: run_des vs run_bsp (clean, deterministic, no async) ---
void check_engines(const Scenario& s, const DiffTolerances& tol,
                   const BuildOverrides& overrides, DiffReport& report) {
  const Scenario clean = deterministic_copy(s);
  if (clean.has_async()) return;  // DES charges full async checkpoint cost
  BuiltScenario built = build(clean, overrides);
  const core::RunResult bsp = core::run_bsp(built.app, built.arch,
                                            built.options);
  const core::RunResult des = core::run_des(built.app, built.arch,
                                            built.options);
  ++report.engine_checks;
  // The PDES kernel rounds every duration to integer-nanosecond ticks, so
  // allow one tick of drift per executed instruction on top of the
  // relative tolerance.
  const double tick_slack =
      tol.des_tick_seconds *
      static_cast<double>(bsp.instructions_executed);
  if (!rel_close(des.total_seconds, bsp.total_seconds, tol.engine_rel,
                 tick_slack)) {
    add_failure(report, "des_vs_bsp",
                pair_detail("total disagrees", des.total_seconds, "des",
                            bsp.total_seconds, "bsp"),
                clean);
    return;
  }
  if (des.timestep_end_times.size() != bsp.timestep_end_times.size()) {
    add_failure(report, "des_vs_bsp", "timestep trace lengths differ",
                clean);
    return;
  }
  for (std::size_t i = 0; i < des.timestep_end_times.size(); ++i)
    if (!rel_close(des.timestep_end_times[i], bsp.timestep_end_times[i],
                   tol.engine_rel, tick_slack)) {
      add_failure(report, "des_vs_bsp",
                  pair_detail(
                      ("timestep " + std::to_string(i + 1) + " disagrees")
                          .c_str(),
                      des.timestep_end_times[i], "des",
                      bsp.timestep_end_times[i], "bsp"),
                  clean);
      return;
    }
}

// --- leg 2b: run_des folded vs unfolded, bit-identical ---
// Symmetry folding (sim/fold.hpp) collapses equivalent rank components to
// one representative per class and scales counters by multiplicity at
// aggregation. It is a pure execution-cost optimization: every prediction
// field must match the unfolded run bit for bit, and the folded run must
// touch no more PDES events than the unfolded one.
void check_fold(const Scenario& s, const BuildOverrides& overrides,
                DiffReport& report) {
  const Scenario clean = deterministic_copy(s);
  BuiltScenario built = build(clean, overrides);
  built.options.fold_symmetry = true;
  const core::RunResult folded = core::run_des(built.app, built.arch,
                                               built.options);
  built.options.fold_symmetry = false;
  const core::RunResult unfolded = core::run_des(built.app, built.arch,
                                                 built.options);
  ++report.fold_checks;
  if (!bits_equal(folded.total_seconds, unfolded.total_seconds)) {
    add_failure(report, "fold_vs_unfold",
                pair_detail("total not bit-identical", folded.total_seconds,
                            "folded", unfolded.total_seconds, "unfolded"),
                clean);
    return;
  }
  if (!bits_equal(folded.timestep_end_times, unfolded.timestep_end_times)) {
    add_failure(report, "fold_vs_unfold",
                "timestep trace not bit-identical", clean);
    return;
  }
  if (folded.checkpoint_timesteps != unfolded.checkpoint_timesteps) {
    add_failure(report, "fold_vs_unfold",
                "checkpoint timesteps differ", clean);
    return;
  }
  if (folded.instructions_executed != unfolded.instructions_executed ||
      folded.completed != unfolded.completed ||
      folded.faults != unfolded.faults ||
      folded.rollbacks != unfolded.rollbacks ||
      folded.full_restarts != unfolded.full_restarts) {
    add_failure(report, "fold_vs_unfold",
                "scaled counters or completion status differ", clean);
    return;
  }
  if (folded.sim_events > unfolded.sim_events)
    add_failure(report, "fold_vs_unfold",
                pair_detail("folded run processed MORE events",
                            static_cast<double>(folded.sim_events), "folded",
                            static_cast<double>(unfolded.sim_events),
                            "unfolded"),
                clean);
}

// --- leg 3: run_ensemble threads 1 vs N, bit-identical ---
void check_threads(const Scenario& s, const BuildOverrides& overrides,
                   DiffReport& report) {
  BuiltScenario built = build(s, overrides);
  const std::size_t trials = static_cast<std::size_t>(s.trials);
  const core::EnsembleResult one =
      core::run_ensemble(built.app, built.arch, built.options, trials, 1);
  const core::EnsembleResult many =
      core::run_ensemble(built.app, built.arch, built.options, trials, 4);
  ++report.thread_checks;
  const bool same =
      one.total.count == many.total.count &&
      bits_equal(one.total.mean, many.total.mean) &&
      bits_equal(one.total.stddev, many.total.stddev) &&
      bits_equal(one.total.min, many.total.min) &&
      bits_equal(one.total.max, many.total.max) &&
      bits_equal(one.total.median, many.total.median) &&
      bits_equal(one.totals, many.totals) &&
      bits_equal(one.mean_timestep_end, many.mean_timestep_end) &&
      bits_equal(one.mean_faults, many.mean_faults) &&
      bits_equal(one.mean_rollbacks, many.mean_rollbacks) &&
      bits_equal(one.mean_full_restarts, many.mean_full_restarts) &&
      one.incomplete_trials == many.incomplete_trials;
  if (!same)
    add_failure(report, "thread_bits",
                pair_detail("ensemble not bit-identical across threads",
                            one.total.mean, "threads1_mean",
                            many.total.mean, "threadsN_mean"),
                s);
}

// --- leg 4: Young/Daly expected runtime vs ensemble mean ---
// Eligibility + conditioning for the statistical Young/Daly legs (the
// ensemble leg below and the injection-campaign leg): the first-order waste
// model applies only with exponential faults, a single synchronous
// checkpoint level every fault is recoverable from, deterministic
// durations, and a well-conditioned regime (interval and recovery small
// against the system MTBF). Returns the closed-form expected runtime, or
// nullopt when the scenario is ineligible.
std::optional<double> young_daly_expected(const Scenario& s) {
  if (!s.inject_faults || s.weibull_shape != 1.0 || s.monte_carlo ||
      s.noise_sigma != 0.0 || s.plan.size() != 1 || s.plan[0].async)
    return std::nullopt;
  const ft::PlanEntry entry = s.plan[0];
  const bool per_fault_recoverable =
      s.loss_fraction == 0.0 || entry.level >= ft::Level::kL2;
  if (!per_fault_recoverable || s.node_mtbf_seconds <= 0.0)
    return std::nullopt;

  const std::int64_t nodes = s.ranks / s.fti.node_size;
  const double system_mtbf =
      s.node_mtbf_seconds / static_cast<double>(nodes);
  const double step = reference_timestep_seconds(s);
  const double work = step * s.timesteps;
  const double interval = step * entry.period;
  const double ckpt = reference_checkpoint_cost(
      s.storage, s.fti, entry.level, s.ckpt_bytes_per_rank, s.ranks);
  const double restart =
      reference_restart_cost(s.storage, s.fti, entry.level,
                             s.ckpt_bytes_per_rank, s.ranks) +
      s.downtime_seconds;
  // Conditioning guards: outside this regime the first-order model and the
  // simulator legitimately diverge (thrash, censoring, high-order terms).
  if (interval > s.timesteps * step) return std::nullopt;  // < 1 checkpoint
  if (interval / 2.0 + restart > system_mtbf / 4.0) return std::nullopt;
  if (ckpt > system_mtbf / 10.0) return std::nullopt;
  const double expected =
      ft::expected_runtime_cr(work, interval, ckpt, restart, system_mtbf);
  if (!std::isfinite(expected)) return std::nullopt;
  return expected;
}

void check_young_daly(const Scenario& s, const DiffTolerances& tol,
                      const BuildOverrides& overrides, DiffReport& report) {
  const std::optional<double> closed_form = young_daly_expected(s);
  if (!closed_form) return;
  const double expected = *closed_form;

  Scenario mc = s;
  mc.trials = tol.young_daly_trials;
  BuiltScenario built = build(mc, overrides);
  const core::EnsembleResult ens = core::run_ensemble(
      built.app, built.arch, built.options,
      static_cast<std::size_t>(mc.trials), 0);
  if (ens.incomplete_trials > 0) return;  // censored mean is meaningless
  ++report.young_daly_checks;
  const double mean = ens.total.mean;
  if (mean < expected / tol.young_daly_band ||
      mean > expected * tol.young_daly_band)
    add_failure(report, "young_daly",
                pair_detail("ensemble mean outside the Young/Daly band",
                            mean, "simulated", expected, "closed_form"),
                s);
}

// --- leg 4b: in-simulation injection (src/inject), DES engine ---
// Three sub-checks on every fault-injecting scenario, all through the DES
// injection path:
//  (a) injected fold-vs-unfold, bit-identical — rollback is coordinated
//      (every rank rewinds to the same checkpoint at the same instant), so
//      fold groups never diverge and folding must stay a pure
//      execution-cost optimization even mid-recovery (the rule documented
//      at run_des's fold gate);
//  (b) injection campaign threads 1 vs 4, bit-identical — per-trial fault
//      seeds are derived before any trial runs;
//  (c) on Young/Daly-eligible scenarios, the campaign mean makespan must
//      sit in the same multiplicative band as the ensemble leg (same
//      eligibility and conditioning guards via young_daly_expected).
void check_inject(const Scenario& s, const DiffTolerances& tol,
                  const BuildOverrides& overrides, DiffReport& report) {
  if (!s.inject_faults || s.node_mtbf_seconds <= 0.0) return;
  // Injection through the DES needs deterministic durations for the
  // bitwise sub-checks; the campaign already isolates fault-seed variance.
  Scenario det = s;
  det.monte_carlo = false;
  det.noise_sigma = 0.0;
  ++report.inject_checks;

  {  // (a) injected fold vs unfold
    BuiltScenario built = build(det, overrides);
    built.options.fold_symmetry = true;
    const core::RunResult folded =
        core::run_des(built.app, built.arch, built.options);
    built.options.fold_symmetry = false;
    const core::RunResult unfolded =
        core::run_des(built.app, built.arch, built.options);
    if (!bits_equal(folded.total_seconds, unfolded.total_seconds) ||
        !bits_equal(folded.timestep_end_times,
                    unfolded.timestep_end_times) ||
        !bits_equal(folded.lost_work_seconds, unfolded.lost_work_seconds) ||
        folded.faults != unfolded.faults ||
        folded.rollbacks != unfolded.rollbacks ||
        folded.full_restarts != unfolded.full_restarts ||
        folded.recoveries_by_level != unfolded.recoveries_by_level ||
        folded.completed != unfolded.completed) {
      add_failure(report, "inject_fold",
                  pair_detail("injected fold-vs-unfold not bit-identical",
                              folded.total_seconds, "folded",
                              unfolded.total_seconds, "unfolded"),
                  det);
      return;
    }
  }

  {  // (b) campaign threads 1 vs 4
    BuiltScenario built = build(det, overrides);
    inject::CampaignOptions copt;
    copt.engine = built.options;
    copt.trials = static_cast<std::size_t>(std::clamp(s.trials, 1, 4));
    copt.threads = 1;
    const inject::CampaignResult one =
        inject::run_campaign(built.app, built.arch, copt);
    copt.threads = 4;
    const inject::CampaignResult many =
        inject::run_campaign(built.app, built.arch, copt);
    if (!bits_equal(one.totals, many.totals) ||
        !bits_equal(one.mean_lost_work, many.mean_lost_work) ||
        !bits_equal(one.mean_faults, many.mean_faults) ||
        one.incomplete_trials != many.incomplete_trials ||
        one.fault_log.size() != many.fault_log.size()) {
      add_failure(report, "inject_threads",
                  pair_detail("injection campaign not bit-identical across "
                              "threads",
                              one.total.mean, "threads1_mean",
                              many.total.mean, "threads4_mean"),
                  det);
      return;
    }
  }

  // (c) Young/Daly band through the injection campaign
  const std::optional<double> closed_form = young_daly_expected(det);
  if (!closed_form) return;
  BuiltScenario built = build(det, overrides);
  inject::CampaignOptions copt;
  copt.engine = built.options;
  copt.trials = static_cast<std::size_t>(tol.young_daly_trials);
  const inject::CampaignResult res =
      inject::run_campaign(built.app, built.arch, copt);
  if (res.incomplete_trials > 0) return;  // censored mean is meaningless
  ++report.inject_young_daly_checks;
  if (res.total.mean < *closed_form / tol.young_daly_band ||
      res.total.mean > *closed_form * tol.young_daly_band)
    add_failure(report, "inject_young_daly",
                pair_detail("injection campaign mean outside the Young/Daly "
                            "band",
                            res.total.mean, "simulated", *closed_form,
                            "closed_form"),
                det);
}

// --- leg 5: ExprProgram backends, bit-identical across dispatch ---
// The calibration/prediction hot path can execute on any of the SIMD
// batch backends (model/expr_simd.*), all of which promise bit identity
// with the per-row tree-walk. Price a scenario-seeded expression stream
// over an adversarial dataset under every available backend and require
// memcmp-level agreement — a divergence means a backend broke the
// protected-operator or clamp semantics and every fitness/prediction
// number downstream is suspect.
void check_eval_backends(const Scenario& s, DiffReport& report) {
  // Deterministic per scenario (shrinking changes the stream, which is
  // fine: the predicate re-checks whatever the candidate generates).
  const std::uint64_t seed =
      0x9e3779b97f4a7c15ULL ^
      (static_cast<std::uint64_t>(s.ranks) << 32) ^
      (static_cast<std::uint64_t>(s.timesteps) << 12) ^
      s.ckpt_bytes_per_rank ^ static_cast<std::uint64_t>(s.plan.size());
  util::Rng rng(seed);

  const std::size_t num_params = 2 + rng.uniform_int(2);
  const std::size_t rows = 1 + rng.uniform_int(150);
  std::vector<std::string> names;
  for (std::size_t d = 0; d < num_params; ++d)
    names.push_back("p" + std::to_string(d));
  model::Dataset data(std::move(names));
  for (std::size_t r = 0; r < rows; ++r) {
    std::vector<double> params(num_params);
    for (auto& p : params) {
      const double roll = rng.uniform();
      if (roll < 0.12)
        p = 0.0;
      else if (roll < 0.24)
        p = rng.uniform(-2e-9, 2e-9);  // straddles the division guard
      else if (roll < 0.32)
        p = std::pow(10.0, rng.uniform(150.0, 200.0));  // overflow fodder
      else
        p = rng.uniform(-1e4, 1e4);
    }
    data.add_row(std::move(params), {1.0});
  }

  std::vector<model::EvalBackend> backends = {model::EvalBackend::kUnrolled};
  if (model::avx2_supported()) backends.push_back(model::EvalBackend::kAvx2);

  std::vector<double> reference, candidate;
  model::EvalScratch scratch;
  for (int trial = 0; trial < 4; ++trial) {
    const model::Expr expr = model::Expr::random(
        rng, num_params, 2 + static_cast<int>(rng.uniform_int(5)));
    if (expr.empty()) continue;
    const model::ExprProgram prog = model::ExprProgram::compile(expr);
    {
      model::BackendOverrideGuard guard(model::EvalBackend::kScalar);
      prog.eval_dataset(data, reference, scratch);
    }
    ++report.backend_checks;
    for (const model::EvalBackend backend : backends) {
      model::BackendOverrideGuard guard(backend);
      prog.eval_dataset(data, candidate, scratch);
      if (bits_equal(reference, candidate)) continue;
      std::size_t row = 0;
      while (row < reference.size() &&
             bits_equal(reference[row], candidate[row]))
        ++row;
      add_failure(report, "eval_backend",
                  std::string(model::to_string(backend)) +
                      " diverges from scalar at row " + std::to_string(row) +
                      " (expr seed " + std::to_string(seed) + " trial " +
                      std::to_string(trial) + "): " +
                      pair_detail("value", reference[row], "scalar",
                                  candidate[row],
                                  model::to_string(backend)),
                  s);
      return;
    }
  }
}

}  // namespace

void DiffReport::merge(const DiffReport& other) {
  scenarios += other.scenarios;
  analytic_checks += other.analytic_checks;
  engine_checks += other.engine_checks;
  fold_checks += other.fold_checks;
  thread_checks += other.thread_checks;
  young_daly_checks += other.young_daly_checks;
  inject_checks += other.inject_checks;
  inject_young_daly_checks += other.inject_young_daly_checks;
  backend_checks += other.backend_checks;
  search_checks += other.search_checks;
  failures.insert(failures.end(), other.failures.begin(),
                  other.failures.end());
}

std::string DiffReport::summary() const {
  std::string out = "differential: ";
  out += std::to_string(scenarios) + " scenarios, ";
  out += std::to_string(analytic_checks) + " analytic, ";
  out += std::to_string(engine_checks) + " des-vs-bsp, ";
  out += std::to_string(fold_checks) + " fold-vs-unfold, ";
  out += std::to_string(thread_checks) + " thread-bit, ";
  out += std::to_string(young_daly_checks) + " young-daly, ";
  out += std::to_string(inject_checks) + " inject (" +
         std::to_string(inject_young_daly_checks) + " young-daly), ";
  out += std::to_string(backend_checks) + " eval-backend, ";
  out += std::to_string(search_checks) + " search checks, ";
  out += std::to_string(failures.size()) + " failure(s)\n";
  for (const DiffFailure& f : failures) {
    out += "FAIL [" + f.check + "] seed=" + std::to_string(f.generator_seed) +
           " index=" + std::to_string(f.scenario_index) + ": " + f.detail +
           "\n--- shrunk scenario ---\n" + f.scenario.to_text() +
           "-----------------------\n";
  }
  return out;
}

DiffReport check_scenario(const Scenario& s, const DiffTolerances& tol,
                          const BuildOverrides& overrides) {
  DiffReport report;
  report.scenarios = 1;
  try {
    check_analytic(s, tol, overrides, report);
    check_engines(s, tol, overrides, report);
    check_fold(s, overrides, report);
    check_threads(s, overrides, report);
    check_young_daly(s, tol, overrides, report);
    check_inject(s, tol, overrides, report);
    check_eval_backends(s, report);
  } catch (const std::exception& e) {
    add_failure(report, "exception", e.what(), s);
  }
  return report;
}

Scenario shrink(const Scenario& start,
                const std::function<bool(const Scenario&)>& still_fails,
                int budget) {
  Scenario current = start;
  int evals = 0;
  auto try_candidate = [&](const Scenario& candidate) {
    if (evals >= budget) return false;
    ++evals;
    if (!still_fails(candidate)) return false;
    current = candidate;
    return true;
  };

  bool progressed = true;
  while (progressed && evals < budget) {
    progressed = false;

    while (current.timesteps > 1) {
      Scenario c = current;
      c.timesteps = std::max(1, c.timesteps / 2);
      if (!try_candidate(c)) break;
      progressed = true;
    }
    while (current.trials > 1) {
      Scenario c = current;
      c.trials = std::max(1, c.trials / 2);
      if (!try_candidate(c)) break;
      progressed = true;
    }
    for (std::size_t i = current.plan.size(); i-- > 0;) {
      Scenario c = current;
      c.plan.erase(c.plan.begin() + static_cast<std::ptrdiff_t>(i));
      if (try_candidate(c)) progressed = true;
    }
    if (current.exchange_degree != 0) {
      Scenario c = current;
      c.exchange_degree = 0;
      c.exchange_bytes = 0;
      if (try_candidate(c)) progressed = true;
    }
    if (current.allreduce_bytes != 0) {
      Scenario c = current;
      c.allreduce_bytes = 0;
      if (try_candidate(c)) progressed = true;
    }
    if (current.barrier) {
      Scenario c = current;
      c.barrier = false;
      if (try_candidate(c)) progressed = true;
    }
    if (current.noise_sigma != 0.0 || current.monte_carlo) {
      Scenario c = current;
      c.noise_sigma = 0.0;
      c.monte_carlo = false;
      if (try_candidate(c)) progressed = true;
    }
    if (current.inject_faults) {
      Scenario c = current;
      c.inject_faults = false;
      if (try_candidate(c)) progressed = true;
    }
    if (current.downtime_seconds != 0.0) {
      Scenario c = current;
      c.downtime_seconds = 0.0;
      if (try_candidate(c)) progressed = true;
    }
    {
      const std::int64_t unit =
          static_cast<std::int64_t>(current.fti.group_size) *
          current.fti.node_size;
      if (current.ranks > unit) {
        Scenario c = current;
        c.ranks = unit;
        if (try_candidate(c)) progressed = true;
      }
    }
    if (current.ckpt_bytes_per_rank > 1024) {
      Scenario c = current;
      c.ckpt_bytes_per_rank = std::max<std::uint64_t>(
          1024, c.ckpt_bytes_per_rank / 16);
      if (try_candidate(c)) progressed = true;
    }
  }
  return current;
}

DiffReport run_differential(int scenarios, std::uint64_t seed,
                            const DiffTolerances& tol,
                            const std::string& dump_dir) {
  DiffReport report;
  ScenarioGenerator gen(seed);
  for (int i = 0; i < scenarios; ++i) {
    const std::uint64_t index = gen.index();
    const Scenario s = gen.next();
    DiffReport one = check_scenario(s, tol);
    if (!one.ok()) {
      for (DiffFailure& f : one.failures) {
        f.generator_seed = seed;
        f.scenario_index = index;
        const std::string check = f.check;
        f.scenario = shrink(
            f.scenario,
            [&](const Scenario& candidate) {
              const DiffReport r = check_scenario(candidate, tol);
              for (const DiffFailure& rf : r.failures)
                if (rf.check == check) return true;
              return false;
            });
        if (!dump_dir.empty()) {
          std::filesystem::create_directories(dump_dir);
          const std::string path = dump_dir + "/diff-" +
                                   std::to_string(seed) + "-" +
                                   std::to_string(index) + "-" + check +
                                   ".scenario";
          std::ofstream out(path, std::ios::binary);
          out << f.scenario.to_text();
        }
      }
    }
    report.merge(one);
  }
  return report;
}

}  // namespace ftbesst::verify
