#pragma once
// A Scenario is a complete, self-contained description of one FT-BESST
// pricing problem: the machine (topology, comm parameters, FTI layout,
// storage speeds), the application (timestep structure, kernel cost, comm
// volume, checkpoint plan), the fault process, and the run parameters
// (seed, trials). Every engine in the repo — run_bsp, run_des, the analytic
// closed forms, and the Monte-Carlo fault-injection path — can price a
// Scenario, which is what makes cross-engine differential checking
// possible.
//
// Scenarios round-trip through a line-oriented `.scenario` text format
// (`to_text` / `from_text`) so that a disagreement found by the randomized
// checker can be shrunk, dumped, committed to `tests/corpus/`, and replayed
// forever. The format is versioned; parsing is strict (unknown keys are
// errors) but omitted keys take the documented defaults, so hand-written
// corpus entries stay concise.

#include <cstdint>
#include <string>
#include <vector>

#include "core/arch.hpp"
#include "core/beo.hpp"
#include "core/engine_bsp.hpp"
#include "ft/checkpoint_cost.hpp"
#include "ft/fti.hpp"
#include "net/comm.hpp"
#include "util/rng.hpp"

namespace ftbesst::verify {

struct Scenario {
  // --- run parameters ---
  std::uint64_t seed = 1;
  int trials = 8;
  bool monte_carlo = false;      ///< sample() model durations per trial
  double noise_sigma = 0.0;      ///< NoisyModel log-sigma on the work kernel
  /// max_sim_seconds = horizon_multiplier x the clean-run closed form, so a
  /// thrashing no-FT configuration cannot spin the engine forever.
  double horizon_multiplier = 1000.0;
  double async_stage_fraction = 0.15;

  // --- machine ---
  int leaves = 2;                ///< TwoStageFatTree leaf switches
  int nodes_per_leaf = 4;
  int spines = 1;
  int ranks_per_node = 2;
  net::CommParams comm;
  ft::FtiConfig fti{2, 2, 1};
  ft::StorageParams storage;

  // --- application ---
  std::int64_t ranks = 4;
  int timesteps = 10;
  double kernel_cost = 1.0;      ///< seconds per timestep of the work kernel
  int exchange_degree = 0;       ///< 0 = no halo exchange
  std::uint64_t exchange_bytes = 0;
  std::uint64_t allreduce_bytes = 0;  ///< 0 = no allreduce
  bool barrier = false;
  std::uint64_t ckpt_bytes_per_rank = 1u << 20;
  std::vector<ft::PlanEntry> plan;

  // --- fault process ---
  bool inject_faults = false;
  double node_mtbf_seconds = 0.0;
  double loss_fraction = 1.0;
  double weibull_shape = 1.0;
  double downtime_seconds = 1.0;

  [[nodiscard]] bool has_async() const noexcept;

  /// Canonical text form: fixed key order, shortest round-trip doubles.
  /// from_text(to_text(s)) reproduces every field; to_text is a fixpoint.
  [[nodiscard]] std::string to_text() const;
  /// Parse a `.scenario` document. Throws std::invalid_argument naming the
  /// offending line on bad headers, unknown keys, or malformed values.
  /// Omitted keys keep their defaults.
  [[nodiscard]] static Scenario from_text(const std::string& text);
};

/// Canonical plan spelling ("L1:40,L4:100a", "" for No-FT) — the same
/// grammar core::parse_plan accepts.
[[nodiscard]] std::string plan_to_string(const std::vector<ft::PlanEntry>& plan);

/// Everything an engine needs to price the scenario. The arch binds the
/// work kernel, one ConstantModel per plan level evaluated through
/// ft::CheckpointCostModel, and the matching restart models.
struct BuiltScenario {
  core::AppBEO app;
  core::ArchBEO arch;
  core::EngineOptions options;
};

/// Regression-injection hooks for the differential checker's own tests: a
/// scale != 1 mis-prices the checkpoint (or restart) models exactly the way
/// a bug in ft::CheckpointCostModel would, which must be caught by the
/// analytic-twin check.
struct BuildOverrides {
  double checkpoint_cost_scale = 1.0;
  double restart_cost_scale = 1.0;
};

/// Materialize the scenario. Throws std::invalid_argument when the
/// scenario is internally inconsistent (ranks exceed the machine, FTI rank
/// constraint violated by a checkpointing plan, non-positive MTBF, ...).
[[nodiscard]] BuiltScenario build(const Scenario& s,
                                  const BuildOverrides& overrides = {});

/// Seeded, deterministic random scenario source. The same seed yields the
/// same scenario sequence on every platform, so a CI failure log's
/// (seed, index) pair is a complete reproducer.
class ScenarioGenerator {
 public:
  explicit ScenarioGenerator(std::uint64_t seed);
  [[nodiscard]] Scenario next();
  [[nodiscard]] std::uint64_t index() const noexcept { return index_; }

 private:
  util::Rng rng_;
  std::uint64_t index_ = 0;
};

}  // namespace ftbesst::verify
