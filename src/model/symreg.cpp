#include "model/symreg.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "obs/obs.hpp"
#include "util/stats.hpp"
#include "util/task_pool.hpp"

namespace ftbesst::model {

namespace {

struct ScaledFit {
  double scale = 1.0;
  double offset = 0.0;
  double mape = std::numeric_limits<double>::infinity();
};

/// Evaluate a compiled candidate on every row of `data` into `out`,
/// reusing the caller's buffers (the seed allocated a fresh vector per
/// individual per generation — pure churn in the hottest loop).
/// eval_dataset dispatches to the active ExprProgram backend
/// (model/expr_simd.*); all backends are bit-identical by contract, so
/// fitness — and therefore selection — is backend-invariant.
void eval_rows(const ExprProgram& prog, const Dataset& data,
               std::vector<double>& out, EvalScratch& scratch) {
  prog.eval_dataset(data, out, scratch);
}

/// Responses preprocessed once per fit. The MAPE denominator becomes a
/// per-row multiply by a cached 1/|y| instead of a divide inside the
/// per-candidate loop, and the nonzero-response count is known up front.
/// Rows with y == 0 carry a factor of 0.0 (excluded, like the seed's
/// `continue`; a non-finite prediction on such a row degrades the MAPE to
/// infinity instead — the existing non-finite guard — which only demotes
/// candidates that were already producing garbage).
struct ResponseView {
  const std::vector<double>* y = nullptr;
  std::vector<double> inv_abs;  ///< 1/|y[i]|, or 0.0 where y[i] == 0
  std::size_t used = 0;         ///< rows with y != 0
  double sum = 0.0;             ///< sum of y (candidate-independent)
};

ResponseView make_response_view(const std::vector<double>& y) {
  ResponseView v;
  v.y = &y;
  v.inv_abs.resize(y.size());
  for (std::size_t i = 0; i < y.size(); ++i) {
    v.inv_abs[i] = y[i] == 0.0 ? 0.0 : 1.0 / std::abs(y[i]);
    if (y[i] != 0.0) ++v.used;
    v.sum += y[i];
  }
  return v;
}

/// Least-squares linear scaling y ~ a*f + b, then MAPE of the scaled
/// prediction (clamped at 0) against the responses. Reductions run in two
/// independent lanes combined in a fixed order at the end — deterministic
/// (the association never depends on thread count or data), but free of
/// the serial one-accumulator dependency chain.
ScaledFit linear_scale_fit(const std::vector<double>& f,
                           const ResponseView& ry) {
  ScaledFit fit;
  const std::vector<double>& y = *ry.y;
  const std::size_t n = f.size();
  if (n == 0) return fit;
  double sf[2] = {0.0, 0.0};
  double sff[2] = {0.0, 0.0}, sfy[2] = {0.0, 0.0};
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    sf[0] += f[i];
    sf[1] += f[i + 1];
    sff[0] += f[i] * f[i];
    sff[1] += f[i + 1] * f[i + 1];
    sfy[0] += f[i] * y[i];
    sfy[1] += f[i + 1] * y[i + 1];
  }
  for (; i < n; ++i) {
    sf[0] += f[i];
    sff[0] += f[i] * f[i];
    sfy[0] += f[i] * y[i];
  }
  const double tf = sf[0] + sf[1];
  const double ty = ry.sum;
  const double tff = sff[0] + sff[1];
  const double tfy = sfy[0] + sfy[1];
  const double den = static_cast<double>(n) * tff - tf * tf;
  if (std::abs(den) > 1e-30) {
    fit.scale = (static_cast<double>(n) * tfy - tf * ty) / den;
    fit.offset = (ty - fit.scale * tf) / static_cast<double>(n);
  } else {  // constant candidate: best is the mean
    fit.scale = 0.0;
    fit.offset = ty / static_cast<double>(n);
  }
  double acc[2] = {0.0, 0.0};
  i = 0;
  for (; i + 2 <= n; i += 2) {
    acc[0] += std::abs(std::max(0.0, fit.scale * f[i] + fit.offset) - y[i]) *
              ry.inv_abs[i];
    acc[1] +=
        std::abs(std::max(0.0, fit.scale * f[i + 1] + fit.offset) - y[i + 1]) *
        ry.inv_abs[i + 1];
  }
  for (; i < n; ++i)
    acc[0] += std::abs(std::max(0.0, fit.scale * f[i] + fit.offset) - y[i]) *
              ry.inv_abs[i];
  fit.mape = ry.used
                 ? 100.0 * (acc[0] + acc[1]) / static_cast<double>(ry.used)
                 : std::numeric_limits<double>::infinity();
  if (!std::isfinite(fit.mape))
    fit.mape = std::numeric_limits<double>::infinity();
  return fit;
}

double mape_with_scaling(const ExprProgram& prog, const Dataset& data,
                         double scale, double offset, std::vector<double>& f,
                         EvalScratch& scratch) {
  if (data.empty()) return std::numeric_limits<double>::infinity();
  eval_rows(prog, data, f, scratch);
  const std::vector<double>& ys = data.responses();
  double acc = 0.0;
  std::size_t used = 0;
  for (std::size_t i = 0; i < f.size(); ++i) {
    const double y = ys[i];
    if (y == 0.0) continue;
    const double pred = std::max(0.0, scale * f[i] + offset);
    acc += std::abs(pred - y) / std::abs(y);
    ++used;
  }
  return used ? 100.0 * acc / static_cast<double>(used)
              : std::numeric_limits<double>::infinity();
}

}  // namespace

ExprModel::ExprModel(Expr expr, double scale, double offset,
                     std::vector<std::string> param_names)
    : expr_(std::move(expr)),
      program_(ExprProgram::compile(expr_)),
      scale_(scale),
      offset_(offset),
      names_(std::move(param_names)) {}

double ExprModel::predict(std::span<const double> params) const {
  return std::max(0.0, scale_ * expr_.eval(params) + offset_);
}

void ExprModel::predict_batch(const Dataset& data,
                              std::vector<double>& out) const {
  // Column-wise evaluation through the active SIMD backend; the affine
  // rescale + clamp stays scalar (it is O(rows) against an O(rows * program)
  // evaluation and auto-vectorizes anyway).
  EvalScratch scratch;
  program_.eval_dataset(data, out, scratch);
  for (double& v : out) v = std::max(0.0, scale_ * v + offset_);
}

std::string ExprModel::describe() const {
  std::ostringstream os;
  os << "symreg[max(0, " << scale_ << " * " << expr_.str(names_) << " + "
     << offset_ << ")]";
  return os.str();
}

SymbolicRegressor::SymbolicRegressor(SymRegConfig config)
    : config_(config) {
  if (config_.population < 4)
    throw std::invalid_argument("population must be >= 4");
  if (config_.tournament < 1)
    throw std::invalid_argument("tournament must be >= 1");
}

SymRegResult SymbolicRegressor::fit(const Dataset& train,
                                    const Dataset& test) const {
  FTBESST_OBS_SPAN("model.symreg_fit");
  // Calibration progress: evals counts expensive compile+batch evaluations,
  // memo_hits the ones the S-expression memo avoided; best_fitness is
  // observed once per generation.  Pure observation — never touches the RNG
  // or fitness math, so obs on/off stays bit-identical.
  static const obs::Counter obs_generations = obs::counter("symreg.generations");
  static const obs::Counter obs_evals = obs::counter("symreg.evals");
  static const obs::Counter obs_memo_hits = obs::counter("symreg.memo_hits");
  static const obs::Histogram obs_best_fitness = obs::histogram(
      "symreg.best_fitness", {0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0, 10.0});
  if (train.empty()) throw std::invalid_argument("empty training set");
  util::Rng rng(config_.seed);
  const std::size_t num_vars = train.num_params();
  const ResponseView ry = make_response_view(train.responses());
  util::TaskPool& pool =
      config_.pool ? *config_.pool : util::TaskPool::shared();

  struct Individual {
    Expr expr;
    ScaledFit fit;
    double fitness = std::numeric_limits<double>::infinity();
    bool evaluated = false;
  };

  // Fitness memo across the whole run, keyed by the canonical S-expression
  // (round-trippable and structurally unique, so hits are exact — no hash
  // collision can hand an individual someone else's fitness). Crossover and
  // mutation re-create the same offspring constantly; a memo hit skips the
  // whole compile + batch-eval + scaling pipeline.
  struct Evaluated {
    ScaledFit fit;
    double fitness = 0.0;
  };
  std::unordered_map<std::string, Evaluated> memo;

  // Evaluate every not-yet-evaluated individual in `pop`: memo lookups and
  // memo insertion run serially (deterministic order), the expensive
  // compile + column-wise evaluation runs on the pool with results written
  // to per-candidate slots — bit-identical for any worker count.
  auto evaluate_population = [&](std::vector<Individual>& inds) {
    std::uint64_t memo_hits = 0;
    struct Pending {
      const Expr* expr = nullptr;
      Evaluated result;
      std::vector<std::size_t> targets;  // individuals sharing this key
    };
    std::vector<Pending> pending;
    std::vector<std::string> pending_keys;
    std::unordered_map<std::string, std::size_t> batch_index;
    for (std::size_t i = 0; i < inds.size(); ++i) {
      if (inds[i].evaluated) continue;
      std::string key = inds[i].expr.to_sexpr();
      if (const auto hit = memo.find(key); hit != memo.end()) {
        inds[i].fit = hit->second.fit;
        inds[i].fitness = hit->second.fitness;
        inds[i].evaluated = true;
        ++memo_hits;
        continue;
      }
      const auto [it, fresh] =
          batch_index.emplace(std::move(key), pending.size());
      if (fresh) {
        pending.push_back(Pending{&inds[i].expr, {}, {}});
        pending_keys.push_back(it->first);
      }
      pending[it->second].targets.push_back(i);
    }

    util::parallel_for(
        pending.size(),
        [&](std::size_t p) {
          // Reused across candidates claimed by the same worker thread.
          thread_local std::vector<double> f;
          thread_local EvalScratch scratch;
          thread_local ExprProgram prog;
          Pending& work = pending[p];
          ExprProgram::compile_into(*work.expr, prog);
          eval_rows(prog, train, f, scratch);
          work.result.fit = linear_scale_fit(f, ry);
          work.result.fitness =
              work.result.fit.mape +
              config_.parsimony * static_cast<double>(work.expr->size());
        },
        pool);

    for (std::size_t p = 0; p < pending.size(); ++p) {
      memo.emplace(pending_keys[p], pending[p].result);
      for (std::size_t i : pending[p].targets) {
        inds[i].fit = pending[p].result.fit;
        inds[i].fitness = pending[p].result.fitness;
        inds[i].evaluated = true;
      }
    }
    if (obs::enabled()) {
      obs_evals.add(pending.size());
      obs_memo_hits.add(memo_hits);
    }
  };

  // Seed: random trees plus canonical performance-model shapes (products /
  // ratios of the parameters), which dramatically shortens the search for
  // the monomial-dominated timing surfaces we fit.
  std::vector<Individual> pop(config_.population);
  std::size_t idx = 0;
  for (std::size_t v = 0; v < num_vars && idx < pop.size(); ++v)
    pop[idx++].expr = Expr::variable(v);
  for (std::size_t a = 0; a < num_vars && idx < pop.size(); ++a)
    for (std::size_t b = 0; b < num_vars && idx + 3 < pop.size(); ++b) {
      pop[idx++].expr =
          Expr::binary(Op::kMul, Expr::variable(a), Expr::variable(b));
      pop[idx++].expr = Expr::binary(
          Op::kMul, Expr::variable(a),
          Expr::binary(Op::kMul, Expr::variable(b), Expr::variable(b)));
      pop[idx++].expr = Expr::binary(Op::kMul, Expr::variable(a),
                                     Expr::unary(Op::kLog, Expr::variable(b)));
      if (a != b)
        pop[idx++].expr =
            Expr::binary(Op::kDiv, Expr::variable(a), Expr::variable(b));
    }
  for (; idx < pop.size(); ++idx)
    pop[idx].expr = Expr::random(rng, num_vars, config_.max_depth);
  evaluate_population(pop);

  auto tournament = [&]() -> const Individual& {
    const Individual* best = &pop[rng.uniform_int(pop.size())];
    for (std::size_t i = 1; i < config_.tournament; ++i) {
      const Individual* cand = &pop[rng.uniform_int(pop.size())];
      if (cand->fitness < best->fitness) best = cand;
    }
    return *best;
  };

  SymRegResult result;
  double champion_score = std::numeric_limits<double>::infinity();
  std::vector<double> test_buf;
  EvalScratch test_scratch;

  auto consider_champion = [&](const Individual& ind, std::size_t gen) {
    double test_mape = ind.fit.mape;
    if (!test.empty()) {
      const ExprProgram prog = ExprProgram::compile(ind.expr);
      test_mape = mape_with_scaling(prog, test, ind.fit.scale, ind.fit.offset,
                                    test_buf, test_scratch);
    }
    // Champion selection blends training and held-out accuracy: test rows
    // are few, so pure test selection is noisy, and pure train selection
    // overfits. Ties favour simplicity via the parsimony term in fitness.
    const double score =
        test.empty() ? ind.fitness : 0.5 * ind.fit.mape + 0.5 * test_mape;
    if (score < champion_score) {
      champion_score = score;
      // Ship the algebraically simplified form — identical semantics,
      // readable formula.
      result.model = std::make_shared<ExprModel>(
          ind.expr.simplified(), ind.fit.scale, ind.fit.offset,
          train.param_names());
      result.train_mape = ind.fit.mape;
      result.test_mape = test.empty() ? ind.fit.mape : test_mape;
      result.generations_run = gen;
    }
  };

  for (std::size_t gen = 0; gen < config_.generations; ++gen) {
    auto best_it =
        std::min_element(pop.begin(), pop.end(),
                         [](const Individual& a, const Individual& b) {
                           return a.fitness < b.fitness;
                         });
    result.best_history.push_back(best_it->fitness);
    if (obs::enabled()) {
      obs_generations.add();
      obs_best_fitness.observe(best_it->fitness);
    }
    consider_champion(*best_it, gen);
    if (best_it->fit.mape < config_.target_train_mape) break;

    std::vector<Individual> next;
    next.reserve(pop.size());
    // Elitism: carry the best few unchanged.
    std::vector<const Individual*> ranked;
    ranked.reserve(pop.size());
    for (const auto& ind : pop) ranked.push_back(&ind);
    std::partial_sort(ranked.begin(),
                      ranked.begin() + static_cast<std::ptrdiff_t>(std::min(
                                           config_.elitism, ranked.size())),
                      ranked.end(),
                      [](const Individual* a, const Individual* b) {
                        return a->fitness < b->fitness;
                      });
    for (std::size_t e = 0; e < std::min(config_.elitism, ranked.size()); ++e) {
      Individual copy;
      copy.expr = ranked[e]->expr.clone();
      copy.fit = ranked[e]->fit;
      copy.fitness = ranked[e]->fitness;
      copy.evaluated = true;
      next.push_back(std::move(copy));
    }

    // Breeding consumes the RNG serially (selection depends only on the
    // previous generation's fitness), so the offspring set is independent
    // of the evaluation schedule; fitness happens afterwards in one batch.
    while (next.size() < pop.size()) {
      const double roll = rng.uniform();
      Individual child;
      if (roll < config_.crossover_prob) {
        child.expr = Expr::crossover(tournament().expr, tournament().expr,
                                     rng, config_.max_nodes);
      } else if (roll < config_.crossover_prob + config_.mutation_prob) {
        child.expr = Expr::mutate(tournament().expr, rng, num_vars,
                                  config_.max_depth, config_.max_nodes);
      } else {
        child.expr = tournament().expr.clone();
      }
      next.push_back(std::move(child));
    }
    evaluate_population(next);
    pop = std::move(next);
  }
  // Final population sweep.
  for (const auto& ind : pop) consider_champion(ind, config_.generations);

  return result;
}

}  // namespace ftbesst::model
