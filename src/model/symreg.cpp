#include "model/symreg.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "util/stats.hpp"

namespace ftbesst::model {

namespace {

struct ScaledFit {
  double scale = 1.0;
  double offset = 0.0;
  double mape = std::numeric_limits<double>::infinity();
};

/// Evaluate `expr` on every row of `data`; returns raw outputs.
std::vector<double> eval_rows(const Expr& expr, const Dataset& data) {
  std::vector<double> out;
  out.reserve(data.num_rows());
  for (const Row& r : data.rows()) out.push_back(expr.eval(r.params));
  return out;
}

/// Least-squares linear scaling y ~ a*f + b, then MAPE of the scaled
/// prediction (clamped at 0) against the responses.
ScaledFit linear_scale_fit(const std::vector<double>& f,
                           const std::vector<double>& y) {
  ScaledFit fit;
  const std::size_t n = f.size();
  if (n == 0) return fit;
  double sf = 0.0, sy = 0.0, sff = 0.0, sfy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sf += f[i];
    sy += y[i];
    sff += f[i] * f[i];
    sfy += f[i] * y[i];
  }
  const double den = static_cast<double>(n) * sff - sf * sf;
  if (std::abs(den) > 1e-30) {
    fit.scale = (static_cast<double>(n) * sfy - sf * sy) / den;
    fit.offset = (sy - fit.scale * sf) / static_cast<double>(n);
  } else {  // constant candidate: best is the mean
    fit.scale = 0.0;
    fit.offset = sy / static_cast<double>(n);
  }
  double acc = 0.0;
  std::size_t used = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (y[i] == 0.0) continue;
    const double pred = std::max(0.0, fit.scale * f[i] + fit.offset);
    acc += std::abs(pred - y[i]) / std::abs(y[i]);
    ++used;
  }
  fit.mape = used ? 100.0 * acc / static_cast<double>(used)
                  : std::numeric_limits<double>::infinity();
  if (!std::isfinite(fit.mape))
    fit.mape = std::numeric_limits<double>::infinity();
  return fit;
}

double mape_with_scaling(const Expr& expr, const Dataset& data, double scale,
                         double offset) {
  if (data.empty()) return std::numeric_limits<double>::infinity();
  double acc = 0.0;
  std::size_t used = 0;
  for (const Row& r : data.rows()) {
    const double y = r.mean_response();
    if (y == 0.0) continue;
    const double pred = std::max(0.0, scale * expr.eval(r.params) + offset);
    acc += std::abs(pred - y) / std::abs(y);
    ++used;
  }
  return used ? 100.0 * acc / static_cast<double>(used)
              : std::numeric_limits<double>::infinity();
}

}  // namespace

ExprModel::ExprModel(Expr expr, double scale, double offset,
                     std::vector<std::string> param_names)
    : expr_(std::move(expr)),
      scale_(scale),
      offset_(offset),
      names_(std::move(param_names)) {}

double ExprModel::predict(std::span<const double> params) const {
  return std::max(0.0, scale_ * expr_.eval(params) + offset_);
}

std::string ExprModel::describe() const {
  std::ostringstream os;
  os << "symreg[max(0, " << scale_ << " * " << expr_.str(names_) << " + "
     << offset_ << ")]";
  return os.str();
}

SymbolicRegressor::SymbolicRegressor(SymRegConfig config)
    : config_(config) {
  if (config_.population < 4)
    throw std::invalid_argument("population must be >= 4");
  if (config_.tournament < 1)
    throw std::invalid_argument("tournament must be >= 1");
}

SymRegResult SymbolicRegressor::fit(const Dataset& train,
                                    const Dataset& test) const {
  if (train.empty()) throw std::invalid_argument("empty training set");
  util::Rng rng(config_.seed);
  const std::size_t num_vars = train.num_params();
  const std::vector<double> y = train.responses();

  struct Individual {
    Expr expr;
    ScaledFit fit;
    double fitness = std::numeric_limits<double>::infinity();
  };

  auto evaluate = [&](Individual& ind) {
    const auto f = eval_rows(ind.expr, train);
    ind.fit = linear_scale_fit(f, y);
    ind.fitness = ind.fit.mape +
                  config_.parsimony * static_cast<double>(ind.expr.size());
  };

  // Seed: random trees plus canonical performance-model shapes (products /
  // ratios of the parameters), which dramatically shortens the search for
  // the monomial-dominated timing surfaces we fit.
  std::vector<Individual> pop(config_.population);
  std::size_t idx = 0;
  for (std::size_t v = 0; v < num_vars && idx < pop.size(); ++v)
    pop[idx++].expr = Expr::variable(v);
  for (std::size_t a = 0; a < num_vars && idx < pop.size(); ++a)
    for (std::size_t b = 0; b < num_vars && idx + 3 < pop.size(); ++b) {
      pop[idx++].expr =
          Expr::binary(Op::kMul, Expr::variable(a), Expr::variable(b));
      pop[idx++].expr = Expr::binary(
          Op::kMul, Expr::variable(a),
          Expr::binary(Op::kMul, Expr::variable(b), Expr::variable(b)));
      pop[idx++].expr = Expr::binary(Op::kMul, Expr::variable(a),
                                     Expr::unary(Op::kLog, Expr::variable(b)));
      if (a != b)
        pop[idx++].expr =
            Expr::binary(Op::kDiv, Expr::variable(a), Expr::variable(b));
    }
  for (; idx < pop.size(); ++idx)
    pop[idx].expr = Expr::random(rng, num_vars, config_.max_depth);
  for (auto& ind : pop) evaluate(ind);

  auto tournament = [&]() -> const Individual& {
    const Individual* best = &pop[rng.uniform_int(pop.size())];
    for (std::size_t i = 1; i < config_.tournament; ++i) {
      const Individual* cand = &pop[rng.uniform_int(pop.size())];
      if (cand->fitness < best->fitness) best = cand;
    }
    return *best;
  };

  SymRegResult result;
  double champion_score = std::numeric_limits<double>::infinity();

  auto consider_champion = [&](const Individual& ind, std::size_t gen) {
    const double test_mape =
        test.empty() ? ind.fit.mape
                     : mape_with_scaling(ind.expr, test, ind.fit.scale,
                                         ind.fit.offset);
    // Champion selection blends training and held-out accuracy: test rows
    // are few, so pure test selection is noisy, and pure train selection
    // overfits. Ties favour simplicity via the parsimony term in fitness.
    const double score =
        test.empty() ? ind.fitness : 0.5 * ind.fit.mape + 0.5 * test_mape;
    if (score < champion_score) {
      champion_score = score;
      // Ship the algebraically simplified form — identical semantics,
      // readable formula.
      result.model = std::make_shared<ExprModel>(
          ind.expr.simplified(), ind.fit.scale, ind.fit.offset,
          train.param_names());
      result.train_mape = ind.fit.mape;
      result.test_mape = test.empty() ? ind.fit.mape : test_mape;
      result.generations_run = gen;
    }
  };

  for (std::size_t gen = 0; gen < config_.generations; ++gen) {
    auto best_it =
        std::min_element(pop.begin(), pop.end(),
                         [](const Individual& a, const Individual& b) {
                           return a.fitness < b.fitness;
                         });
    result.best_history.push_back(best_it->fitness);
    consider_champion(*best_it, gen);
    if (best_it->fit.mape < config_.target_train_mape) break;

    std::vector<Individual> next;
    next.reserve(pop.size());
    // Elitism: carry the best few unchanged.
    std::vector<const Individual*> ranked;
    ranked.reserve(pop.size());
    for (const auto& ind : pop) ranked.push_back(&ind);
    std::partial_sort(ranked.begin(),
                      ranked.begin() + static_cast<std::ptrdiff_t>(std::min(
                                           config_.elitism, ranked.size())),
                      ranked.end(),
                      [](const Individual* a, const Individual* b) {
                        return a->fitness < b->fitness;
                      });
    for (std::size_t e = 0; e < std::min(config_.elitism, ranked.size()); ++e) {
      Individual copy;
      copy.expr = ranked[e]->expr.clone();
      copy.fit = ranked[e]->fit;
      copy.fitness = ranked[e]->fitness;
      next.push_back(std::move(copy));
    }

    while (next.size() < pop.size()) {
      const double roll = rng.uniform();
      Individual child;
      if (roll < config_.crossover_prob) {
        child.expr = Expr::crossover(tournament().expr, tournament().expr,
                                     rng, config_.max_nodes);
      } else if (roll < config_.crossover_prob + config_.mutation_prob) {
        child.expr = Expr::mutate(tournament().expr, rng, num_vars,
                                  config_.max_depth, config_.max_nodes);
      } else {
        child.expr = tournament().expr.clone();
      }
      evaluate(child);
      next.push_back(std::move(child));
    }
    pop = std::move(next);
  }
  // Final population sweep.
  for (const auto& ind : pop) consider_champion(ind, config_.generations);

  return result;
}

}  // namespace ftbesst::model
