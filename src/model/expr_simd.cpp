#include "model/expr_simd.hpp"

#include <atomic>
#include <cassert>
#include <cstdlib>
#include <string_view>

#include "model/dataset.hpp"
#include "model/expr_ops.hpp"
#include "model/expr_program.hpp"
#include "model/expr_simd_block.hpp"
#include "obs/metrics.hpp"
#include "util/log.hpp"

namespace ftbesst::model {

namespace {

// Process-wide backend override: -1 = none, else the EvalBackend value.
std::atomic<int> g_override{-1};

/// Degrade an unavailable AVX2 request to the portable unrolled backend
/// (warning once — a silent fallback would make FTBESST_SIMD=avx2 bench
/// numbers lie on a non-AVX2 host).
EvalBackend clamp_supported(EvalBackend b) noexcept {
  if ((b == EvalBackend::kAvx2 || b == EvalBackend::kAvx2Fast) &&
      !avx2_supported()) {
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true))
      FTBESST_WARN << "FTBESST_SIMD: avx2 backend not available on this "
                      "host/build; falling back to unrolled";
    return EvalBackend::kUnrolled;
  }
  return b;
}

EvalBackend env_backend() {
  if (const char* env = std::getenv("FTBESST_SIMD"); env != nullptr) {
    const std::string_view name(env);
    if (const auto parsed = parse_backend(name))
      return clamp_supported(*parsed);
    if (!name.empty() && name != "auto")
      FTBESST_WARN << "FTBESST_SIMD: unknown backend '" << env
                   << "'; using auto";
  }
  // auto = the best bit-identical backend the host supports. kAvx2Fast is
  // never auto-selected: it trades the bit-identity contract away.
  return avx2_supported() ? EvalBackend::kAvx2 : EvalBackend::kUnrolled;
}

}  // namespace

const char* to_string(EvalBackend backend) noexcept {
  switch (backend) {
    case EvalBackend::kScalar: return "scalar";
    case EvalBackend::kUnrolled: return "unrolled";
    case EvalBackend::kAvx2: return "avx2";
    case EvalBackend::kAvx2Fast: return "avx2fast";
  }
  return "scalar";
}

std::optional<EvalBackend> parse_backend(std::string_view name) noexcept {
  if (name == "off" || name == "scalar") return EvalBackend::kScalar;
  if (name == "unrolled") return EvalBackend::kUnrolled;
  if (name == "avx2") return EvalBackend::kAvx2;
  if (name == "avx2fast" || name == "fast") return EvalBackend::kAvx2Fast;
  return std::nullopt;
}

bool avx2_supported() noexcept {
#if defined(FTBESST_SIMD_AVX2) && (defined(__GNUC__) || defined(__clang__))
  static const bool supported = __builtin_cpu_supports("avx2") != 0;
  return supported;
#else
  return false;
#endif
}

EvalBackend active_backend() noexcept {
  if (const int ov = g_override.load(std::memory_order_relaxed); ov >= 0)
    return clamp_supported(static_cast<EvalBackend>(ov));
  static const EvalBackend resolved = env_backend();
  return resolved;
}

void set_backend_override(std::optional<EvalBackend> backend) noexcept {
  g_override.store(backend ? static_cast<int>(*backend) : -1,
                   std::memory_order_relaxed);
}

std::optional<EvalBackend> backend_override() noexcept {
  const int ov = g_override.load(std::memory_order_relaxed);
  if (ov < 0) return std::nullopt;
  return static_cast<EvalBackend>(ov);
}

namespace simd {

void count_eval(EvalBackend backend, std::size_t rows) noexcept {
  if (!obs::enabled()) return;
  static const obs::Counter evals[4] = {
      obs::counter("model.evals.scalar"),
      obs::counter("model.evals.unrolled"),
      obs::counter("model.evals.avx2"),
      obs::counter("model.evals.avx2fast"),
  };
  static const obs::Counter rows_by_backend[4] = {
      obs::counter("model.rows.scalar"),
      obs::counter("model.rows.unrolled"),
      obs::counter("model.rows.avx2"),
      obs::counter("model.rows.avx2fast"),
  };
  // Pad lanes evaluated beyond the real rows by the blocked backends; the
  // tail-overhead fraction is model.rows.pad over the vector backends'
  // model.rows.* sum. The scalar strip path is un-padded and adds nothing.
  static const obs::Counter pad_rows = obs::counter("model.rows.pad");
  const auto i = static_cast<std::size_t>(backend);
  evals[i].add(1);
  rows_by_backend[i].add(rows);
  if (backend != EvalBackend::kScalar) pad_rows.add(padded_rows(rows) - rows);
}

void eval_batch(const std::vector<ProgInstr>& code, std::uint16_t root,
                std::uint16_t num_regs, const Dataset& data,
                std::vector<double>& out, EvalScratch& scratch,
                EvalBackend backend) {
  const std::size_t n = data.num_rows();
  out.resize(n);
  if (code.empty()) {
    std::fill(out.begin(), out.end(), 0.0);
    return;
  }

  const std::size_t num_params = data.num_params();
  scratch.cols.resize(num_params);
  for (std::size_t d = 0; d < num_params; ++d) {
    const double* const col = data.aligned_column(d);
    assert(is_simd_aligned(col));
    scratch.cols[d] = col;
  }
  scratch.block_regs.resize(static_cast<std::size_t>(num_regs) *
                            simd_detail::kBlockRows);
  assert(is_simd_aligned(scratch.block_regs.data()));

  simd_detail::BatchArgs args;
  args.code = code.data();
  args.ncode = code.size();
  args.root = root;
  args.cols = scratch.cols.data();
  args.num_cols = num_params;
  args.rows = n;
  args.regfile = scratch.block_regs.data();
  args.out = out.data();

  count_eval(backend, n);
  switch (backend) {
#ifdef FTBESST_SIMD_AVX2
    case EvalBackend::kAvx2:
      simd_detail::eval_avx2(args);
      break;
    case EvalBackend::kAvx2Fast:
      simd_detail::eval_avx2_fast(args);
      break;
#endif
    case EvalBackend::kUnrolled:
    default:  // unreachable for clamped backends; kScalar never routes here
      simd_detail::eval_unrolled(args);
      break;
  }
}

}  // namespace simd

namespace simd_detail {
namespace {

/// Portable 4-wide policy: a plain struct of doubles and scalar protected
/// kernels, unrolled so the baseline-ISA auto-vectorizer has straight-line
/// independent lanes to work with. Compiled WITHOUT -mavx2 — this is the
/// fallback for hosts where the AVX2 TU cannot run.
struct UnrolledPolicy {
  static constexpr std::size_t kWidth = 4;
  struct Pack {
    double v[kWidth];
  };
  static Pack load(const double* p) {
    Pack r;
    for (std::size_t i = 0; i < kWidth; ++i) r.v[i] = p[i];
    return r;
  }
  static void store(double* p, Pack x) {
    for (std::size_t i = 0; i < kWidth; ++i) p[i] = x.v[i];
  }
  static Pack splat(double c) {
    Pack r;
    for (std::size_t i = 0; i < kWidth; ++i) r.v[i] = c;
    return r;
  }
  static Pack add(Pack a, Pack b) {
    Pack r;
    for (std::size_t i = 0; i < kWidth; ++i)
      r.v[i] = detail::op_add(a.v[i], b.v[i]);
    return r;
  }
  static Pack sub(Pack a, Pack b) {
    Pack r;
    for (std::size_t i = 0; i < kWidth; ++i)
      r.v[i] = detail::op_sub(a.v[i], b.v[i]);
    return r;
  }
  static Pack mul(Pack a, Pack b) {
    Pack r;
    for (std::size_t i = 0; i < kWidth; ++i)
      r.v[i] = detail::op_mul(a.v[i], b.v[i]);
    return r;
  }
  static Pack div_protected(Pack num, Pack den) {
    Pack r;
    for (std::size_t i = 0; i < kWidth; ++i)
      r.v[i] = detail::op_div(num.v[i], den.v[i]);
    return r;
  }
  static Pack log_protected(Pack x) {
    Pack r;
    for (std::size_t i = 0; i < kWidth; ++i) r.v[i] = detail::op_log(x.v[i]);
    return r;
  }
  static Pack sqrt_protected(Pack x) {
    Pack r;
    for (std::size_t i = 0; i < kWidth; ++i) r.v[i] = detail::op_sqrt(x.v[i]);
    return r;
  }
};

}  // namespace

void eval_unrolled(const BatchArgs& args) {
  eval_blocked<UnrolledPolicy>(args);
}

}  // namespace simd_detail

}  // namespace ftbesst::model
