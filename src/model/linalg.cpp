#include "model/linalg.hpp"

#include <cmath>
#include <stdexcept>

namespace ftbesst::model {

std::vector<double> solve_linear_system(Matrix a, std::vector<double> b) {
  const std::size_t n = a.rows();
  if (a.cols() != n || b.size() != n)
    throw std::invalid_argument("solve_linear_system: shape mismatch");

  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot.
    std::size_t pivot = col;
    double best = std::abs(a.at(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::abs(a.at(r, col)) > best) {
        best = std::abs(a.at(r, col));
        pivot = r;
      }
    }
    if (best < 1e-12) throw std::runtime_error("singular system");
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c)
        std::swap(a.at(pivot, c), a.at(col, c));
      std::swap(b[pivot], b[col]);
    }
    // Eliminate below.
    for (std::size_t r = col + 1; r < n; ++r) {
      const double f = a.at(r, col) / a.at(col, col);
      if (f == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) a.at(r, c) -= f * a.at(col, c);
      b[r] -= f * b[col];
    }
  }
  // Back substitution.
  std::vector<double> x(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    double acc = b[i];
    for (std::size_t c = i + 1; c < n; ++c) acc -= a.at(i, c) * x[c];
    x[i] = acc / a.at(i, i);
  }
  return x;
}

std::vector<double> ridge_least_squares(const Matrix& x,
                                        std::span<const double> y,
                                        double lambda) {
  const std::size_t n = x.rows();
  const std::size_t p = x.cols();
  if (y.size() != n)
    throw std::invalid_argument("ridge_least_squares: shape mismatch");
  // Normal equations: (X^T X + lambda I) w = X^T y.
  Matrix xtx(p, p);
  std::vector<double> xty(p, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t a = 0; a < p; ++a) {
      xty[a] += x.at(i, a) * y[i];
      for (std::size_t b = a; b < p; ++b) xtx.at(a, b) += x.at(i, a) * x.at(i, b);
    }
  }
  for (std::size_t a = 0; a < p; ++a) {
    for (std::size_t b = 0; b < a; ++b) xtx.at(a, b) = xtx.at(b, a);
    xtx.at(a, a) += lambda;
  }
  return solve_linear_system(std::move(xtx), std::move(xty));
}

Matrix cholesky_factor(const Matrix& a) {
  const std::size_t n = a.rows();
  if (a.cols() != n)
    throw std::invalid_argument("cholesky_factor: matrix must be square");
  Matrix l(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double acc = a.at(i, j);
      for (std::size_t k = 0; k < j; ++k) acc -= l.at(i, k) * l.at(j, k);
      if (i == j) {
        if (acc <= 0.0 || !std::isfinite(acc))
          throw std::runtime_error("cholesky_factor: not positive definite");
        l.at(i, i) = std::sqrt(acc);
      } else {
        l.at(i, j) = acc / l.at(j, j);
      }
    }
  }
  return l;
}

std::vector<double> cholesky_solve(const Matrix& l, std::span<const double> b) {
  const std::size_t n = l.rows();
  if (l.cols() != n || b.size() != n)
    throw std::invalid_argument("cholesky_solve: shape mismatch");
  // Forward solve L z = b.
  std::vector<double> z(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = b[i];
    for (std::size_t k = 0; k < i; ++k) acc -= l.at(i, k) * z[k];
    z[i] = acc / l.at(i, i);
  }
  // Back solve L^T x = z.
  std::vector<double> x(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    double acc = z[i];
    for (std::size_t k = i + 1; k < n; ++k) acc -= l.at(k, i) * x[k];
    x[i] = acc / l.at(i, i);
  }
  return x;
}

}  // namespace ftbesst::model
