#pragma once
// Expression trees for symbolic regression.
//
// Operators are "protected" in the usual GP sense (division by ~0 returns
// the numerator, log/sqrt take magnitudes) so that every tree is total over
// the whole parameter space and evolution never has to reason about domain
// errors.

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace ftbesst::model {

enum class Op : std::uint8_t {
  kConst,
  kVar,
  kAdd,
  kSub,
  kMul,
  kDiv,
  kLog,
  kSqrt
};

[[nodiscard]] constexpr bool is_binary(Op op) noexcept {
  return op == Op::kAdd || op == Op::kSub || op == Op::kMul || op == Op::kDiv;
}
[[nodiscard]] constexpr bool is_unary(Op op) noexcept {
  return op == Op::kLog || op == Op::kSqrt;
}

struct ExprNode {
  Op op = Op::kConst;
  double value = 0.0;    // kConst
  std::size_t var = 0;   // kVar
  std::unique_ptr<ExprNode> lhs;
  std::unique_ptr<ExprNode> rhs;
};

class Expr {
 public:
  Expr() = default;  // empty; eval() of an empty Expr returns 0

  [[nodiscard]] static Expr constant(double v);
  [[nodiscard]] static Expr variable(std::size_t index);
  [[nodiscard]] static Expr binary(Op op, Expr lhs, Expr rhs);
  [[nodiscard]] static Expr unary(Op op, Expr operand);

  /// Grow-method random tree over `num_vars` variables.
  [[nodiscard]] static Expr random(util::Rng& rng, std::size_t num_vars,
                                   int max_depth);
  /// Subtree crossover: a copy of `a` with a random subtree replaced by a
  /// random subtree of `b`. Result exceeding `max_nodes` falls back to a
  /// clone of `a`.
  [[nodiscard]] static Expr crossover(const Expr& a, const Expr& b,
                                      util::Rng& rng, std::size_t max_nodes);
  /// Point/subtree mutation (constant jitter, operator swap, or subtree
  /// regrowth).
  [[nodiscard]] static Expr mutate(const Expr& e, util::Rng& rng,
                                   std::size_t num_vars, int max_depth,
                                   std::size_t max_nodes);

  // -- Evaluation semantics contract ---------------------------------------
  // Every evaluator of an expression tree (eval() here, the compiled
  // ExprProgram, and the constant folder in simplified()) implements the
  // SAME total function, bit for bit:
  //   * kDiv:  num / den, except |den| < 1e-9 returns num unchanged — there
  //            is no division by (near-)zero, hence no Inf/NaN from /0.
  //   * kLog:  log(|x| + 1), total over the reals.
  //   * kSqrt: sqrt(|x|), total over the reals.
  //   * kVar with an index >= vars.size() reads 0.0.
  //   * Intermediate overflow may still produce Inf (e.g. huge products),
  //     and Inf - Inf may produce NaN; these propagate through the
  //     remaining operations by ordinary IEEE-754 rules, and only the FINAL
  //     result is clamped: a non-finite root value evaluates to 0.0.
  // Operations are never reassociated or contracted, so any two evaluators
  // agree on every input. This is what lets SymReg memoize and batch-compile
  // fitness while keeping tree-walk eval() as the reference oracle.
  [[nodiscard]] double eval(std::span<const double> vars) const;
  /// Read-only view of the tree root (used by the ExprProgram compiler and
  /// structural inspections). Null for an empty expression.
  [[nodiscard]] const ExprNode* root() const noexcept { return root_.get(); }
  [[nodiscard]] std::size_t size() const noexcept;  ///< node count
  [[nodiscard]] int depth() const noexcept;
  [[nodiscard]] bool empty() const noexcept { return root_ == nullptr; }
  [[nodiscard]] Expr clone() const;
  /// Render with the given variable names (falls back to x0,x1,...).
  [[nodiscard]] std::string str(
      std::span<const std::string> names = {}) const;

  /// Round-trippable S-expression form, e.g. "(mul (var 0) (const 3.5))".
  [[nodiscard]] std::string to_sexpr() const;
  /// Parse the S-expression form; throws std::invalid_argument on syntax
  /// errors or trailing input.
  [[nodiscard]] static Expr from_sexpr(const std::string& text);

  /// Algebraic simplification: constant folding and identity elimination
  /// (x+0, x*1, x*0, x-x, x/1, log/sqrt of constants, ...). Semantics are
  /// preserved exactly for every input (the protected-operator behaviour of
  /// eval() is respected — e.g. x/0 folds to x only when the denominator is
  /// a literal constant below the protection threshold). Returns a new
  /// expression; repeated application is idempotent.
  [[nodiscard]] Expr simplified() const;

 private:
  explicit Expr(std::unique_ptr<ExprNode> root) : root_(std::move(root)) {}

  std::unique_ptr<ExprNode> root_;

  friend class SymbolicRegressor;
};

}  // namespace ftbesst::model
