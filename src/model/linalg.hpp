#pragma once
// Dense linear algebra required by the regression substrate: a small
// row-major matrix, Gaussian elimination with partial pivoting, and
// ridge-regularized least squares via the normal equations. Sizes here are
// tiny (feature counts ~ 10), so clarity beats blocking.

#include <cstddef>
#include <span>
#include <vector>

namespace ftbesst::model {

class Matrix {
 public:
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] double& at(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double at(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

 private:
  std::size_t rows_, cols_;
  std::vector<double> data_;
};

/// Solve A x = b by Gaussian elimination with partial pivoting. A must be
/// square with rows()==b.size(). Throws std::runtime_error on (numerical)
/// singularity.
[[nodiscard]] std::vector<double> solve_linear_system(Matrix a,
                                                      std::vector<double> b);

/// Ridge least squares: minimize ||X w - y||^2 + lambda ||w||^2.
/// X is n x p (n >= 1), y has n entries. Returns the p weights.
[[nodiscard]] std::vector<double> ridge_least_squares(
    const Matrix& x, std::span<const double> y, double lambda);

/// Cholesky factorization A = L L^T of a symmetric positive-definite
/// matrix (lower triangle of A is read; the strict upper triangle is
/// ignored). Returns L in the lower triangle (upper triangle zeroed).
/// Throws std::runtime_error if A is not (numerically) positive definite —
/// callers holding near-singular kernel matrices should retry with jitter
/// added to the diagonal.
[[nodiscard]] Matrix cholesky_factor(const Matrix& a);

/// Solve A x = b given the Cholesky factor L of A (two triangular solves).
[[nodiscard]] std::vector<double> cholesky_solve(const Matrix& l,
                                                 std::span<const double> b);

}  // namespace ftbesst::model
