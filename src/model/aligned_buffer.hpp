#pragma once
// 32-byte-aligned, tail-padded double storage for the SIMD batch
// evaluators (model/expr_simd.*).
//
// The vector backends process rows in packs of kSimdWidth doubles with
// aligned loads/stores. Instead of masking every pack against the row
// count, strips are padded: a buffer holding n logical values always owns
// writable storage up to padded_rows(n), and for *input* strips (dataset
// columns, the out-of-range-variable zero source) the pad lanes are
// guaranteed zero, so a full-width op over the pad computes harmless,
// deterministic values that the tail copy simply never reads. The
// protected-operator semantics (expr.hpp) make every opcode total and
// non-trapping over zeros, which is what makes the padding safe.

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <utility>

namespace ftbesst::model {

/// Alignment of every strip base, in bytes (one __m256d).
inline constexpr std::size_t kSimdAlign = 32;
/// Rows per padded pack. A multiple of every backend's lane width (4), and
/// of kSimdAlign/sizeof(double), so each pack-aligned offset into a strip
/// is itself 32-byte aligned.
inline constexpr std::size_t kSimdWidth = 8;

/// Smallest multiple of kSimdWidth >= rows.
[[nodiscard]] constexpr std::size_t padded_rows(std::size_t rows) noexcept {
  return (rows + (kSimdWidth - 1)) & ~(kSimdWidth - 1);
}

[[nodiscard]] inline bool is_simd_aligned(const void* p) noexcept {
  return reinterpret_cast<std::uintptr_t>(p) % kSimdAlign == 0;
}

/// Grow-friendly aligned buffer of doubles.
///
/// Invariant: after any sequence of resize()/push_back()/assign_zero(),
/// the slots [size(), padded_rows(size())) read as 0.0 and the base
/// pointer is kSimdAlign-aligned. (resize() re-zeros the pad region, so
/// the invariant survives shrinking too.)
class AlignedBuffer {
 public:
  AlignedBuffer() = default;
  ~AlignedBuffer() { deallocate(); }

  AlignedBuffer(AlignedBuffer&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        size_(std::exchange(other.size_, 0)),
        capacity_(std::exchange(other.capacity_, 0)) {}
  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this != &other) {
      deallocate();
      data_ = std::exchange(other.data_, nullptr);
      size_ = std::exchange(other.size_, 0);
      capacity_ = std::exchange(other.capacity_, 0);
    }
    return *this;
  }
  AlignedBuffer(const AlignedBuffer& other) { *this = other; }
  AlignedBuffer& operator=(const AlignedBuffer& other) {
    if (this != &other) {
      resize(other.size_);
      if (size_ != 0) std::memcpy(data_, other.data_, size_ * sizeof(double));
    }
    return *this;
  }

  [[nodiscard]] double* data() noexcept { return data_; }
  [[nodiscard]] const double* data() const noexcept { return data_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] double operator[](std::size_t i) const {
    assert(i < size_);
    return data_[i];
  }
  [[nodiscard]] double& operator[](std::size_t i) {
    assert(i < size_);
    return data_[i];
  }

  /// Set the logical size, keeping the first min(old, n) values. Newly
  /// exposed slots and the pad region [n, padded_rows(n)) are zeroed.
  void resize(std::size_t n) {
    reserve(n);
    if (n > size_) {
      std::memset(data_ + size_, 0, (padded_rows(n) - size_) * sizeof(double));
    } else if (n < size_) {
      // Shrink: old values may sit inside the new pad region; restore it.
      std::memset(data_ + n, 0, (padded_rows(n) - n) * sizeof(double));
    }
    size_ = n;
  }

  /// resize(n) with every slot (and the pad) zeroed.
  void assign_zero(std::size_t n) {
    reserve(n);
    std::memset(data_, 0, padded_rows(n) * sizeof(double));
    size_ = n;
  }

  void push_back(double v) {
    if (size_ == capacity_) reserve(size_ == 0 ? kSimdWidth : size_ * 2);
    // The slot being claimed was a zero pad slot; pad slots beyond it are
    // untouched, so the pad invariant holds without re-zeroing.
    data_[size_++] = v;
  }

  void clear() noexcept {
    if (data_ != nullptr)
      std::memset(data_, 0, padded_rows(size_) * sizeof(double));
    size_ = 0;
  }

 private:
  /// Ensure capacity for n values plus their pad; new memory fully zeroed.
  void reserve(std::size_t n) {
    const std::size_t need = padded_rows(n);
    if (need <= capacity_) return;
    auto* fresh = static_cast<double*>(::operator new(
        need * sizeof(double), std::align_val_t{kSimdAlign}));
    if (size_ != 0) std::memcpy(fresh, data_, size_ * sizeof(double));
    std::memset(fresh + size_, 0, (need - size_) * sizeof(double));
    deallocate();
    data_ = fresh;
    capacity_ = need;
  }

  void deallocate() noexcept {
    if (data_ != nullptr)
      ::operator delete(data_, std::align_val_t{kSimdAlign});
    data_ = nullptr;
    capacity_ = 0;
  }

  double* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t capacity_ = 0;  // always a multiple of kSimdWidth
};

}  // namespace ftbesst::model
