#include "model/fitting.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "model/powerlaw.hpp"
#include "util/stats.hpp"

namespace ftbesst::model {

std::string to_string(ModelMethod m) {
  switch (m) {
    case ModelMethod::kSymbolicRegression: return "symbolic-regression";
    case ModelMethod::kFeatureRegression: return "feature-regression";
    case ModelMethod::kPowerLaw: return "power-law";
    case ModelMethod::kTableNearest: return "table-nearest";
    case ModelMethod::kTableMultilinear: return "table-multilinear";
    case ModelMethod::kTableLogLog: return "table-loglog";
    case ModelMethod::kAuto: return "auto";
  }
  return "?";
}

double validate_mape(const PerfModel& model, const Dataset& data) {
  // predict_batch routes ExprModel through the compiled column-wise path
  // (and from there to the active SIMD backend, bit-identical by contract);
  // FeatureModel batches its per-row feature evaluation; other models fall
  // back to the per-row loop.
  std::vector<double> predicted;
  model.predict_batch(data, predicted);
  return util::mape_percent(data.responses(), predicted);
}

double residual_log_sigma(const PerfModel& model, const Dataset& data) {
  std::vector<double> predicted;
  model.predict_batch(data, predicted);
  std::vector<double> logs;
  for (std::size_t i = 0; i < data.num_rows(); ++i) {
    const double pred = predicted[i];
    if (pred <= 0.0) continue;
    for (double s : data.row(i).samples)
      if (s > 0.0) logs.push_back(std::log(s / pred));
  }
  return util::sample_stddev(logs);
}

namespace {

struct Candidate {
  PerfModelPtr model;
  ModelMethod method = ModelMethod::kAuto;
  double train_mape = 0.0;
  double test_mape = 0.0;
};

Candidate fit_symreg(const Dataset& train, const Dataset& test,
                     const FitOptions& options) {
  SymRegConfig cfg = options.symreg;
  cfg.seed = cfg.seed ^ options.seed;
  const SymbolicRegressor regressor(cfg);
  const SymRegResult res = regressor.fit(train, test);
  return Candidate{res.model, ModelMethod::kSymbolicRegression,
                   res.train_mape, res.test_mape};
}

Candidate fit_features(const Dataset& train, const Dataset& test,
                       const FitOptions& options) {
  auto lib = FeatureLibrary::polynomial(train.num_params());
  auto model = std::make_shared<FeatureModel>(
      FeatureModel::fit(train, std::move(lib), options.ridge_lambda));
  Candidate c;
  c.train_mape = validate_mape(*model, train);
  c.test_mape = test.empty() ? c.train_mape : validate_mape(*model, test);
  c.model = std::move(model);
  c.method = ModelMethod::kFeatureRegression;
  return c;
}

Candidate fit_powerlaw(const Dataset& train, const Dataset& test) {
  auto model = std::make_shared<PowerLawModel>(PowerLawModel::fit(train));
  Candidate c;
  c.train_mape = validate_mape(*model, train);
  c.test_mape = test.empty() ? c.train_mape : validate_mape(*model, test);
  c.model = std::move(model);
  c.method = ModelMethod::kPowerLaw;
  return c;
}

Candidate fit_table(const Dataset& data, Interpolation interp,
                    const Dataset& test) {
  auto model = std::make_shared<TableModel>(data, interp);
  Candidate c;
  c.train_mape = validate_mape(*model, data);
  c.test_mape = test.empty() ? c.train_mape : validate_mape(*model, test);
  c.model = std::move(model);
  c.method = interp == Interpolation::kNearest ? ModelMethod::kTableNearest
             : interp == Interpolation::kLogLog ? ModelMethod::kTableLogLog
                                                : ModelMethod::kTableMultilinear;
  return c;
}

}  // namespace

FittedKernel fit_kernel_model(const Dataset& data, const FitOptions& options) {
  if (data.empty()) throw std::invalid_argument("empty dataset");
  util::Rng rng(options.seed);
  const auto [train, test] = data.num_rows() >= 4
                                 ? data.split(options.train_fraction, rng)
                                 : std::pair<Dataset, Dataset>{data, data};

  Candidate chosen;
  switch (options.method) {
    case ModelMethod::kSymbolicRegression:
      chosen = fit_symreg(train, test, options);
      break;
    case ModelMethod::kFeatureRegression:
      chosen = fit_features(train, test, options);
      break;
    case ModelMethod::kPowerLaw:
      chosen = fit_powerlaw(train, test);
      break;
    case ModelMethod::kTableNearest:
      // Tables are built from the full dataset; they are lookup structures,
      // not generalizing fits, so no split is withheld.
      chosen = fit_table(data, Interpolation::kNearest, Dataset{data.param_names()});
      break;
    case ModelMethod::kTableMultilinear:
      chosen = fit_table(data, Interpolation::kMultilinear,
                         Dataset{data.param_names()});
      break;
    case ModelMethod::kTableLogLog:
      chosen = fit_table(data, Interpolation::kLogLog,
                         Dataset{data.param_names()});
      break;
    case ModelMethod::kAuto: {
      // Same blended criterion used for the GP champion: a handful of test
      // rows alone is too noisy a selector.
      const auto score = [](const Candidate& c) {
        return 0.5 * c.train_mape + 0.5 * c.test_mape;
      };
      std::vector<Candidate> candidates;
      candidates.push_back(fit_symreg(train, test, options));
      candidates.push_back(fit_features(train, test, options));
      try {
        candidates.push_back(fit_powerlaw(train, test));
      } catch (const std::invalid_argument&) {
        // Non-positive data or unidentifiable exponents: power law out.
      }
      std::size_t best = 0;
      for (std::size_t i = 1; i < candidates.size(); ++i)
        if (score(candidates[i]) < score(candidates[best])) best = i;
      chosen = std::move(candidates[best]);
      break;
    }
  }

  FittedKernel out;
  out.model = chosen.model;
  out.report.chosen = chosen.method;
  out.report.train_mape = chosen.train_mape;
  out.report.test_mape = chosen.test_mape;
  out.report.full_mape = validate_mape(*chosen.model, data);
  out.report.residual_sigma = residual_log_sigma(*chosen.model, data);
  out.report.formula = chosen.model->describe();
  out.noisy_model =
      std::make_shared<NoisyModel>(out.model, out.report.residual_sigma);
  return out;
}

}  // namespace ftbesst::model
