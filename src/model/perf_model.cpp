#include "model/perf_model.hpp"

#include <stdexcept>

namespace ftbesst::model {

// Default batch path: one virtual predict() per row. Models with a
// column-wise representation override this — ExprModel evaluates through
// the active ExprProgram SIMD backend (model/expr_simd.*).
void PerfModel::predict_batch(const Dataset& data,
                              std::vector<double>& out) const {
  out.resize(data.num_rows());
  for (std::size_t i = 0; i < data.num_rows(); ++i)
    out[i] = predict(data.row(i).params);
}

NoisyModel::NoisyModel(PerfModelPtr base, double log_sigma)
    : base_(std::move(base)), sigma_(log_sigma) {
  if (!base_) throw std::invalid_argument("NoisyModel needs a base model");
  if (sigma_ < 0.0) throw std::invalid_argument("sigma must be >= 0");
}

double NoisyModel::predict(std::span<const double> params) const {
  return base_->predict(params);
}

double NoisyModel::sample(std::span<const double> params,
                          util::Rng& rng) const {
  return rng.lognormal_median(base_->predict(params), sigma_);
}

std::string NoisyModel::describe() const {
  return base_->describe() + " * lognormal(sigma=" + std::to_string(sigma_) +
         ")";
}

}  // namespace ftbesst::model
