#include "model/expr_program.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "model/expr_ops.hpp"
#include "model/expr_simd.hpp"

namespace ftbesst::model {

namespace {

// Protected scalar kernels — shared with every other evaluator through
// model/expr_ops.hpp so the folder, the strip loops, the single-point
// evaluator, and the SIMD backends' scalar lanes are one definition.
using detail::op_add;
using detail::op_div;
using detail::op_log;
using detail::op_mul;
using detail::op_sqrt;
using detail::op_sub;

inline std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

/// Compiler state: hash-consing of subtrees into registers.
///
/// compile_node returns an abstract Value — a compile-time constant, a
/// dataset column, or a register. Leaves stay abstract: an enclosing
/// operation embeds them as direct operands (Src::kCol / Src::kLit), so
/// constants and variables never spend an instruction or a register-wide
/// copy; only a bare-leaf *root* materializes (kConst/kVar opcode).
///
/// CSE never compares trees: because register numbers are canonical (two
/// structurally identical subtrees reach identical operand descriptors by
/// induction), a candidate instruction duplicates an earlier computation
/// exactly when an emitted instruction has the same (op, operand sources,
/// operand indices, literal bits). Dedup is a linear scan over the emitted
/// code — GP trees are tiny (max_nodes ~48), so a scan over a contiguous
/// POD array beats any node-allocating map by a wide margin, and
/// compilation happens once per individual per generation, squarely on the
/// calibration hot path. (Worst case is quadratic in distinct subterms; at
/// the 65535-term limit that would matter, but such expressions are
/// rejected anyway.) Literals are matched by bit pattern so +0.0/-0.0 and
/// NaN payloads (possible results of folding) stay distinct and
/// reproducible.
class Compiler {
 public:
  struct Value {
    enum Kind : std::uint8_t { kConstV, kColV, kRegV };
    Kind kind = kConstV;
    double constant = 0.0;
    std::uint16_t idx = 0;
  };

  Value compile_node(const ExprNode* n, std::vector<ProgInstr>& code) {
    ++visited_;
    switch (n->op) {
      case Op::kConst:
        return Value{Value::kConstV, n->value, 0};
      case Op::kVar:
        if (n->var > std::numeric_limits<std::uint16_t>::max())
          throw std::length_error("variable index exceeds program limits");
        return Value{Value::kColV, 0.0, static_cast<std::uint16_t>(n->var)};
      case Op::kLog:
      case Op::kSqrt: {
        const Value a = compile_node(n->lhs.get(), code);
        if (a.kind == Value::kConstV) {
          const double folded =
              n->op == Op::kLog ? op_log(a.constant) : op_sqrt(a.constant);
          return Value{Value::kConstV, folded, 0};
        }
        ProgInstr instr;
        instr.op = n->op;
        set_operand(instr.a_src, instr.a, instr.value, a);
        return Value{Value::kRegV, 0.0, emit(instr, code)};
      }
      default: {  // binary arithmetic
        const Value a = compile_node(n->lhs.get(), code);
        const Value b = compile_node(n->rhs.get(), code);
        if (a.kind == Value::kConstV && b.kind == Value::kConstV) {
          double folded = 0.0;
          switch (n->op) {
            case Op::kAdd: folded = op_add(a.constant, b.constant); break;
            case Op::kSub: folded = op_sub(a.constant, b.constant); break;
            case Op::kMul: folded = op_mul(a.constant, b.constant); break;
            case Op::kDiv: folded = op_div(a.constant, b.constant); break;
            default: break;
          }
          return Value{Value::kConstV, folded, 0};
        }
        ProgInstr instr;
        instr.op = n->op;
        set_operand(instr.a_src, instr.a, instr.value, a);
        set_operand(instr.b_src, instr.b, instr.value, b);
        return Value{Value::kRegV, 0.0, emit(instr, code)};
      }
    }
  }

  /// Register holding `v`, lowering a bare-leaf root to a kConst/kVar copy.
  std::uint16_t materialize(const Value& v, std::vector<ProgInstr>& code) {
    if (v.kind == Value::kRegV) return v.idx;
    ProgInstr instr;
    if (v.kind == Value::kConstV) {
      instr.op = Op::kConst;
      instr.value = v.constant;
    } else {
      instr.op = Op::kVar;
      instr.a = v.idx;
    }
    return emit(instr, code);
  }

  [[nodiscard]] std::uint16_t next_reg() const noexcept {
    return static_cast<std::uint16_t>(next_);
  }

  [[nodiscard]] std::size_t visited() const noexcept { return visited_; }

 private:
  static void set_operand(Src& src, std::uint16_t& idx, double& value,
                          const Value& v) {
    switch (v.kind) {
      case Value::kConstV:
        src = Src::kLit;
        value = v.constant;  // at most one literal operand: both would fold
        break;
      case Value::kColV:
        src = Src::kCol;
        idx = v.idx;
        break;
      case Value::kRegV:
        src = Src::kReg;
        idx = v.idx;
        break;
    }
  }

  std::uint32_t emit_or_find(const ProgInstr& instr,
                             const std::vector<ProgInstr>& code) {
    for (const ProgInstr& e : code) {
      if (e.op == instr.op && e.a_src == instr.a_src &&
          e.b_src == instr.b_src && e.a == instr.a && e.b == instr.b &&
          bits(e.value) == bits(instr.value))
        return e.dst;
    }
    return kNotFound;
  }

  std::uint16_t emit(ProgInstr instr, std::vector<ProgInstr>& code) {
    if (const std::uint32_t existing = emit_or_find(instr, code);
        existing != kNotFound)
      return static_cast<std::uint16_t>(existing);
    if (next_ >= std::numeric_limits<std::uint16_t>::max())
      throw std::length_error("expression exceeds 65535 distinct subterms");
    instr.dst = static_cast<std::uint16_t>(next_++);
    code.push_back(instr);
    return instr.dst;
  }

  static constexpr std::uint32_t kNotFound = 0xffffffffu;
  std::uint32_t next_ = 0;
  std::size_t visited_ = 0;
};

inline bool prog_is_binary(Op op) {
  return op == Op::kAdd || op == Op::kSub || op == Op::kMul || op == Op::kDiv;
}
inline bool prog_is_arith(Op op) {
  return prog_is_binary(op) || op == Op::kLog || op == Op::kSqrt;
}

/// Fuse single-use unary instructions into their producer's `post` slot.
/// Emission is in post-order, so a fusable producer is the instruction
/// directly before the unary; registers whose instruction was fused away
/// simply go unwritten (and, being single-use, unread). A pure function of
/// the emitted code — no data- or thread-dependent choices — so programs
/// stay deterministic.
void fuse_unaries(std::vector<ProgInstr>& code, std::uint16_t root,
                  std::uint16_t num_regs) {
  if (code.size() < 2) return;
  // This runs once per individual per generation; GP programs fit the
  // stack buffers (max_nodes ~48), so the common case does no allocation.
  constexpr std::size_t kStackRegs = 128;
  std::uint8_t uses_stack[kStackRegs];
  std::int32_t prod_stack[kStackRegs];
  std::vector<std::uint8_t> uses_heap;
  std::vector<std::int32_t> prod_heap;
  std::uint8_t* uses = uses_stack;
  std::int32_t* producer = prod_stack;
  if (num_regs > kStackRegs) {
    uses_heap.resize(num_regs);
    prod_heap.resize(num_regs);
    uses = uses_heap.data();
    producer = prod_heap.data();
  }
  std::fill_n(uses, num_regs, std::uint8_t{0});
  std::fill_n(producer, num_regs, -1);
  for (const ProgInstr& in : code) {
    if (prog_is_arith(in.op)) {
      if (in.a_src == Src::kReg && uses[in.a] < 2) ++uses[in.a];
      if (prog_is_binary(in.op) && in.b_src == Src::kReg && uses[in.b] < 2)
        ++uses[in.b];
    }
  }
  if (uses[root] < 2) ++uses[root];  // keep the root's producer intact

  // Fuse and compact in one scan. `producer[r]` is the *compacted* index
  // of the instruction that currently writes register r — emission is in
  // post-order, so an operand's producer has always been placed before its
  // consumer is visited.
  std::size_t w = 0;
  for (std::size_t k = 0; k < code.size(); ++k) {
    const ProgInstr in = code[k];
    if ((in.op == Op::kLog || in.op == Op::kSqrt) && in.post == Post::kNone &&
        in.a_src == Src::kReg && uses[in.a] == 1) {
      if (const std::int32_t j = producer[in.a]; j >= 0) {
        ProgInstr& pj = code[static_cast<std::size_t>(j)];
        if (prog_is_arith(pj.op) && pj.post == Post::kNone) {
          pj.post = in.op == Op::kLog ? Post::kLog : Post::kSqrt;
          pj.dst = in.dst;
          producer[in.dst] = j;
          continue;  // unary absorbed; no instruction placed
        }
      }
    }
    producer[in.dst] = static_cast<std::int32_t>(w);
    code[w++] = in;
  }
  code.resize(w);
}

/// Resolved batch operand: a contiguous array or a literal splat.
struct BatchOperand {
  const double* p = nullptr;
  double lit = 0.0;
  bool is_lit = false;
};

/// Run `dst[i] = op(a[i], b[i])` with either operand possibly a literal.
/// The three loops keep the operand ORDER of the source tree: + and * are
/// commutative for values but not for NaN payloads (hardware propagates
/// the first operand's payload), and bit-identity with Expr::eval is the
/// contract here.
template <typename F>
inline void binary_loop(double* dst, std::size_t n, const BatchOperand& a,
                        const BatchOperand& b, F op) {
  if (!a.is_lit && !b.is_lit) {
    const double* const x = a.p;
    const double* const y = b.p;
    for (std::size_t i = 0; i < n; ++i) dst[i] = op(x[i], y[i]);
  } else if (b.is_lit) {
    const double* const x = a.p;
    const double c = b.lit;
    for (std::size_t i = 0; i < n; ++i) dst[i] = op(x[i], c);
  } else {
    const double c = a.lit;
    const double* const y = b.p;
    for (std::size_t i = 0; i < n; ++i) dst[i] = op(c, y[i]);
  }
}

/// binary_loop with the instruction's fused `post` unary composed on top.
/// Composition nests the identical scalar calls in the identical order the
/// two-pass form would have used, so the bits match.
template <typename F>
inline void binary_dispatch(double* dst, std::size_t n, const BatchOperand& a,
                            const BatchOperand& b, Post post, F op) {
  switch (post) {
    case Post::kNone:
      binary_loop(dst, n, a, b, op);
      break;
    case Post::kLog:
      binary_loop(dst, n, a, b,
                  [op](double x, double y) { return op_log(op(x, y)); });
      break;
    case Post::kSqrt:
      binary_loop(dst, n, a, b,
                  [op](double x, double y) { return op_sqrt(op(x, y)); });
      break;
  }
}

template <typename F>
inline void unary_dispatch(double* dst, std::size_t n, const double* x,
                           Post post, F op) {
  switch (post) {
    case Post::kNone:
      for (std::size_t i = 0; i < n; ++i) dst[i] = op(x[i]);
      break;
    case Post::kLog:
      for (std::size_t i = 0; i < n; ++i) dst[i] = op_log(op(x[i]));
      break;
    case Post::kSqrt:
      for (std::size_t i = 0; i < n; ++i) dst[i] = op_sqrt(op(x[i]));
      break;
  }
}

}  // namespace

ExprProgram ExprProgram::compile(const Expr& expr) {
  ExprProgram prog;
  compile_into(expr, prog);
  return prog;
}

void ExprProgram::compile_into(const Expr& expr, ExprProgram& out) {
  out.code_.clear();
  out.regs_ = 0;
  out.root_ = 0;
  out.tree_nodes_ = 0;
  if (expr.empty()) return;
  Compiler compiler;
  const Compiler::Value root = compiler.compile_node(expr.root(), out.code_);
  out.root_ = compiler.materialize(root, out.code_);
  out.regs_ = compiler.next_reg();
  out.tree_nodes_ = compiler.visited();
  fuse_unaries(out.code_, out.root_, out.regs_);
}

void ExprProgram::eval_dataset(const Dataset& data, std::vector<double>& out,
                               EvalScratch& scratch) const {
  const std::size_t n = data.num_rows();
  out.resize(n);
  if (code_.empty()) {
    std::fill(out.begin(), out.end(), 0.0);
    return;
  }
  // Runtime backend dispatch (see expr_simd.hpp). The strip interpreter
  // below is EvalBackend::kScalar — kept verbatim as the reference batch
  // path every vector backend must match bit for bit.
  if (const EvalBackend backend = active_backend();
      backend != EvalBackend::kScalar) {
    simd::eval_batch(code_, root_, regs_, data, out, scratch, backend);
    return;
  }
  simd::count_eval(EvalBackend::kScalar, n);
  scratch.regs.resize(static_cast<std::size_t>(regs_) * n);
  double* const base = scratch.regs.data();
  const std::size_t num_params = data.num_params();

  const auto resolve = [&](Src src, std::uint16_t idx,
                           double value) -> BatchOperand {
    switch (src) {
      case Src::kReg:
        return {base + static_cast<std::size_t>(idx) * n, 0.0, false};
      case Src::kCol:
        if (idx < num_params) return {data.column(idx).data(), 0.0, false};
        if (scratch.zeros.size() < n) scratch.zeros.assign_zero(n);
        assert(is_simd_aligned(scratch.zeros.data()));
        return {scratch.zeros.data(), 0.0, false};
      case Src::kLit:
      default:
        return {nullptr, value, true};
    }
  };

  // When the last instruction computes the root (the common case — the
  // root only lands elsewhere if unary fusion retargeted it), write it
  // straight into `out`; the final non-finite-to-zero clamp then runs as a
  // cheap in-place select over `out` instead of a copy out of a register.
  const bool fuse_root = code_.back().dst == root_;

  for (std::size_t k = 0; k < code_.size(); ++k) {
    const ProgInstr& instr = code_[k];
    const bool is_last = fuse_root && k + 1 == code_.size();
    double* const dst =
        is_last ? out.data()
                : base + static_cast<std::size_t>(instr.dst) * n;
    switch (instr.op) {
      case Op::kConst:  // root-leaf only
        std::fill_n(dst, n, instr.value);
        break;
      case Op::kVar: {  // root-leaf only
        const BatchOperand x = resolve(Src::kCol, instr.a, 0.0);
        std::memcpy(dst, x.p, n * sizeof(double));
        break;
      }
      case Op::kAdd:
        binary_dispatch(dst, n, resolve(instr.a_src, instr.a, instr.value),
                        resolve(instr.b_src, instr.b, instr.value), instr.post,
                        op_add);
        break;
      case Op::kSub:
        binary_dispatch(dst, n, resolve(instr.a_src, instr.a, instr.value),
                        resolve(instr.b_src, instr.b, instr.value), instr.post,
                        op_sub);
        break;
      case Op::kMul:
        binary_dispatch(dst, n, resolve(instr.a_src, instr.a, instr.value),
                        resolve(instr.b_src, instr.b, instr.value), instr.post,
                        op_mul);
        break;
      case Op::kDiv:
        binary_dispatch(dst, n, resolve(instr.a_src, instr.a, instr.value),
                        resolve(instr.b_src, instr.b, instr.value), instr.post,
                        op_div);
        break;
      case Op::kLog:
        unary_dispatch(dst, n, resolve(instr.a_src, instr.a, instr.value).p,
                       instr.post, op_log);
        break;
      case Op::kSqrt:
        unary_dispatch(dst, n, resolve(instr.a_src, instr.a, instr.value).p,
                       instr.post, op_sqrt);
        break;
    }
  }

  if (fuse_root) {
    for (std::size_t i = 0; i < n; ++i)
      out[i] = std::isfinite(out[i]) ? out[i] : 0.0;
  } else {
    const double* const root = base + static_cast<std::size_t>(root_) * n;
    for (std::size_t i = 0; i < n; ++i)
      out[i] = std::isfinite(root[i]) ? root[i] : 0.0;
  }
}

double ExprProgram::eval(std::span<const double> vars) const {
  if (code_.empty()) return 0.0;
  std::vector<double> regs(regs_, 0.0);
  const auto load = [&](Src src, std::uint16_t idx, double value) -> double {
    switch (src) {
      case Src::kReg: return regs[idx];
      case Src::kCol: return idx < vars.size() ? vars[idx] : 0.0;
      case Src::kLit:
      default: return value;
    }
  };
  for (const ProgInstr& instr : code_) {
    double v = 0.0;
    switch (instr.op) {
      case Op::kConst:  // root-leaf only: `a` is not an operand descriptor
        v = instr.value;
        break;
      case Op::kVar:  // root-leaf only: `a` is the variable index
        v = instr.a < vars.size() ? vars[instr.a] : 0.0;
        break;
      case Op::kLog:
        v = op_log(load(instr.a_src, instr.a, instr.value));
        break;
      case Op::kSqrt:
        v = op_sqrt(load(instr.a_src, instr.a, instr.value));
        break;
      default: {
        const double a = load(instr.a_src, instr.a, instr.value);
        const double b = load(instr.b_src, instr.b, instr.value);
        switch (instr.op) {
          case Op::kAdd: v = op_add(a, b); break;
          case Op::kSub: v = op_sub(a, b); break;
          case Op::kMul: v = op_mul(a, b); break;
          case Op::kDiv: v = op_div(a, b); break;
          default: break;
        }
        break;
      }
    }
    if (instr.post == Post::kLog)
      v = op_log(v);
    else if (instr.post == Post::kSqrt)
      v = op_sqrt(v);
    regs[instr.dst] = v;
  }
  const double v = regs[root_];
  return std::isfinite(v) ? v : 0.0;
}

}  // namespace ftbesst::model
