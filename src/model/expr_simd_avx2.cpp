// The ONLY translation unit built with -mavx2 -mfma (CMake option
// FTBESST_SIMD). Nothing here may leak into a header: on a non-AVX2 host
// these functions exist in the binary but are never dispatched to
// (avx2_supported() gates them), and the rest of the build stays
// baseline-ISA.

#include <immintrin.h>

#include <cstddef>

#include "model/expr_ops.hpp"
#include "model/expr_simd_block.hpp"

namespace ftbesst::model::simd_detail {
namespace {

inline __m256d abs_pd(__m256d x) {
  // Clear the sign bit; preserves NaN payloads, unlike a compare/select.
  return _mm256_andnot_pd(_mm256_set1_pd(-0.0), x);
}

/// Bit-identical __m256d policy (EvalBackend::kAvx2).
struct Avx2Policy {
  static constexpr std::size_t kWidth = 4;
  using Pack = __m256d;
  static Pack load(const double* p) { return _mm256_load_pd(p); }
  static void store(double* p, Pack x) { _mm256_store_pd(p, x); }
  static Pack splat(double c) { return _mm256_set1_pd(c); }
  static Pack add(Pack a, Pack b) { return _mm256_add_pd(a, b); }
  static Pack sub(Pack a, Pack b) { return _mm256_sub_pd(a, b); }
  static Pack mul(Pack a, Pack b) { return _mm256_mul_pd(a, b); }
  static Pack div_protected(Pack num, Pack den) {
    // abs(den) < 1e-9 ? num : num / den, as a masked blend. The ordered
    // quiet compare is false for NaN denominators, so NaN propagates
    // through the divide exactly like the scalar ternary. The divide runs
    // on every lane and protected lanes discard it via the blend — the FP
    // environment is non-trapping, so that speculation is value-safe.
    const Pack guard =
        _mm256_cmp_pd(abs_pd(den), _mm256_set1_pd(1e-9), _CMP_LT_OQ);
    return _mm256_blendv_pd(_mm256_div_pd(num, den), num, guard);
  }
  static Pack log_protected(Pack x) {
    // Bit-identity requires scalar libm per lane: no vector log kernel is
    // correctly rounded. The loads, dispatch, and the rest of the program
    // still amortize; only this op pays scalar cost.
    alignas(kSimdAlign) double t[kWidth];
    _mm256_store_pd(t, x);
    for (std::size_t i = 0; i < kWidth; ++i) t[i] = detail::op_log(t[i]);
    return _mm256_load_pd(t);
  }
  static Pack sqrt_protected(Pack x) {
    // vsqrtpd is correctly rounded (IEEE 754 requires it), so sqrt|x| is
    // bit-identical to std::sqrt(std::abs(x)).
    return _mm256_sqrt_pd(abs_pd(x));
  }
};

/// Opt-in fast-math policy (EvalBackend::kAvx2Fast): identical to
/// Avx2Policy except log1p|x| uses the glibc libmvec vector log. glibc
/// documents its vector math routines as ≤ 4 ulp from correctly rounded
/// (observed: last-ulp differences vs scalar std::log); abs and +1.0 are
/// exact, so that bound is the whole deviation from the scalar contract.
/// Never auto-selected — callers must ask for it by name.
#if defined(__GLIBC__)
extern "C" __m256d _ZGVdN4v_log(__m256d);

struct Avx2FastPolicy : Avx2Policy {
  static Pack log_protected(Pack x) {
    return _ZGVdN4v_log(_mm256_add_pd(abs_pd(x), _mm256_set1_pd(1.0)));
  }
};
#else
// No libmvec: "fast" degenerates to the bit-identical policy.
using Avx2FastPolicy = Avx2Policy;
#endif

}  // namespace

void eval_avx2(const BatchArgs& args) { eval_blocked<Avx2Policy>(args); }

void eval_avx2_fast(const BatchArgs& args) {
  eval_blocked<Avx2FastPolicy>(args);
}

}  // namespace ftbesst::model::simd_detail
