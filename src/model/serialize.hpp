#pragma once
// Persistence for calibrated models and calibration datasets.
//
// The Model Development phase is expensive relative to simulation, and its
// products — regressed closed forms, fitted weights, noise sigmas — are the
// artifact a DSE campaign iterates on. This module saves and restores them
// in a line-oriented text format, so a calibration can be performed once
// and the resulting ArchBEO bindings reloaded across sessions/tools.
//
// Supported model types: ConstantModel, ExprModel (symbolic regression),
// FeatureModel built from FeatureLibrary::polynomial, and NoisyModel
// wrapping any of the above. Lookup tables serialize as their dataset
// (save_dataset) and are rebuilt on load.

#include <iosfwd>
#include <string>

#include "model/dataset.hpp"
#include "model/perf_model.hpp"

namespace ftbesst::model {

/// Serialize a model. Throws std::invalid_argument for unsupported types
/// (hand-built feature libraries, lookup tables).
void save_model(std::ostream& os, const PerfModel& model);
[[nodiscard]] std::string model_to_string(const PerfModel& model);

/// Deserialize; throws std::invalid_argument on malformed input.
[[nodiscard]] PerfModelPtr load_model(std::istream& is);
[[nodiscard]] PerfModelPtr model_from_string(const std::string& text);

/// Calibration datasets as CSV: header `param1,...,paramN,sample`, one row
/// per (parameter point, sample) pair.
void save_dataset(std::ostream& os, const Dataset& data);
[[nodiscard]] Dataset load_dataset(std::istream& is);

}  // namespace ftbesst::model
