#include "model/feature_model.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace ftbesst::model {

void FeatureLibrary::add(std::string name,
                         std::function<double(std::span<const double>)> fn) {
  features_.push_back(Feature{std::move(name), std::move(fn)});
}

FeatureLibrary FeatureLibrary::polynomial(std::size_t num_params) {
  FeatureLibrary lib;
  lib.tag_ = "polynomial " + std::to_string(num_params);
  lib.add("1", [](std::span<const double>) { return 1.0; });
  for (std::size_t i = 0; i < num_params; ++i) {
    const std::string xi = "x" + std::to_string(i);
    lib.add(xi, [i](std::span<const double> p) { return p[i]; });
    lib.add(xi + "^2",
            [i](std::span<const double> p) { return p[i] * p[i]; });
    lib.add(xi + "^3",
            [i](std::span<const double> p) { return p[i] * p[i] * p[i]; });
    lib.add("log(" + xi + ")", [i](std::span<const double> p) {
      return std::log(std::abs(p[i]) + 1.0);
    });
    lib.add(xi + "*log(" + xi + ")", [i](std::span<const double> p) {
      return p[i] * std::log(std::abs(p[i]) + 1.0);
    });
    lib.add("sqrt(" + xi + ")", [i](std::span<const double> p) {
      return std::sqrt(std::abs(p[i]));
    });
    lib.add(xi + "^1.5", [i](std::span<const double> p) {
      return p[i] * std::sqrt(std::abs(p[i]));
    });
  }
  for (std::size_t i = 0; i < num_params; ++i)
    for (std::size_t j = i + 1; j < num_params; ++j) {
      const std::string xi = "x" + std::to_string(i);
      const std::string xj = "x" + std::to_string(j);
      lib.add(xi + "*" + xj,
              [i, j](std::span<const double> p) { return p[i] * p[j]; });
      lib.add(xi + "*log(" + xj + ")", [i, j](std::span<const double> p) {
        return p[i] * std::log(std::abs(p[j]) + 1.0);
      });
      lib.add(xj + "*log(" + xi + ")", [i, j](std::span<const double> p) {
        return p[j] * std::log(std::abs(p[i]) + 1.0);
      });
      // Mixed power interactions — the shapes of volume-scaled contention
      // terms (data^k * parallelism) common in checkpoint/comm kernels.
      lib.add(xi + "^2*" + xj, [i, j](std::span<const double> p) {
        return p[i] * p[i] * p[j];
      });
      lib.add(xj + "^2*" + xi, [i, j](std::span<const double> p) {
        return p[j] * p[j] * p[i];
      });
      lib.add(xi + "^3*" + xj, [i, j](std::span<const double> p) {
        return p[i] * p[i] * p[i] * p[j];
      });
      lib.add(xj + "^3*" + xi, [i, j](std::span<const double> p) {
        return p[j] * p[j] * p[j] * p[i];
      });
    }
  return lib;
}

std::vector<double> FeatureLibrary::evaluate(
    std::span<const double> params) const {
  std::vector<double> phi;
  evaluate_into(params, phi);
  return phi;
}

void FeatureLibrary::evaluate_into(std::span<const double> params,
                                   std::vector<double>& phi) const {
  phi.resize(features_.size());
  for (std::size_t j = 0; j < features_.size(); ++j)
    phi[j] = features_[j].fn(params);
}

FeatureModel::FeatureModel(FeatureLibrary library, std::vector<double> weights)
    : library_(std::move(library)), weights_(std::move(weights)) {
  if (library_.size() != weights_.size())
    throw std::invalid_argument("feature/weight count mismatch");
}

FeatureModel FeatureModel::fit(const Dataset& data, FeatureLibrary library,
                               double ridge_lambda, bool relative_error) {
  const std::size_t n = data.num_rows();
  const std::size_t p = library.size();
  if (n == 0) throw std::invalid_argument("cannot fit on empty dataset");

  Matrix x(n, p);
  std::vector<double> y(n, 0.0);
  std::vector<double> phi;
  for (std::size_t i = 0; i < n; ++i) {
    const Row& row = data.row(i);
    const double response = row.mean_response();
    const double w =
        relative_error ? 1.0 / std::max(std::abs(response), 1e-12) : 1.0;
    library.evaluate_into(row.params, phi);
    for (std::size_t j = 0; j < p; ++j) x.at(i, j) = phi[j] * w;
    y[i] = response * w;
  }
  // Columns span wildly different magnitudes (1 vs x^3*y); scale each to
  // unit RMS so the ridge penalty is meaningful, then map weights back.
  std::vector<double> scale(p, 1.0);
  for (std::size_t j = 0; j < p; ++j) {
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) acc += x.at(i, j) * x.at(i, j);
    const double rms = std::sqrt(acc / static_cast<double>(n));
    if (rms > 1e-300) scale[j] = rms;
    for (std::size_t i = 0; i < n; ++i) x.at(i, j) /= scale[j];
  }
  auto weights = ridge_least_squares(x, y, ridge_lambda);
  for (std::size_t j = 0; j < p; ++j) weights[j] /= scale[j];
  return FeatureModel(std::move(library), std::move(weights));
}

double FeatureModel::predict(std::span<const double> params) const {
  const auto phi = library_.evaluate(params);
  double acc = 0.0;
  for (std::size_t j = 0; j < weights_.size(); ++j)
    acc += weights_[j] * phi[j];
  return acc < 0.0 ? 0.0 : acc;
}

// Row-wise by design: the feature library is a set of opaque per-row
// closures, not an ExprProgram, so there is no instruction stream for the
// SIMD backends to interpret. The win here is reusing `phi` across rows.
void FeatureModel::predict_batch(const Dataset& data,
                                 std::vector<double>& out) const {
  out.resize(data.num_rows());
  std::vector<double> phi;
  for (std::size_t i = 0; i < data.num_rows(); ++i) {
    library_.evaluate_into(data.row(i).params, phi);
    double acc = 0.0;
    for (std::size_t j = 0; j < weights_.size(); ++j)
      acc += weights_[j] * phi[j];
    out[i] = acc < 0.0 ? 0.0 : acc;
  }
}

std::string FeatureModel::describe() const {
  std::ostringstream os;
  os << "features[";
  bool first = true;
  for (std::size_t j = 0; j < weights_.size(); ++j) {
    if (std::abs(weights_[j]) < 1e-15) continue;
    if (!first) os << " + ";
    os << weights_[j] << "*" << library_.at(j).name;
    first = false;
  }
  os << "]";
  return os.str();
}

}  // namespace ftbesst::model
