#pragma once
// The protected scalar kernels of the Expr semantics contract (expr.hpp),
// shared by every evaluator that must agree with Expr::eval bit for bit:
// the ExprProgram constant folder, the scalar bytecode interpreter, and
// the scalar lanes of the unrolled/AVX2 batch backends (expr_simd.*).
// Expr::eval itself inlines the same operations; any change here must be
// mirrored there (and will be caught by tests/model/test_expr_program.cpp).

#include <cmath>

namespace ftbesst::model::detail {

inline double op_add(double a, double b) { return a + b; }
inline double op_sub(double a, double b) { return a - b; }
inline double op_mul(double a, double b) { return a * b; }
/// Protected divide: a denominator within 1e-9 of zero returns the
/// numerator unchanged (NaN denominators are NOT protected — the compare
/// is false, so NaN propagates through the divide like Expr::eval).
inline double op_div(double num, double den) {
  return std::abs(den) < 1e-9 ? num : num / den;
}
inline double op_log(double x) { return std::log(std::abs(x) + 1.0); }
inline double op_sqrt(double x) { return std::sqrt(std::abs(x)); }

}  // namespace ftbesst::model::detail
