#include "model/crossval.hpp"

#include <numeric>
#include <stdexcept>

#include "util/rng.hpp"
#include "util/task_pool.hpp"

namespace ftbesst::model {

CrossValReport cross_validate(const Dataset& data, const FitOptions& options,
                              std::size_t folds) {
  if (folds < 2) throw std::invalid_argument("need at least 2 folds");
  if (data.num_rows() < folds)
    throw std::invalid_argument("fewer rows than folds");
  if (options.method == ModelMethod::kTableNearest ||
      options.method == ModelMethod::kTableMultilinear ||
      options.method == ModelMethod::kTableLogLog)
    throw std::invalid_argument(
        "lookup tables are not generalizing fits; cross-validation does not "
        "apply");

  util::Rng rng(options.seed);
  std::vector<std::size_t> order(data.num_rows());
  std::iota(order.begin(), order.end(), std::size_t{0});
  for (std::size_t i = order.size(); i > 1; --i)
    std::swap(order[i - 1], order[rng.uniform_int(i)]);

  // Folds are independent given the pre-computed shuffle and their derived
  // seeds, so they run as pool tasks writing to per-fold slots — results
  // are bit-identical for any worker count. A fold's own fit may submit
  // nested symreg fitness work; the helping task pool composes both levels
  // without oversubscription.
  std::vector<double> fold_mapes(folds, 0.0);
  util::parallel_for(folds, [&](std::size_t fold) {
    Dataset train(data.param_names());
    Dataset held(data.param_names());
    for (std::size_t i = 0; i < order.size(); ++i) {
      const Row& row = data.row(order[i]);
      (i % folds == fold ? held : train).add_row(row.params, row.samples);
    }
    FitOptions per_fold = options;
    per_fold.seed = options.seed + fold + 1;
    // Fit on the training folds only; evaluate on the held-out fold.
    // train_fraction 1.0 would starve the fitter's internal test split, so
    // we let fit_kernel_model keep its internal split of the training part.
    const FittedKernel fitted = fit_kernel_model(train, per_fold);
    // validate_mape scores the held-out fold through predict_batch, which
    // for symreg kernels runs the active ExprProgram backend; backends are
    // bit-identical, so fold scores don't depend on FTBESST_SIMD.
    fold_mapes[fold] = validate_mape(*fitted.model, held);
  });

  CrossValReport report;
  report.method = options.method;
  report.folds = folds;
  report.fold_mape = util::summarize(fold_mapes);
  return report;
}

ModelMethod select_method_by_crossval(const Dataset& data,
                                      const std::vector<ModelMethod>& methods,
                                      const FitOptions& base_options,
                                      std::size_t folds) {
  if (methods.empty()) throw std::invalid_argument("no methods given");
  ModelMethod best = methods.front();
  double best_mape = std::numeric_limits<double>::infinity();
  for (ModelMethod method : methods) {
    FitOptions opt = base_options;
    opt.method = method;
    const CrossValReport report = cross_validate(data, opt, folds);
    if (report.fold_mape.mean < best_mape) {
      best_mape = report.fold_mape.mean;
      best = method;
    }
  }
  return best;
}

}  // namespace ftbesst::model
