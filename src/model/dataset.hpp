#pragma once
// Calibration datasets.
//
// The Model Development phase of the BE-SST workflow instruments an
// application, runs it over a parameter grid, and records several timing
// samples per parameter combination (system noise makes single samples
// unusable). A Dataset is exactly that artifact: named parameters, one row
// per combination, many samples per row.

#include <cstddef>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "model/aligned_buffer.hpp"
#include "util/rng.hpp"

namespace ftbesst::model {

struct Row {
  std::vector<double> params;
  std::vector<double> samples;
  /// Mean of the timing samples — the regression target.
  [[nodiscard]] double mean_response() const;
};

class Dataset {
 public:
  explicit Dataset(std::vector<std::string> param_names);

  void add_row(std::vector<double> params, std::vector<double> samples);

  [[nodiscard]] const std::vector<std::string>& param_names() const noexcept {
    return names_;
  }
  [[nodiscard]] std::size_t num_params() const noexcept {
    return names_.size();
  }
  [[nodiscard]] std::size_t num_rows() const noexcept { return rows_.size(); }
  [[nodiscard]] bool empty() const noexcept { return rows_.empty(); }
  [[nodiscard]] const Row& row(std::size_t i) const { return rows_.at(i); }
  [[nodiscard]] const std::vector<Row>& rows() const noexcept { return rows_; }

  /// Index of a named parameter; throws if absent.
  [[nodiscard]] std::size_t param_index(const std::string& name) const;

  // -- Structure-of-arrays view --------------------------------------------
  // Batch evaluators (model/expr_program.hpp, FeatureModel::predict_batch)
  // stream one parameter at a time over every row; the row structs above
  // are the wrong layout for that. The dataset therefore also maintains a
  // column-major copy of the parameters, kept in sync by add_row, so a
  // column is always a contiguous array with one entry per row in row
  // order. Columns are held in AlignedBuffers (32-byte-aligned, tail
  // padded with zeros to padded_rows(num_rows())) so the SIMD backends
  // (model/expr_simd.hpp) can use full-width aligned loads with no tail
  // masking.

  /// All values of parameter `dim`, one per row, in row order.
  [[nodiscard]] const AlignedBuffer& column(std::size_t dim) const {
    return cols_.at(dim);
  }

  /// Base pointer of column `dim`'s aligned, zero-padded storage
  /// (padded_rows(num_rows()) readable doubles).
  [[nodiscard]] const double* aligned_column(std::size_t dim) const {
    return cols_.at(dim).data();
  }

  /// Mean responses, one per row, in row order (cached; O(1)).
  [[nodiscard]] const std::vector<double>& responses() const noexcept {
    return responses_;
  }

  /// Random row-level train/test split (paper: "the benchmarking data is
  /// split into training data and testing data"). Guarantees at least one
  /// row on each side when num_rows >= 2.
  [[nodiscard]] std::pair<Dataset, Dataset> split(double train_fraction,
                                                  util::Rng& rng) const;

  /// Sorted unique values taken by parameter `dim` across rows.
  [[nodiscard]] std::vector<double> unique_values(std::size_t dim) const;

  /// True when the rows form a complete rectilinear grid over the unique
  /// values of every parameter (required for multilinear interpolation).
  [[nodiscard]] bool is_full_grid() const;

 private:
  std::vector<std::string> names_;
  std::vector<Row> rows_;
  std::vector<AlignedBuffer> cols_;  // cols_[d][r] == rows_[r].params[d]
  std::vector<double> responses_;    // responses_[r] == row r's mean
};

}  // namespace ftbesst::model
