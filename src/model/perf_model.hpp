#pragma once
// The performance-model interface bound into ArchBEOs.
//
// When the BE-SST simulator executes an abstract instruction, it polls the
// bound PerfModel for the predicted duration instead of running the real
// computation. `predict` is the deterministic expectation; `sample` is the
// Monte-Carlo draw that reproduces machine variance (the paper runs
// Monte-Carlo ensembles so each simulated point is a distribution).

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "model/dataset.hpp"
#include "util/rng.hpp"

namespace ftbesst::model {

class PerfModel {
 public:
  virtual ~PerfModel() = default;
  /// Expected duration in seconds for the given parameter point.
  [[nodiscard]] virtual double predict(
      std::span<const double> params) const = 0;
  /// Predict every row of `data` into `out` (resized to data.num_rows(),
  /// row order). The default simply loops over predict(); models with a
  /// compiled batch path (ExprModel, FeatureModel) override it. Overrides
  /// must stay bit-identical to the per-row loop — validation and fitness
  /// numbers may not depend on which path ran.
  virtual void predict_batch(const Dataset& data,
                             std::vector<double>& out) const;
  /// One stochastic draw; the default is the deterministic prediction.
  [[nodiscard]] virtual double sample(std::span<const double> params,
                                      util::Rng& rng) const {
    (void)rng;
    return predict(params);
  }
  /// Human-readable description (e.g. the regressed formula).
  [[nodiscard]] virtual std::string describe() const = 0;
};

using PerfModelPtr = std::shared_ptr<const PerfModel>;

/// Fixed-duration model, mainly for tests and quickstart examples.
class ConstantModel final : public PerfModel {
 public:
  explicit ConstantModel(double seconds) : seconds_(seconds) {}
  [[nodiscard]] double predict(std::span<const double>) const override {
    return seconds_;
  }
  [[nodiscard]] std::string describe() const override {
    return "const(" + std::to_string(seconds_) + "s)";
  }

 private:
  double seconds_;
};

/// Wraps any model with multiplicative log-normal noise whose sigma was
/// estimated from calibration residuals — this is how BE-SST's Monte-Carlo
/// mode "captures the variance that exists in the calibration samples".
class NoisyModel final : public PerfModel {
 public:
  NoisyModel(PerfModelPtr base, double log_sigma);

  [[nodiscard]] double predict(std::span<const double> params) const override;
  void predict_batch(const Dataset& data,
                     std::vector<double>& out) const override {
    base_->predict_batch(data, out);
  }
  [[nodiscard]] double sample(std::span<const double> params,
                              util::Rng& rng) const override;
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] double log_sigma() const noexcept { return sigma_; }
  [[nodiscard]] const PerfModelPtr& base() const noexcept { return base_; }

 private:
  PerfModelPtr base_;
  double sigma_;
};

}  // namespace ftbesst::model
