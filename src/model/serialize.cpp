#include "model/serialize.hpp"

#include <cmath>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "model/feature_model.hpp"
#include "model/powerlaw.hpp"
#include "model/symreg.hpp"

namespace ftbesst::model {

namespace {

constexpr const char* kMagic = "ftbesst-model v1";

// Counts in a model stream come straight from untrusted text; cap them
// before sizing any container so a forged header cannot demand a
// multi-gigabyte allocation. Far above anything a real calibration emits.
constexpr std::size_t kMaxSerializedTerms = 4096;
constexpr std::size_t kMaxFeatureParams = 64;

// Every numeric field must survive a text round-trip exactly; NaN and
// infinity would serialize, reload, and then silently poison every
// downstream prediction, so both save and load refuse them up front.
double checked_finite(double v, const char* what) {
  if (!std::isfinite(v))
    throw std::invalid_argument(std::string("non-finite ") + what +
                                " in model serialization");
  return v;
}

void save_model_body(std::ostream& os, const PerfModel& model) {
  os << std::setprecision(17);
  if (const auto* noisy = dynamic_cast<const NoisyModel*>(&model)) {
    os << "noisy " << checked_finite(noisy->log_sigma(), "noisy log_sigma")
       << '\n';
    save_model_body(os, *noisy->base());
    return;
  }
  if (const auto* constant = dynamic_cast<const ConstantModel*>(&model)) {
    os << "constant "
       << checked_finite(constant->predict(std::span<const double>{}),
                         "constant value")
       << '\n';
    return;
  }
  if (const auto* pl = dynamic_cast<const PowerLawModel*>(&model)) {
    os << "powerlaw " << checked_finite(pl->coefficient(), "powerlaw coefficient")
       << ' ' << pl->exponents().size();
    for (double e : pl->exponents())
      os << ' ' << checked_finite(e, "powerlaw exponent");
    os << '\n';
    return;
  }
  if (const auto* expr = dynamic_cast<const ExprModel*>(&model)) {
    os << "exprmodel " << checked_finite(expr->scale(), "exprmodel scale")
       << ' ' << checked_finite(expr->offset(), "exprmodel offset") << ' '
       << expr->param_names().size();
    for (const auto& name : expr->param_names()) os << ' ' << name;
    os << '\n' << expr->expr().to_sexpr() << '\n';
    return;
  }
  throw std::invalid_argument("unsupported model type for serialization: " +
                              model.describe());
}

std::string read_line(std::istream& is) {
  std::string line;
  if (!std::getline(is, line))
    throw std::invalid_argument("unexpected end of model stream");
  return line;
}

PerfModelPtr load_model_body(std::istream& is) {
  std::string line = read_line(is);
  std::istringstream ls(line);
  std::string kind;
  ls >> kind;
  if (kind == "noisy") {
    double sigma = 0.0;
    if (!(ls >> sigma)) throw std::invalid_argument("bad noisy line");
    checked_finite(sigma, "noisy log_sigma");
    PerfModelPtr base = load_model_body(is);
    return std::make_shared<NoisyModel>(std::move(base), sigma);
  }
  if (kind == "constant") {
    double value = 0.0;
    if (!(ls >> value)) throw std::invalid_argument("bad constant line");
    checked_finite(value, "constant value");
    return std::make_shared<ConstantModel>(value);
  }
  if (kind == "powerlaw") {
    double coeff = 0.0;
    std::size_t n = 0;
    if (!(ls >> coeff >> n)) throw std::invalid_argument("bad powerlaw line");
    if (n > kMaxSerializedTerms)
      throw std::invalid_argument("powerlaw exponent count too large");
    checked_finite(coeff, "powerlaw coefficient");
    std::vector<double> exponents(n);
    for (auto& e : exponents) {
      if (!(ls >> e)) throw std::invalid_argument("bad powerlaw exponents");
      checked_finite(e, "powerlaw exponent");
    }
    return std::make_shared<PowerLawModel>(coeff, std::move(exponents));
  }
  if (kind == "exprmodel") {
    double scale = 1.0, offset = 0.0;
    std::size_t n = 0;
    if (!(ls >> scale >> offset >> n))
      throw std::invalid_argument("bad exprmodel line");
    if (n > kMaxSerializedTerms)
      throw std::invalid_argument("exprmodel parameter count too large");
    checked_finite(scale, "exprmodel scale");
    checked_finite(offset, "exprmodel offset");
    std::vector<std::string> names(n);
    for (auto& name : names)
      if (!(ls >> name)) throw std::invalid_argument("bad exprmodel names");
    const std::string sexpr = read_line(is);
    return std::make_shared<ExprModel>(Expr::from_sexpr(sexpr), scale, offset,
                                       std::move(names));
  }
  if (kind == "featuremodel") {
    std::string lib_kind;
    std::size_t num_params = 0, num_weights = 0;
    if (!(ls >> lib_kind >> num_params >> num_weights) ||
        lib_kind != "polynomial")
      throw std::invalid_argument("bad featuremodel line");
    if (num_params > kMaxFeatureParams ||
        num_weights > kMaxSerializedTerms)
      throw std::invalid_argument("featuremodel counts too large");
    auto lib = FeatureLibrary::polynomial(num_params);
    if (lib.size() != num_weights)
      throw std::invalid_argument("feature count mismatch on load");
    std::istringstream ws(read_line(is));
    std::vector<double> weights(num_weights);
    for (auto& w : weights) {
      if (!(ws >> w)) throw std::invalid_argument("bad feature weights");
      checked_finite(w, "feature weight");
    }
    return std::make_shared<FeatureModel>(std::move(lib), std::move(weights));
  }
  throw std::invalid_argument("unknown model kind '" + kind + "'");
}

/// FeatureModel needs its library tag; handled out-of-band from the
/// dynamic_cast chain above so the chain stays exception-free for the
/// supported types.
bool try_save_feature_model(std::ostream& os, const PerfModel& model) {
  const auto* feat = dynamic_cast<const FeatureModel*>(&model);
  if (!feat) return false;
  // Reconstruct the tag via a second dynamic property: FeatureModel keeps
  // its library; we require it to be tagged.
  const std::string& tag = feat->library_tag();
  if (tag.empty())
    throw std::invalid_argument(
        "cannot serialize a feature model with a hand-built library");
  os << std::setprecision(17);
  os << "featuremodel " << tag << ' ' << feat->weights().size() << '\n';
  for (std::size_t i = 0; i < feat->weights().size(); ++i)
    os << (i ? " " : "") << checked_finite(feat->weights()[i], "feature weight");
  os << '\n';
  return true;
}

}  // namespace

void save_model(std::ostream& os, const PerfModel& model) {
  os << kMagic << '\n';
  // NoisyModel over a FeatureModel must recurse through the noisy header
  // first; handle that explicitly.
  if (const auto* noisy = dynamic_cast<const NoisyModel*>(&model)) {
    os << std::setprecision(17) << "noisy "
       << checked_finite(noisy->log_sigma(), "noisy log_sigma") << '\n';
    if (!try_save_feature_model(os, *noisy->base()))
      save_model_body(os, *noisy->base());
    return;
  }
  if (try_save_feature_model(os, model)) return;
  save_model_body(os, model);
}

std::string model_to_string(const PerfModel& model) {
  std::ostringstream os;
  save_model(os, model);
  return os.str();
}

PerfModelPtr load_model(std::istream& is) {
  const std::string magic = read_line(is);
  if (magic != kMagic)
    throw std::invalid_argument("not an ftbesst model stream: '" + magic +
                                "'");
  return load_model_body(is);
}

PerfModelPtr model_from_string(const std::string& text) {
  std::istringstream is(text);
  return load_model(is);
}

void save_dataset(std::ostream& os, const Dataset& data) {
  os << std::setprecision(17);
  for (std::size_t d = 0; d < data.num_params(); ++d)
    os << data.param_names()[d] << ',';
  os << "sample\n";
  for (const Row& row : data.rows())
    for (double sample : row.samples) {
      for (double p : row.params)
        os << checked_finite(p, "dataset parameter") << ',';
      os << checked_finite(sample, "dataset sample") << '\n';
    }
}

Dataset load_dataset(std::istream& is) {
  std::string header;
  if (!std::getline(is, header))
    throw std::invalid_argument("empty dataset stream");
  std::vector<std::string> names;
  std::istringstream hs(header);
  std::string col;
  while (std::getline(hs, col, ',')) names.push_back(col);
  if (names.empty() || names.back() != "sample")
    throw std::invalid_argument("dataset header must end with 'sample'");
  names.pop_back();
  Dataset data(names);

  // Accumulate consecutive rows with identical parameters into one row.
  std::vector<double> current_params;
  std::vector<double> current_samples;
  auto flush = [&]() {
    if (!current_samples.empty())
      data.add_row(current_params, current_samples);
    current_samples.clear();
  };
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::vector<double> values;
    std::string cell;
    while (std::getline(ls, cell, ',')) {
      std::size_t used = 0;
      double v = 0.0;
      try {
        v = std::stod(cell, &used);
      } catch (const std::exception&) {
        throw std::invalid_argument("bad dataset cell '" + cell + "'");
      }
      if (used != cell.size())
        throw std::invalid_argument("bad dataset cell '" + cell + "'");
      values.push_back(checked_finite(v, "dataset cell"));
    }
    if (values.size() != names.size() + 1)
      throw std::invalid_argument("dataset row width mismatch");
    std::vector<double> params(values.begin(), values.end() - 1);
    if (params != current_params) {
      flush();
      current_params = std::move(params);
    }
    current_samples.push_back(values.back());
  }
  flush();
  return data;
}

}  // namespace ftbesst::model
