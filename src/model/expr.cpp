#include "model/expr.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdint>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>

namespace ftbesst::model {

namespace {

std::unique_ptr<ExprNode> clone_node(const ExprNode* n) {
  if (!n) return nullptr;
  auto out = std::make_unique<ExprNode>();
  out->op = n->op;
  out->value = n->value;
  out->var = n->var;
  out->lhs = clone_node(n->lhs.get());
  out->rhs = clone_node(n->rhs.get());
  return out;
}

double eval_node(const ExprNode* n, std::span<const double> vars) {
  switch (n->op) {
    case Op::kConst:
      return n->value;
    case Op::kVar:
      return n->var < vars.size() ? vars[n->var] : 0.0;
    case Op::kAdd:
      return eval_node(n->lhs.get(), vars) + eval_node(n->rhs.get(), vars);
    case Op::kSub:
      return eval_node(n->lhs.get(), vars) - eval_node(n->rhs.get(), vars);
    case Op::kMul:
      return eval_node(n->lhs.get(), vars) * eval_node(n->rhs.get(), vars);
    case Op::kDiv: {
      const double num = eval_node(n->lhs.get(), vars);
      const double den = eval_node(n->rhs.get(), vars);
      return std::abs(den) < 1e-9 ? num : num / den;
    }
    case Op::kLog:
      return std::log(std::abs(eval_node(n->lhs.get(), vars)) + 1.0);
    case Op::kSqrt:
      return std::sqrt(std::abs(eval_node(n->lhs.get(), vars)));
  }
  return 0.0;
}

std::size_t size_node(const ExprNode* n) {
  if (!n) return 0;
  return 1 + size_node(n->lhs.get()) + size_node(n->rhs.get());
}

int depth_node(const ExprNode* n) {
  if (!n) return 0;
  return 1 + std::max(depth_node(n->lhs.get()), depth_node(n->rhs.get()));
}

void collect(ExprNode* n, std::vector<ExprNode*>& out) {
  if (!n) return;
  out.push_back(n);
  collect(n->lhs.get(), out);
  collect(n->rhs.get(), out);
}

std::string str_node(const ExprNode* n, std::span<const std::string> names) {
  if (!n) return "0";
  std::ostringstream os;
  switch (n->op) {
    case Op::kConst:
      os << n->value;
      break;
    case Op::kVar:
      if (n->var < names.size())
        os << names[n->var];
      else
        os << "x" << n->var;
      break;
    case Op::kAdd:
      os << "(" << str_node(n->lhs.get(), names) << " + "
         << str_node(n->rhs.get(), names) << ")";
      break;
    case Op::kSub:
      os << "(" << str_node(n->lhs.get(), names) << " - "
         << str_node(n->rhs.get(), names) << ")";
      break;
    case Op::kMul:
      os << "(" << str_node(n->lhs.get(), names) << " * "
         << str_node(n->rhs.get(), names) << ")";
      break;
    case Op::kDiv:
      os << "(" << str_node(n->lhs.get(), names) << " / "
         << str_node(n->rhs.get(), names) << ")";
      break;
    case Op::kLog:
      os << "log1p|" << str_node(n->lhs.get(), names) << "|";
      break;
    case Op::kSqrt:
      os << "sqrt|" << str_node(n->lhs.get(), names) << "|";
      break;
  }
  return os.str();
}

/// Log-uniform constant in [1e-6, 100), signed positive (timing terms are
/// additive-positive; subtraction exists as an operator).
double random_constant(util::Rng& rng) {
  return std::pow(10.0, rng.uniform(-6.0, 2.0));
}

std::unique_ptr<ExprNode> random_node(util::Rng& rng, std::size_t num_vars,
                                      int max_depth) {
  auto node = std::make_unique<ExprNode>();
  const double roll = rng.uniform();
  const bool terminal = max_depth <= 1 || roll < 0.25;
  if (terminal) {
    if (num_vars > 0 && rng.uniform() < 0.6) {
      node->op = Op::kVar;
      node->var = rng.uniform_int(num_vars);
    } else {
      node->op = Op::kConst;
      node->value = random_constant(rng);
    }
    return node;
  }
  if (roll < 0.40) {  // unary
    node->op = rng.uniform() < 0.5 ? Op::kLog : Op::kSqrt;
    node->lhs = random_node(rng, num_vars, max_depth - 1);
    return node;
  }
  constexpr Op kBinary[] = {Op::kAdd, Op::kSub, Op::kMul, Op::kDiv};
  // Bias toward multiplication — performance models are mostly products of
  // powers of the parameters.
  const double pick = rng.uniform();
  node->op = pick < 0.4   ? Op::kMul
             : pick < 0.6 ? Op::kAdd
             : pick < 0.8 ? Op::kDiv
                          : kBinary[1];
  node->lhs = random_node(rng, num_vars, max_depth - 1);
  node->rhs = random_node(rng, num_vars, max_depth - 1);
  return node;
}

}  // namespace

Expr Expr::constant(double v) {
  auto n = std::make_unique<ExprNode>();
  n->op = Op::kConst;
  n->value = v;
  return Expr(std::move(n));
}

Expr Expr::variable(std::size_t index) {
  auto n = std::make_unique<ExprNode>();
  n->op = Op::kVar;
  n->var = index;
  return Expr(std::move(n));
}

Expr Expr::binary(Op op, Expr lhs, Expr rhs) {
  auto n = std::make_unique<ExprNode>();
  n->op = op;
  n->lhs = std::move(lhs.root_);
  n->rhs = std::move(rhs.root_);
  return Expr(std::move(n));
}

Expr Expr::unary(Op op, Expr operand) {
  auto n = std::make_unique<ExprNode>();
  n->op = op;
  n->lhs = std::move(operand.root_);
  return Expr(std::move(n));
}

Expr Expr::random(util::Rng& rng, std::size_t num_vars, int max_depth) {
  return Expr(random_node(rng, num_vars, std::max(1, max_depth)));
}

Expr Expr::crossover(const Expr& a, const Expr& b, util::Rng& rng,
                     std::size_t max_nodes) {
  if (a.empty() || b.empty()) return a.clone();
  Expr child = a.clone();
  std::vector<ExprNode*> sites;
  collect(child.root_.get(), sites);
  std::vector<ExprNode*> donors;
  // collect() wants mutable pointers; the donor tree is only read (cloned).
  collect(const_cast<ExprNode*>(b.root_.get()), donors);
  ExprNode* site = sites[rng.uniform_int(sites.size())];
  const ExprNode* donor = donors[rng.uniform_int(donors.size())];
  auto grafted = clone_node(donor);
  // Replace the site's contents in place.
  *site = std::move(*grafted);
  if (child.size() > max_nodes) return a.clone();
  return child;
}

Expr Expr::mutate(const Expr& e, util::Rng& rng, std::size_t num_vars,
                  int max_depth, std::size_t max_nodes) {
  if (e.empty()) return Expr::random(rng, num_vars, max_depth);
  Expr out = e.clone();
  std::vector<ExprNode*> sites;
  collect(out.root_.get(), sites);
  ExprNode* site = sites[rng.uniform_int(sites.size())];
  const double roll = rng.uniform();
  if (site->op == Op::kConst && roll < 0.6) {
    // Jitter the constant multiplicatively (and occasionally re-draw).
    site->value = rng.uniform() < 0.15
                      ? random_constant(rng)
                      : site->value * std::exp(rng.normal(0.0, 0.3));
  } else if (roll < 0.5) {
    // Regrow the subtree.
    auto fresh = random_node(rng, num_vars, std::max(1, max_depth - 1));
    *site = std::move(*fresh);
  } else if (is_binary(site->op)) {
    constexpr Op kBinary[] = {Op::kAdd, Op::kSub, Op::kMul, Op::kDiv};
    site->op = kBinary[rng.uniform_int(4)];
  } else if (is_unary(site->op)) {
    site->op = site->op == Op::kLog ? Op::kSqrt : Op::kLog;
  } else if (site->op == Op::kVar && num_vars > 0) {
    site->var = rng.uniform_int(num_vars);
  } else {
    site->value = random_constant(rng);
  }
  if (out.size() > max_nodes) return e.clone();
  return out;
}

double Expr::eval(std::span<const double> vars) const {
  if (!root_) return 0.0;
  const double v = eval_node(root_.get(), vars);
  return std::isfinite(v) ? v : 0.0;
}

std::size_t Expr::size() const noexcept { return size_node(root_.get()); }
int Expr::depth() const noexcept { return depth_node(root_.get()); }
Expr Expr::clone() const { return Expr(clone_node(root_.get())); }

std::string Expr::str(std::span<const std::string> names) const {
  return str_node(root_.get(), names);
}

namespace {

const char* op_name(Op op) {
  switch (op) {
    case Op::kConst: return "const";
    case Op::kVar: return "var";
    case Op::kAdd: return "add";
    case Op::kSub: return "sub";
    case Op::kMul: return "mul";
    case Op::kDiv: return "div";
    case Op::kLog: return "log";
    case Op::kSqrt: return "sqrt";
  }
  return "?";
}

void sexpr_node(const ExprNode* n, std::ostringstream& os) {
  if (!n) {
    os << "(const 0)";
    return;
  }
  os << '(' << op_name(n->op);
  switch (n->op) {
    case Op::kConst:
      // max_digits10 so the value round-trips bit-exactly.
      os.precision(17);
      os << ' ' << n->value;
      break;
    case Op::kVar:
      os << ' ' << n->var;
      break;
    default:
      os << ' ';
      sexpr_node(n->lhs.get(), os);
      if (is_binary(n->op)) {
        os << ' ';
        sexpr_node(n->rhs.get(), os);
      }
      break;
  }
  os << ')';
}

/// Minimal recursive-descent S-expression parser.
class SexprParser {
 public:
  explicit SexprParser(const std::string& text) : text_(text) {}

  std::unique_ptr<ExprNode> parse() {
    auto node = parse_node();
    skip_ws();
    if (pos_ != text_.size())
      throw std::invalid_argument("trailing input in expression: '" +
                                  text_.substr(pos_) + "'");
    return node;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(
                                      text_[pos_])))
      ++pos_;
  }
  void expect(char c) {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != c)
      throw std::invalid_argument(std::string("expected '") + c + "' at " +
                                  std::to_string(pos_));
    ++pos_;
  }
  std::string token() {
    skip_ws();
    std::size_t start = pos_;
    while (pos_ < text_.size() && text_[pos_] != '(' && text_[pos_] != ')' &&
           !std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
    if (start == pos_)
      throw std::invalid_argument("expected token at " + std::to_string(pos_));
    return text_.substr(start, pos_ - start);
  }

  // stod/stoul also throw std::out_of_range; a malformed expression must
  // surface as invalid_argument only (the documented contract for every
  // parser fed untrusted text), so the raw conversions are wrapped.
  double number_token() {
    const std::string t = token();
    try {
      return std::stod(t);
    } catch (const std::exception&) {
      throw std::invalid_argument("bad numeric token '" + t + "'");
    }
  }
  std::size_t index_token() {
    const std::string t = token();
    std::size_t index = 0;
    try {
      index = static_cast<std::size_t>(std::stoul(t));
    } catch (const std::exception&) {
      throw std::invalid_argument("bad variable index '" + t + "'");
    }
    // The bytecode compiler packs variable indices into 16 bits; accepting
    // a wider index here would defer the failure to compile time with the
    // wrong exception type.
    if (index > std::numeric_limits<std::uint16_t>::max())
      throw std::invalid_argument("variable index out of range '" + t + "'");
    return index;
  }

  std::unique_ptr<ExprNode> parse_node() {
    // Recursion depth is attacker-controlled ("(log (log (log ..."); cap it
    // well above any fitted expression but below stack exhaustion.
    if (++depth_ > 256)
      throw std::invalid_argument("expression nesting too deep");
    expect('(');
    const std::string op = token();
    auto node = std::make_unique<ExprNode>();
    if (op == "const") {
      node->op = Op::kConst;
      node->value = number_token();
    } else if (op == "var") {
      node->op = Op::kVar;
      node->var = index_token();
    } else if (op == "log" || op == "sqrt") {
      node->op = op == "log" ? Op::kLog : Op::kSqrt;
      node->lhs = parse_node();
    } else if (op == "add" || op == "sub" || op == "mul" || op == "div") {
      node->op = op == "add"   ? Op::kAdd
                 : op == "sub" ? Op::kSub
                 : op == "mul" ? Op::kMul
                               : Op::kDiv;
      node->lhs = parse_node();
      node->rhs = parse_node();
    } else {
      throw std::invalid_argument("unknown operator '" + op + "'");
    }
    expect(')');
    --depth_;
    return node;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

std::string Expr::to_sexpr() const {
  std::ostringstream os;
  sexpr_node(root_.get(), os);
  return os.str();
}

Expr Expr::from_sexpr(const std::string& text) {
  return Expr(SexprParser(text).parse());
}

namespace {

bool is_const(const ExprNode* n, double value) {
  return n && n->op == Op::kConst && n->value == value;
}

std::unique_ptr<ExprNode> make_const(double v) {
  auto n = std::make_unique<ExprNode>();
  n->op = Op::kConst;
  n->value = v;
  return n;
}

bool nodes_identical(const ExprNode* a, const ExprNode* b) {
  if (!a || !b) return a == b;
  if (a->op != b->op) return false;
  switch (a->op) {
    case Op::kConst: return a->value == b->value;
    case Op::kVar: return a->var == b->var;
    default:
      return nodes_identical(a->lhs.get(), b->lhs.get()) &&
             nodes_identical(a->rhs.get(), b->rhs.get());
  }
}

std::unique_ptr<ExprNode> simplify_node(const ExprNode* n) {
  if (!n) return nullptr;
  if (n->op == Op::kConst || n->op == Op::kVar) return clone_node(n);

  auto out = std::make_unique<ExprNode>();
  out->op = n->op;
  out->lhs = simplify_node(n->lhs.get());
  out->rhs = simplify_node(n->rhs.get());
  const ExprNode* l = out->lhs.get();
  const ExprNode* r = out->rhs.get();

  // Constant folding: every operand a literal -> evaluate with the same
  // protected semantics as eval().
  const bool lc = l && l->op == Op::kConst;
  const bool rc = r && r->op == Op::kConst;
  switch (out->op) {
    case Op::kAdd:
      if (lc && rc) return make_const(l->value + r->value);
      if (is_const(l, 0.0)) return std::move(out->rhs);
      if (is_const(r, 0.0)) return std::move(out->lhs);
      break;
    case Op::kSub:
      if (lc && rc) return make_const(l->value - r->value);
      if (is_const(r, 0.0)) return std::move(out->lhs);
      if (nodes_identical(l, r)) return make_const(0.0);
      break;
    case Op::kMul:
      if (lc && rc) return make_const(l->value * r->value);
      if (is_const(l, 1.0)) return std::move(out->rhs);
      if (is_const(r, 1.0)) return std::move(out->lhs);
      if (is_const(l, 0.0) || is_const(r, 0.0)) return make_const(0.0);
      break;
    case Op::kDiv:
      if (lc && rc)
        return make_const(std::abs(r->value) < 1e-9 ? l->value
                                                    : l->value / r->value);
      if (is_const(r, 1.0)) return std::move(out->lhs);
      if (is_const(l, 0.0)) return make_const(0.0);
      break;
    case Op::kLog:
      if (lc) return make_const(std::log(std::abs(l->value) + 1.0));
      break;
    case Op::kSqrt:
      if (lc) return make_const(std::sqrt(std::abs(l->value)));
      break;
    default:
      break;
  }
  return out;
}

}  // namespace

Expr Expr::simplified() const { return Expr(simplify_node(root_.get())); }

}  // namespace ftbesst::model
