#include "model/table_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ftbesst::model {

TableModel::TableModel(const Dataset& data, Interpolation method)
    : method_(method), names_(data.param_names()) {
  if (data.empty()) throw std::invalid_argument("empty calibration dataset");
  points_.reserve(data.num_rows());
  for (const Row& r : data.rows()) {
    Point p;
    p.params = r.params;
    p.samples = r.samples;
    p.mean = r.mean_response();
    points_.push_back(std::move(p));
  }
  // Per-dimension normalization spans for nearest-neighbour distance.
  scale_.assign(names_.size(), 1.0);
  for (std::size_t d = 0; d < names_.size(); ++d) {
    const auto vals = data.unique_values(d);
    const double span = vals.back() - vals.front();
    scale_[d] = span > 0.0 ? span : 1.0;
  }

  if (method_ == Interpolation::kMultilinear ||
      method_ == Interpolation::kLogLog) {
    if (!data.is_full_grid())
      throw std::invalid_argument(
          "multilinear interpolation requires a full rectilinear grid");
    if (method_ == Interpolation::kLogLog) {
      for (const Point& p : points_) {
        if (p.mean <= 0.0)
          throw std::invalid_argument(
              "log-log interpolation requires positive responses");
        for (double v : p.params)
          if (v <= 0.0)
            throw std::invalid_argument(
                "log-log interpolation requires positive parameters");
      }
    }
    axes_.resize(names_.size());
    for (std::size_t d = 0; d < names_.size(); ++d)
      axes_[d] = data.unique_values(d);
    // Row-major grid index -> calibration point.
    std::size_t total = 1;
    for (const auto& axis : axes_) total *= axis.size();
    grid_to_point_.assign(total, 0);
    for (std::size_t i = 0; i < points_.size(); ++i) {
      std::size_t flat = 0;
      for (std::size_t d = 0; d < axes_.size(); ++d) {
        const auto it = std::lower_bound(axes_[d].begin(), axes_[d].end(),
                                         points_[i].params[d]);
        flat = flat * axes_[d].size() +
               static_cast<std::size_t>(it - axes_[d].begin());
      }
      grid_to_point_[flat] = i;
    }
  }
}

std::size_t TableModel::nearest_index(std::span<const double> params) const {
  std::size_t best = 0;
  double best_dist = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < points_.size(); ++i) {
    double dist = 0.0;
    for (std::size_t d = 0; d < names_.size(); ++d) {
      const double delta = (params[d] - points_[i].params[d]) / scale_[d];
      dist += delta * delta;
    }
    if (dist < best_dist) {
      best_dist = dist;
      best = i;
    }
  }
  return best;
}

double TableModel::grid_mean(const std::vector<std::size_t>& index) const {
  std::size_t flat = 0;
  for (std::size_t d = 0; d < axes_.size(); ++d)
    flat = flat * axes_[d].size() + index[d];
  const double mean = points_[grid_to_point_[flat]].mean;
  return method_ == Interpolation::kLogLog ? std::log(mean) : mean;
}

double TableModel::interp_rec(std::span<const double> params, std::size_t dim,
                              std::vector<std::size_t>& index) const {
  if (dim == axes_.size()) return grid_mean(index);
  const auto& axis = axes_[dim];
  if (axis.size() == 1) {
    index[dim] = 0;
    return interp_rec(params, dim + 1, index);
  }
  // Bracket (or edge pair for extrapolation). For log-log, the bracketing
  // weight is computed in log space so power laws interpolate exactly.
  const double x = params[dim];
  std::size_t hi = static_cast<std::size_t>(
      std::lower_bound(axis.begin(), axis.end(), x) - axis.begin());
  hi = std::clamp<std::size_t>(hi, 1, axis.size() - 1);
  const std::size_t lo = hi - 1;
  const double t =
      method_ == Interpolation::kLogLog
          ? (std::log(x) - std::log(axis[lo])) /
                (std::log(axis[hi]) - std::log(axis[lo]))
          : (x - axis[lo]) / (axis[hi] - axis[lo]);

  index[dim] = lo;
  const double f_lo = interp_rec(params, dim + 1, index);
  index[dim] = hi;
  const double f_hi = interp_rec(params, dim + 1, index);
  return f_lo * (1.0 - t) + f_hi * t;
}

double TableModel::multilinear(std::span<const double> params) const {
  std::vector<std::size_t> index(axes_.size(), 0);
  return interp_rec(params, 0, index);
}

double TableModel::predict(std::span<const double> params) const {
  if (params.size() != names_.size())
    throw std::invalid_argument("parameter count mismatch");
  if (method_ == Interpolation::kNearest)
    return points_[nearest_index(params)].mean;
  if (method_ == Interpolation::kLogLog) {
    for (double v : params)
      if (v <= 0.0)
        throw std::invalid_argument("log-log query requires positive params");
    return std::exp(multilinear(params));
  }
  return multilinear(params);
}

double TableModel::sample(std::span<const double> params,
                          util::Rng& rng) const {
  const double predicted = predict(params);
  const Point& p = points_[nearest_index(params)];
  const double draw = p.samples[rng.uniform_int(p.samples.size())];
  // Rescale the drawn sample so the *relative* deviation is preserved when
  // the query point is off the calibrated grid.
  return p.mean > 0.0 ? draw * (predicted / p.mean) : predicted;
}

std::string TableModel::describe() const {
  const char* name = method_ == Interpolation::kNearest ? "nearest"
                     : method_ == Interpolation::kLogLog ? "loglog"
                                                         : "multilinear";
  return std::string("table[") + name + ", " +
         std::to_string(points_.size()) + " points]";
}

}  // namespace ftbesst::model
