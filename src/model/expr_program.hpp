#pragma once
// Compiled batch evaluation for expression trees.
//
// SymReg fitness is the calibration hot loop: every individual of every
// generation is evaluated on every dataset row. Walking the `Expr` tree
// per row (recursion, pointer chasing, one switch per node per row) is
// what the seed did; an ExprProgram instead lowers the tree once into a
// flat register program — with compile-time constant folding and
// common-subexpression elimination over the tree's DAG — and evaluates it
// column-wise over the structure-of-arrays view of a Dataset. The inner
// loop is then one opcode switch per *instruction*, each running a tight
// vectorizable pass over contiguous doubles.
//
// Semantics contract: ExprProgram::eval_* is bit-identical to calling
// Expr::eval row by row, including the protected-operator behaviour
// (x/den with |den| < 1e-9 returns x, log is log1p|x|, sqrt is sqrt|x|),
// out-of-range variables reading as 0, and the final non-finite-to-zero
// clamp. CSE only merges structurally identical subtrees and constant
// folding performs the very same double operations at compile time, so
// neither transformation can change a single result bit. This is enforced
// by tests/model/test_expr_program.cpp and bench_ext_symreg's divergence
// check.
//
// eval_dataset additionally dispatches to SIMD-batched backends
// (model/expr_simd.hpp: portable 4-wide unrolled, AVX2, and an opt-in
// AVX2 fast-math mode) selected at runtime via CPUID and the FTBESST_SIMD
// environment variable. The default backends honour the same bit-identity
// contract — see ARCHITECTURE.md, "SIMD execution", for the backend
// selection rules, the alignment/padding invariants, and the fast-math
// carve-out's ULP bound.

#include <cstdint>
#include <span>
#include <vector>

#include "model/aligned_buffer.hpp"
#include "model/dataset.hpp"
#include "model/expr.hpp"

namespace ftbesst::model {

/// Where an instruction operand comes from. Variables and constants are
/// not materialized into registers: an arithmetic instruction reads a
/// dataset column or an inline literal directly, so leaf nodes cost no
/// instructions (and no memory traffic) at all. kVar/kConst opcodes only
/// appear when the *root* of the tree is itself a bare leaf.
enum class Src : std::uint8_t {
  kReg,    ///< operand index is a register
  kCol,    ///< operand index is a variable/column (out of range reads 0)
  kLit,    ///< operand is the instruction's `value` literal
};

/// Optional unary applied to an instruction's result in the same pass.
/// A protected log/sqrt whose operand is used exactly once is fused into
/// its producer (`log(a + b)` is one loop, not two), eliminating a full
/// register-width store + reload. The composed value is computed with the
/// identical scalar operations in the identical order, so fusion cannot
/// change a result bit.
enum class Post : std::uint8_t { kNone, kLog, kSqrt };

/// One register-machine instruction. For arithmetic opcodes `a`/`b` are
/// operand indices interpreted per `a_src`/`b_src` (at most one operand is
/// a literal — two literals would have been folded). For a root-leaf kVar,
/// `a` is the variable index; for a root-leaf kConst, `value` is the
/// literal.
struct ProgInstr {
  Op op = Op::kConst;
  Src a_src = Src::kReg;
  Src b_src = Src::kReg;
  Post post = Post::kNone;
  std::uint16_t dst = 0;
  std::uint16_t a = 0;
  std::uint16_t b = 0;
  double value = 0.0;
};

/// Reusable evaluation workspace. Passing one in across calls amortizes
/// the allocations over a whole population/generation. The scalar strip
/// interpreter uses `regs` (registers x rows); the blocked SIMD backends
/// use `block_regs` (registers x simd_detail::kBlockRows, 32-byte-aligned
/// strips) and `cols` (per-batch resolved column base pointers). `zeros`
/// is the aligned, zero-padded read target for out-of-range variables.
struct EvalScratch {
  std::vector<double> regs;
  AlignedBuffer zeros;
  AlignedBuffer block_regs;
  std::vector<const double*> cols;
};

class ExprProgram {
 public:
  ExprProgram() = default;  ///< evaluates to 0.0 everywhere, like empty Expr

  /// Lower `expr` to a flat program. Structurally identical subtrees are
  /// computed once (CSE) and all-constant subtrees are folded at compile
  /// time using the exact protected eval() semantics. Throws
  /// std::length_error in the (pathological) case of more than 65535
  /// distinct subexpressions.
  [[nodiscard]] static ExprProgram compile(const Expr& expr);

  /// As compile(), but reuses `out`'s storage (cleared, capacity kept).
  /// The population loop lowers thousands of programs per generation;
  /// recycling one ExprProgram per worker keeps that loop malloc-free.
  static void compile_into(const Expr& expr, ExprProgram& out);

  /// Evaluate over every row of `data`, column-wise, into `out` (resized
  /// to data.num_rows()). Bit-identical to Expr::eval on each row.
  void eval_dataset(const Dataset& data, std::vector<double>& out,
                    EvalScratch& scratch) const;

  /// Single-point evaluation (spot checks, PerfModel::predict parity).
  [[nodiscard]] double eval(std::span<const double> vars) const;

  [[nodiscard]] std::size_t num_instructions() const noexcept {
    return code_.size();
  }
  [[nodiscard]] std::size_t num_registers() const noexcept { return regs_; }
  /// Node count of the source tree; num_instructions() below this measures
  /// the work removed by folding + CSE.
  [[nodiscard]] std::size_t tree_nodes() const noexcept { return tree_nodes_; }
  [[nodiscard]] bool empty() const noexcept { return code_.empty(); }

 private:
  std::vector<ProgInstr> code_;
  std::uint16_t regs_ = 0;      // registers used
  std::uint16_t root_ = 0;      // register holding the root's value
  std::size_t tree_nodes_ = 0;
};

}  // namespace ftbesst::model
