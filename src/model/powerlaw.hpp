#pragma once
// Power-law regression: y = c * x1^a1 * ... * xn^an (+ optional floor).
//
// The canonical closed form for compute-kernel scaling (volume ~ n^3,
// surface ~ n^2, tree collectives ~ log n fit acceptably over bounded
// ranges). Fitted as ordinary least squares in log-log space, which makes
// it the most robust *extrapolator* in the toolbox: a monomial fitted on
// small grids continues along the same exponents forever, where free-form
// feature bases can swing wildly outside the data (see bench_ext_modelcmp).
// Requires strictly positive parameters and responses.

#include <span>
#include <string>
#include <vector>

#include "model/dataset.hpp"
#include "model/perf_model.hpp"

namespace ftbesst::model {

class PowerLawModel final : public PerfModel {
 public:
  /// y = coefficient * prod_i params[i]^exponents[i].
  PowerLawModel(double coefficient, std::vector<double> exponents);

  /// OLS fit in log-log space over the dataset's mean responses. Throws
  /// std::invalid_argument when any parameter or response is <= 0, or when
  /// the system is degenerate (e.g. a parameter with a single value — drop
  /// it or use another model).
  [[nodiscard]] static PowerLawModel fit(const Dataset& data);

  [[nodiscard]] double predict(std::span<const double> params) const override;
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] double coefficient() const noexcept { return coefficient_; }
  [[nodiscard]] const std::vector<double>& exponents() const noexcept {
    return exponents_;
  }

 private:
  double coefficient_;
  std::vector<double> exponents_;
};

}  // namespace ftbesst::model
