#pragma once
// Internal blocked interpreter shared by the ExprProgram batch backends.
//
// The PR-2 scalar path in expr_program.cpp runs each instruction as one
// pass over an n-row strip; at calibration sizes (hundreds to thousands of
// rows, dozens of registers) every instruction therefore streams its
// operands through memory. The vector backends instead tile rows into
// kBlockRows-row blocks and run the *whole program* on one block before
// moving to the next, so the block register file (num_regs x kBlockRows
// doubles) stays L1-resident and each instruction costs only arithmetic
// plus register-file traffic. That blocking — not the lane width alone —
// is what buys the headline speedup over the already auto-vectorized
// scalar strips; see ARCHITECTURE.md "SIMD execution".
//
// The interpreter is a template over a lane Policy providing an aligned
// Pack of kWidth doubles and the protected operations of the Expr
// semantics contract (expr_ops.hpp). Policies live in the backend TUs:
// expr_simd.cpp instantiates the portable 4-wide scalar-unrolled policy at
// the baseline ISA; expr_simd_avx2.cpp (compiled with -mavx2 -mfma only
// when CMake option FTBESST_SIMD is ON) instantiates the __m256d policies.
// Keeping this header free of intrinsics is what keeps the rest of the
// build baseline-ISA-safe.
//
// Alignment/padding preconditions (asserted in debug builds by the
// dispatcher in expr_simd.cpp):
//   * every cols[d] and regfile are kSimdAlign-aligned,
//   * cols[d] holds padded_rows(rows) doubles with the pad lanes zero,
//   * regfile holds num_regs x kBlockRows doubles.
// kBlockRows is a multiple of kSimdWidth, so every block base offset into
// a column and every register strip base stay kSimdAlign-aligned and full
// Pack loads/stores never need a tail mask: pad lanes compute over zeros
// (total, non-trapping under the protected ops) and the final clamp-copy
// writes only the `rows` real values into `out`.

#include <cassert>
#include <cmath>
#include <cstddef>
#include <cstdint>

#include "model/aligned_buffer.hpp"
#include "model/expr_program.hpp"

namespace ftbesst::model::simd_detail {

/// Rows per block. 64 rows x 8 bytes = one 512-byte strip per register;
/// the register file of a maximal GP program (~48 registers at the default
/// max_nodes) is ~24 KiB — inside a 32 KiB L1d with room for the operand
/// columns of the current block.
inline constexpr std::size_t kBlockRows = 64;
static_assert(kBlockRows % kSimdWidth == 0);

/// Aligned all-zero block: the read target for out-of-range variables
/// (Src::kCol with an index beyond the dataset). Reading it at offset 0
/// for every block is fine — it is all zeros, which is exactly the
/// out-of-range contract.
alignas(kSimdAlign) inline constexpr double kZeroBlock[kBlockRows] = {};

/// Everything a backend needs for one batch evaluation, resolved by the
/// dispatcher (expr_simd.cpp) so the per-TU code stays small.
struct BatchArgs {
  const ProgInstr* code = nullptr;
  std::size_t ncode = 0;
  std::uint16_t root = 0;
  const double* const* cols = nullptr;  ///< aligned, padded columns
  std::size_t num_cols = 0;
  std::size_t rows = 0;       ///< logical row count (un-padded)
  double* regfile = nullptr;  ///< num_regs x kBlockRows, aligned
  double* out = nullptr;      ///< rows doubles, any alignment
};

// Backend entry points, one per TU-instantiated policy. eval_avx2 /
// eval_avx2_fast exist only when the AVX2 TU is compiled in
// (FTBESST_SIMD_AVX2); the dispatcher never references them otherwise.
void eval_unrolled(const BatchArgs& args);
void eval_avx2(const BatchArgs& args);
void eval_avx2_fast(const BatchArgs& args);

/// Resolved block operand: a contiguous aligned array or a literal.
struct BlockOperand {
  const double* p = nullptr;
  double lit = 0.0;
  bool is_lit = false;
};

template <class P, class F>
inline void block_loop2(double* dst, std::size_t m, const BlockOperand& a,
                        const BlockOperand& b, F f) {
  // Like the scalar binary_loop, the three branches preserve the operand
  // ORDER of the source tree (NaN payload propagation is order-sensitive).
  // Loops are hand-unrolled two packs per iteration; m is a multiple of
  // kSimdWidth, which covers exactly two packs of every current policy.
  static_assert(kSimdWidth % (2 * P::kWidth) == 0,
                "inner unroll assumes two packs per kSimdWidth");
  if (!a.is_lit && !b.is_lit) {
    const double* const x = a.p;
    const double* const y = b.p;
    for (std::size_t i = 0; i < m; i += 2 * P::kWidth) {
      P::store(dst + i, f(P::load(x + i), P::load(y + i)));
      P::store(dst + i + P::kWidth,
               f(P::load(x + i + P::kWidth), P::load(y + i + P::kWidth)));
    }
  } else if (b.is_lit) {
    const double* const x = a.p;
    const auto c = P::splat(b.lit);
    for (std::size_t i = 0; i < m; i += 2 * P::kWidth) {
      P::store(dst + i, f(P::load(x + i), c));
      P::store(dst + i + P::kWidth, f(P::load(x + i + P::kWidth), c));
    }
  } else {
    const auto c = P::splat(a.lit);
    const double* const y = b.p;
    for (std::size_t i = 0; i < m; i += 2 * P::kWidth) {
      P::store(dst + i, f(c, P::load(y + i)));
      P::store(dst + i + P::kWidth, f(c, P::load(y + i + P::kWidth)));
    }
  }
}

/// block_loop2 with the instruction's fused `post` unary composed on top,
/// nesting the identical operations in the identical order as the scalar
/// binary_dispatch.
template <class P, class F>
inline void block_binary(double* dst, std::size_t m, const BlockOperand& a,
                         const BlockOperand& b, Post post, F f) {
  using Pack = typename P::Pack;
  switch (post) {
    case Post::kNone:
      block_loop2<P>(dst, m, a, b, f);
      break;
    case Post::kLog:
      block_loop2<P>(dst, m, a, b, [f](Pack x, Pack y) {
        return P::log_protected(f(x, y));
      });
      break;
    case Post::kSqrt:
      block_loop2<P>(dst, m, a, b, [f](Pack x, Pack y) {
        return P::sqrt_protected(f(x, y));
      });
      break;
  }
}

template <class P, class F>
inline void block_unary(double* dst, std::size_t m, const BlockOperand& a,
                        Post post, F f) {
  using Pack = typename P::Pack;
  // A unary's operand is never a literal: constant operands were folded.
  assert(!a.is_lit);
  const double* const x = a.p;
  switch (post) {
    case Post::kNone:
      for (std::size_t i = 0; i < m; i += P::kWidth)
        P::store(dst + i, f(P::load(x + i)));
      break;
    case Post::kLog:
      for (std::size_t i = 0; i < m; i += P::kWidth)
        P::store(dst + i, P::log_protected(f(P::load(x + i))));
      break;
    case Post::kSqrt:
      for (std::size_t i = 0; i < m; i += P::kWidth)
        P::store(dst + i, P::sqrt_protected(f(P::load(x + i))));
      break;
  }
}

/// The blocked interpreter. One instantiation per policy, in that
/// policy's TU.
template <class P>
void eval_blocked(const BatchArgs& args) {
  const std::size_t n = args.rows;
  const std::size_t pn = padded_rows(n);
  double* const rf = args.regfile;

  const auto resolve = [&](Src src, std::uint16_t idx, double value,
                           std::size_t base) -> BlockOperand {
    switch (src) {
      case Src::kReg:
        return {rf + static_cast<std::size_t>(idx) * kBlockRows, 0.0, false};
      case Src::kCol:
        if (idx < args.num_cols) return {args.cols[idx] + base, 0.0, false};
        return {kZeroBlock, 0.0, false};
      case Src::kLit:
      default:
        return {nullptr, value, true};
    }
  };

  for (std::size_t base = 0; base < pn; base += kBlockRows) {
    // Block length: full blocks except possibly the last, always a
    // multiple of kSimdWidth (pn is padded, kBlockRows is a multiple).
    const std::size_t m = pn - base < kBlockRows ? pn - base : kBlockRows;
    for (std::size_t k = 0; k < args.ncode; ++k) {
      const ProgInstr& in = args.code[k];
      double* const dst = rf + static_cast<std::size_t>(in.dst) * kBlockRows;
      switch (in.op) {
        case Op::kConst: {  // root-leaf only
          const auto c = P::splat(in.value);
          for (std::size_t i = 0; i < m; i += P::kWidth) P::store(dst + i, c);
          break;
        }
        case Op::kVar: {  // root-leaf only: `a` is the variable index
          const BlockOperand x = resolve(Src::kCol, in.a, 0.0, base);
          for (std::size_t i = 0; i < m; i += P::kWidth)
            P::store(dst + i, P::load(x.p + i));
          break;
        }
        case Op::kAdd:
          block_binary<P>(dst, m, resolve(in.a_src, in.a, in.value, base),
                          resolve(in.b_src, in.b, in.value, base), in.post,
                          [](typename P::Pack x, typename P::Pack y) {
                            return P::add(x, y);
                          });
          break;
        case Op::kSub:
          block_binary<P>(dst, m, resolve(in.a_src, in.a, in.value, base),
                          resolve(in.b_src, in.b, in.value, base), in.post,
                          [](typename P::Pack x, typename P::Pack y) {
                            return P::sub(x, y);
                          });
          break;
        case Op::kMul:
          block_binary<P>(dst, m, resolve(in.a_src, in.a, in.value, base),
                          resolve(in.b_src, in.b, in.value, base), in.post,
                          [](typename P::Pack x, typename P::Pack y) {
                            return P::mul(x, y);
                          });
          break;
        case Op::kDiv:
          block_binary<P>(dst, m, resolve(in.a_src, in.a, in.value, base),
                          resolve(in.b_src, in.b, in.value, base), in.post,
                          [](typename P::Pack x, typename P::Pack y) {
                            return P::div_protected(x, y);
                          });
          break;
        case Op::kLog:
          block_unary<P>(dst, m, resolve(in.a_src, in.a, in.value, base),
                         in.post,
                         [](typename P::Pack x) { return P::log_protected(x); });
          break;
        case Op::kSqrt:
          block_unary<P>(dst, m, resolve(in.a_src, in.a, in.value, base),
                         in.post, [](typename P::Pack x) {
                           return P::sqrt_protected(x);
                         });
          break;
      }
    }
    // Clamp-copy the root strip: only the real rows of this block leave
    // the register file, so pad-lane values (deterministic but
    // meaningless) are never observable. Scalar on purpose — it is O(n)
    // once per batch and uses the exact std::isfinite select of the
    // scalar path.
    const double* const rootp =
        rf + static_cast<std::size_t>(args.root) * kBlockRows;
    const std::size_t valid = n - base < m ? n - base : m;
    for (std::size_t i = 0; i < valid; ++i) {
      const double v = rootp[i];
      args.out[base + i] = std::isfinite(v) ? v : 0.0;
    }
  }
}

}  // namespace ftbesst::model::simd_detail
