#pragma once
// Genetic-programming symbolic regression.
//
// BE-SST's second modeling method [Chenna et al., HPCS'19]: "the
// benchmarking data is split into training data and testing data. The
// training data is used as input to our symbolic regression tool to create
// models through an iterative process. The testing data is used to evaluate
// model accuracy at each iteration."
//
// The engine evolves protected expression trees with tournament selection,
// subtree crossover, and point/subtree mutation. Fitness is training MAPE
// after *linear scaling* (for every candidate f we analytically choose a, b
// minimizing squared error of a*f(x)+b — a standard trick that lets the GP
// concentrate on shape rather than magnitude) plus a parsimony penalty.
// The returned model is the scaled expression with the best held-out
// (test) MAPE seen across all generations.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "model/dataset.hpp"
#include "model/expr.hpp"
#include "model/expr_program.hpp"
#include "model/perf_model.hpp"

namespace ftbesst::util {
class TaskPool;
}

namespace ftbesst::model {

/// Final, immutable regressed model: max(0, a * f(x) + b).
class ExprModel final : public PerfModel {
 public:
  ExprModel(Expr expr, double scale, double offset,
            std::vector<std::string> param_names);

  [[nodiscard]] double predict(std::span<const double> params) const override;
  /// Batch prediction through the compiled program (bit-identical to the
  /// per-row predict loop; see the semantics contract in expr.hpp).
  void predict_batch(const Dataset& data,
                     std::vector<double>& out) const override;
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] const Expr& expr() const noexcept { return expr_; }
  [[nodiscard]] const ExprProgram& program() const noexcept { return program_; }
  [[nodiscard]] double scale() const noexcept { return scale_; }
  [[nodiscard]] double offset() const noexcept { return offset_; }
  [[nodiscard]] const std::vector<std::string>& param_names() const noexcept {
    return names_;
  }

 private:
  Expr expr_;
  ExprProgram program_;  // compiled once at construction
  double scale_;
  double offset_;
  std::vector<std::string> names_;
};

struct SymRegConfig {
  std::size_t population = 256;
  std::size_t generations = 120;
  std::size_t tournament = 5;
  double crossover_prob = 0.65;
  double mutation_prob = 0.30;  // remainder is reproduction
  int max_depth = 5;
  std::size_t max_nodes = 48;
  double parsimony = 0.02;      // % MAPE penalty per node
  std::size_t elitism = 2;
  std::uint64_t seed = 1;
  /// Stop early once training MAPE (%) drops below this.
  double target_train_mape = 0.5;
  /// Pool for parallel fitness evaluation; nullptr = the process-wide
  /// util::TaskPool::shared(). Results are bit-identical for every worker
  /// count: offspring are bred serially from the config seed, fitness is a
  /// pure function of the expression written to a per-individual slot, and
  /// the fitness memo is filled in deterministic serial order.
  util::TaskPool* pool = nullptr;
};

struct SymRegResult {
  std::shared_ptr<ExprModel> model;
  double train_mape = 0.0;   ///< % on the training rows
  double test_mape = 0.0;    ///< % on the held-out rows
  std::size_t generations_run = 0;
  std::vector<double> best_history;  ///< best train fitness per generation
};

class SymbolicRegressor {
 public:
  explicit SymbolicRegressor(SymRegConfig config = {});

  /// Evolve against `train`, select the champion by `test` MAPE. `test` may
  /// be empty, in which case selection falls back to training fitness.
  [[nodiscard]] SymRegResult fit(const Dataset& train,
                                 const Dataset& test) const;

 private:
  SymRegConfig config_;
};

}  // namespace ftbesst::model
