#pragma once
// SIMD-batched execution backends for ExprProgram.
//
// ExprProgram::eval_dataset dispatches to one of several interpreters for
// the same ProgInstr stream:
//
//   kScalar    the PR-2 strip interpreter in expr_program.cpp: one pass
//              over an n-row strip per instruction (reference batch path).
//   kUnrolled  portable blocked interpreter: rows are processed in
//              64-row blocks held in an L1-resident register file, each
//              opcode applied 4 lanes at a time by plain scalar code the
//              compiler may auto-vectorize at the baseline ISA.
//   kAvx2      the same blocked interpreter with __m256d lanes
//              (TU-local -mavx2 -mfma; selected only when CPUID reports
//              AVX2 and the FTBESST_SIMD CMake option compiled it in).
//   kAvx2Fast  opt-in only: kAvx2 with log1p|x| computed by the libmvec
//              vector log instead of per-lane scalar libm. NOT bit
//              identical — documented ULP bound, see ARCHITECTURE.md
//              "SIMD execution". Never selected by default.
//
// Vector semantics contract: kScalar, kUnrolled, and kAvx2 are bit
// identical to per-row Expr::eval. Protected divide and the final
// non-finite clamp vectorize with masked blends (same selected values,
// same NaN propagation as the scalar ternary); sqrt|x| uses the
// correctly-rounded hardware vector sqrt over a sign-cleared input;
// log1p|x| calls scalar libm per lane inside the vector loop. Pad lanes
// (rows beyond the dataset, see aligned_buffer.hpp) compute over zeros
// and are never copied out.
//
// Backend selection: FTBESST_SIMD environment variable
// (off|scalar|unrolled|avx2|avx2fast|auto; unset = auto = best
// bit-identical backend the host supports), overridable per-process with
// set_backend_override (tests, verify harness, CLI).

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "model/aligned_buffer.hpp"

namespace ftbesst::model {

class Dataset;
struct EvalScratch;
struct ProgInstr;

enum class EvalBackend : std::uint8_t {
  kScalar = 0,
  kUnrolled = 1,
  kAvx2 = 2,
  kAvx2Fast = 3,
};

/// Stable lower-case name ("scalar", "unrolled", "avx2", "avx2fast").
[[nodiscard]] const char* to_string(EvalBackend backend) noexcept;

/// Parse a backend name as accepted by FTBESST_SIMD ("off" and "scalar"
/// are synonyms, "fast" means "avx2fast"); nullopt for unknown names and
/// for "auto"/"" (which mean: use the default resolution).
[[nodiscard]] std::optional<EvalBackend> parse_backend(
    std::string_view name) noexcept;

/// True when the host CPU reports AVX2 *and* the AVX2 TU was compiled in
/// (CMake option FTBESST_SIMD).
[[nodiscard]] bool avx2_supported() noexcept;

/// The backend eval_dataset will use right now: the process-wide override
/// if one is set, else the FTBESST_SIMD environment resolution (cached at
/// first use). Requests for an unavailable AVX2 backend degrade to
/// kUnrolled, so the returned value is always runnable.
[[nodiscard]] EvalBackend active_backend() noexcept;

/// Process-wide backend override (atomic; nullopt restores the
/// environment resolution). Used by tests, the verify harness's
/// backend-invariance leg, and bench_ext_simd. Do not flip concurrently
/// with in-flight evaluations if you need every evaluation attributed to
/// one backend — the switch itself is race-free but mid-batch evaluations
/// keep the backend they started with.
void set_backend_override(std::optional<EvalBackend> backend) noexcept;
[[nodiscard]] std::optional<EvalBackend> backend_override() noexcept;

/// RAII backend override for tests: forces `backend` on construction,
/// restores the previous override state on destruction.
class BackendOverrideGuard {
 public:
  explicit BackendOverrideGuard(EvalBackend backend)
      : previous_(backend_override()) {
    set_backend_override(backend);
  }
  ~BackendOverrideGuard() { set_backend_override(previous_); }
  BackendOverrideGuard(const BackendOverrideGuard&) = delete;
  BackendOverrideGuard& operator=(const BackendOverrideGuard&) = delete;

 private:
  std::optional<EvalBackend> previous_;
};

namespace simd {

/// Blocked batch evaluation of a compiled program over `data` into `out`
/// (resized to data.num_rows()) using `backend` (kUnrolled/kAvx2/
/// kAvx2Fast; kScalar is handled by ExprProgram itself). Bit-identical to
/// the scalar path except under kAvx2Fast. Called by
/// ExprProgram::eval_dataset — not meant for direct use.
void eval_batch(const std::vector<ProgInstr>& code, std::uint16_t root,
                std::uint16_t num_regs, const Dataset& data,
                std::vector<double>& out, EvalScratch& scratch,
                EvalBackend backend);

/// Dispatch accounting hook shared by all backends (obs counters:
/// model.evals.<backend>, model.rows.<backend>, model.pad_rows).
void count_eval(EvalBackend backend, std::size_t rows) noexcept;

}  // namespace simd

}  // namespace ftbesst::model
