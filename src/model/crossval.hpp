#pragma once
// K-fold cross-validation for model selection.
//
// The paper's single train/test split gives a noisy accuracy estimate when
// a calibration grid has only 25 rows; k-fold rotation uses every row for
// held-out evaluation exactly once and reports the distribution of fold
// MAPEs — a sturdier basis for picking a modeling method.

#include <cstdint>

#include "model/dataset.hpp"
#include "model/fitting.hpp"
#include "util/stats.hpp"

namespace ftbesst::model {

struct CrossValReport {
  ModelMethod method = ModelMethod::kAuto;
  std::size_t folds = 0;
  util::Summary fold_mape;  ///< distribution of held-out MAPE across folds
};

/// Run k-fold cross-validation of `options.method` on `data`. Rows are
/// shuffled deterministically from options.seed and dealt round-robin into
/// `folds` folds; each fold is held out once while the remainder trains.
/// Requires folds >= 2 and num_rows >= folds.
[[nodiscard]] CrossValReport cross_validate(const Dataset& data,
                                            const FitOptions& options,
                                            std::size_t folds = 5);

/// Convenience: cross-validate several methods and return the one with the
/// lowest mean held-out MAPE.
[[nodiscard]] ModelMethod select_method_by_crossval(
    const Dataset& data, const std::vector<ModelMethod>& methods,
    const FitOptions& base_options, std::size_t folds = 5);

}  // namespace ftbesst::model
