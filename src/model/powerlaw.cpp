#include "model/powerlaw.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "model/linalg.hpp"

namespace ftbesst::model {

PowerLawModel::PowerLawModel(double coefficient,
                             std::vector<double> exponents)
    : coefficient_(coefficient), exponents_(std::move(exponents)) {
  if (coefficient_ <= 0.0)
    throw std::invalid_argument("power-law coefficient must be positive");
}

PowerLawModel PowerLawModel::fit(const Dataset& data) {
  const std::size_t n = data.num_rows();
  const std::size_t d = data.num_params();
  if (n < d + 1)
    throw std::invalid_argument("need more rows than parameters to fit");
  for (std::size_t dim = 0; dim < d; ++dim)
    if (data.unique_values(dim).size() < 2)
      throw std::invalid_argument(
          "parameter '" + data.param_names()[dim] +
          "' takes a single value; a power-law exponent for it is "
          "unidentifiable");

  // Design matrix [1, log x1, ..., log xd]; target log y.
  Matrix x(n, d + 1);
  std::vector<double> y(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const Row& row = data.row(i);
    const double response = row.mean_response();
    if (response <= 0.0)
      throw std::invalid_argument("power-law fit needs positive responses");
    x.at(i, 0) = 1.0;
    for (std::size_t j = 0; j < d; ++j) {
      if (row.params[j] <= 0.0)
        throw std::invalid_argument("power-law fit needs positive params");
      x.at(i, j + 1) = std::log(row.params[j]);
    }
    y[i] = std::log(response);
  }
  auto weights = ridge_least_squares(x, y, 1e-12);
  std::vector<double> exponents(weights.begin() + 1, weights.end());
  return PowerLawModel(std::exp(weights[0]), std::move(exponents));
}

double PowerLawModel::predict(std::span<const double> params) const {
  if (params.size() != exponents_.size())
    throw std::invalid_argument("parameter count mismatch");
  double acc = coefficient_;
  for (std::size_t j = 0; j < exponents_.size(); ++j) {
    if (params[j] <= 0.0)
      throw std::invalid_argument("power-law query needs positive params");
    acc *= std::pow(params[j], exponents_[j]);
  }
  return acc;
}

std::string PowerLawModel::describe() const {
  std::ostringstream os;
  os << "powerlaw[" << coefficient_;
  for (std::size_t j = 0; j < exponents_.size(); ++j)
    os << " * x" << j << "^" << exponents_[j];
  os << "]";
  return os.str();
}

}  // namespace ftbesst::model
