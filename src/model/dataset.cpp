#include "model/dataset.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "util/stats.hpp"

namespace ftbesst::model {

double Row::mean_response() const { return util::mean(samples); }

Dataset::Dataset(std::vector<std::string> param_names)
    : names_(std::move(param_names)) {
  if (names_.empty())
    throw std::invalid_argument("dataset needs at least one parameter");
  cols_.resize(names_.size());
}

void Dataset::add_row(std::vector<double> params,
                      std::vector<double> samples) {
  if (params.size() != names_.size())
    throw std::invalid_argument("row parameter count mismatch");
  if (samples.empty())
    throw std::invalid_argument("row needs at least one sample");
  for (std::size_t d = 0; d < params.size(); ++d)
    cols_[d].push_back(params[d]);
  rows_.push_back(Row{std::move(params), std::move(samples)});
  responses_.push_back(rows_.back().mean_response());
}

std::size_t Dataset::param_index(const std::string& name) const {
  const auto it = std::find(names_.begin(), names_.end(), name);
  if (it == names_.end())
    throw std::out_of_range("unknown parameter: " + name);
  return static_cast<std::size_t>(it - names_.begin());
}

std::pair<Dataset, Dataset> Dataset::split(double train_fraction,
                                           util::Rng& rng) const {
  train_fraction = std::clamp(train_fraction, 0.0, 1.0);
  std::vector<std::size_t> order(rows_.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  // Fisher–Yates with our deterministic RNG.
  for (std::size_t i = order.size(); i > 1; --i)
    std::swap(order[i - 1], order[rng.uniform_int(i)]);

  std::size_t n_train = static_cast<std::size_t>(
      train_fraction * static_cast<double>(rows_.size()) + 0.5);
  if (rows_.size() >= 2) {
    n_train = std::clamp<std::size_t>(n_train, 1, rows_.size() - 1);
  }
  Dataset train(names_), test(names_);
  for (std::size_t i = 0; i < order.size(); ++i) {
    const Row& r = rows_[order[i]];
    (i < n_train ? train : test).add_row(r.params, r.samples);
  }
  return {std::move(train), std::move(test)};
}

std::vector<double> Dataset::unique_values(std::size_t dim) const {
  if (dim >= names_.size()) throw std::out_of_range("bad dimension");
  std::vector<double> vals(cols_[dim].data(),
                           cols_[dim].data() + cols_[dim].size());
  std::sort(vals.begin(), vals.end());
  vals.erase(std::unique(vals.begin(), vals.end()), vals.end());
  return vals;
}

bool Dataset::is_full_grid() const {
  if (rows_.empty()) return false;
  std::size_t expected = 1;
  for (std::size_t d = 0; d < names_.size(); ++d)
    expected *= unique_values(d).size();
  if (expected != rows_.size()) return false;
  // Also require distinct parameter points.
  std::vector<std::vector<double>> pts;
  pts.reserve(rows_.size());
  for (const Row& r : rows_) pts.push_back(r.params);
  std::sort(pts.begin(), pts.end());
  return std::adjacent_find(pts.begin(), pts.end()) == pts.end();
}

}  // namespace ftbesst::model
