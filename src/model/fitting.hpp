#pragma once
// One-call model development for a kernel's calibration dataset.
//
// This implements the "Model Creation / Model Validation" boxes of the
// BE-SST workflow: split the data, fit with the requested method (or try
// several and keep the best held-out accuracy), estimate the residual noise
// for Monte-Carlo simulation, and report the validation MAPE that the
// paper's Table III tabulates.

#include <memory>
#include <string>

#include "model/dataset.hpp"
#include "model/feature_model.hpp"
#include "model/perf_model.hpp"
#include "model/symreg.hpp"
#include "model/table_model.hpp"

namespace ftbesst::model {

enum class ModelMethod {
  kSymbolicRegression,
  kFeatureRegression,
  kPowerLaw,
  kTableNearest,
  kTableMultilinear,
  kTableLogLog,
  kAuto  ///< best blended train/test MAPE of symbolic regression, feature
         ///< regression, and (when the data admits it) the power law
};

[[nodiscard]] std::string to_string(ModelMethod m);

struct FitOptions {
  ModelMethod method = ModelMethod::kAuto;
  double train_fraction = 0.8;
  std::uint64_t seed = 7;
  SymRegConfig symreg;   ///< used by kSymbolicRegression / kAuto
  double ridge_lambda = 1e-9;
};

struct FitReport {
  ModelMethod chosen = ModelMethod::kAuto;
  double train_mape = 0.0;      ///< % on training rows
  double test_mape = 0.0;       ///< % on held-out rows
  double full_mape = 0.0;       ///< % over the entire dataset (Table III)
  double residual_sigma = 0.0;  ///< log-space noise of samples vs prediction
  std::string formula;
};

struct FittedKernel {
  /// Deterministic fitted model (no noise).
  PerfModelPtr model;
  /// Same model wrapped for Monte-Carlo draws with calibrated variance.
  PerfModelPtr noisy_model;
  FitReport report;
};

/// Fit a performance model to `data` per `options`.
[[nodiscard]] FittedKernel fit_kernel_model(const Dataset& data,
                                            const FitOptions& options = {});

/// MAPE (%) of `model` against the mean responses of `data`.
[[nodiscard]] double validate_mape(const PerfModel& model,
                                   const Dataset& data);

/// Standard deviation of log(sample / prediction) over every sample of
/// every row — the multiplicative noise the machine showed around the model.
[[nodiscard]] double residual_log_sigma(const PerfModel& model,
                                        const Dataset& data);

}  // namespace ftbesst::model
