#pragma once
// Lookup-table interpolation models — BE-SST's first modeling method.
//
// "For our interpolation method of modeling, the training data is organized
// into lookup tables based on the corresponding system parameters. When a
// function from the AppBEO is called during simulation, the corresponding
// lookup table is searched for the function arguments, and one of many
// samples is selected for a runtime prediction. If the parameters ... do not
// have an existing sample ... the simulator estimates a value by ...
// interpolat[ing] between two existing data values."
//
// The table keeps every calibration sample so Monte-Carlo draws reproduce
// the measured variance at grid points; off-grid queries interpolate (or
// linearly extrapolate at the edges, which is what enables the paper's
// notional predictions beyond the benchmarked region).

#include <cstdint>
#include <span>
#include <vector>

#include "model/dataset.hpp"
#include "model/perf_model.hpp"

namespace ftbesst::model {

enum class Interpolation {
  kNearest,      ///< nearest grid point (normalized distance)
  kMultilinear,  ///< per-dimension linear interpolation/extrapolation
  kLogLog        ///< multilinear in log(param)/log(response) space — exact
                 ///< for power laws, the natural geometry of scaling data.
                 ///< Requires strictly positive parameters and responses.
};

class TableModel final : public PerfModel {
 public:
  /// Builds the lookup table. Multilinear interpolation requires the
  /// dataset to form a full rectilinear grid; kNearest accepts any layout.
  TableModel(const Dataset& data, Interpolation method);

  [[nodiscard]] double predict(std::span<const double> params) const override;
  /// Monte-Carlo draw: picks a random calibration sample from the nearest
  /// grid point, rescaled by predicted/grid-mean so off-grid queries retain
  /// the local relative variance.
  [[nodiscard]] double sample(std::span<const double> params,
                              util::Rng& rng) const override;
  [[nodiscard]] std::string describe() const override;

  [[nodiscard]] Interpolation method() const noexcept { return method_; }
  [[nodiscard]] std::size_t num_points() const noexcept {
    return points_.size();
  }

 private:
  struct Point {
    std::vector<double> params;
    std::vector<double> samples;
    double mean = 0.0;
  };

  [[nodiscard]] std::size_t nearest_index(
      std::span<const double> params) const;
  [[nodiscard]] double multilinear(std::span<const double> params) const;
  /// Recursive per-dimension interpolation over the grid.
  [[nodiscard]] double interp_rec(std::span<const double> params,
                                  std::size_t dim,
                                  std::vector<std::size_t>& index) const;
  [[nodiscard]] double grid_mean(const std::vector<std::size_t>& index) const;

  Interpolation method_;
  std::vector<std::string> names_;
  std::vector<Point> points_;
  // Grid representation (only populated for kMultilinear).
  std::vector<std::vector<double>> axes_;      // sorted unique values per dim
  std::vector<std::size_t> grid_to_point_;     // row-major grid -> point idx
  std::vector<double> scale_;                  // per-dim normalization span
};

}  // namespace ftbesst::model
