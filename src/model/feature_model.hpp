#pragma once
// Linear regression over a library of nonlinear features.
//
// This is the deterministic half of the symbolic-regression toolchain: a
// closed-form model y = sum_i w_i * phi_i(params) fitted by (relative-error
// weighted) ridge least squares. The genetic-programming engine (symreg.hpp)
// searches free-form expression space; this model both provides a strong
// baseline and seeds the GP population.

#include <functional>
#include <span>
#include <string>
#include <vector>

#include "model/dataset.hpp"
#include "model/linalg.hpp"
#include "model/perf_model.hpp"

namespace ftbesst::model {

struct Feature {
  std::string name;
  std::function<double(std::span<const double>)> fn;
};

class FeatureLibrary {
 public:
  void add(std::string name,
           std::function<double(std::span<const double>)> fn);

  /// Machine-readable construction tag for serialization; empty for
  /// hand-built libraries (which cannot be serialized).
  [[nodiscard]] const std::string& tag() const noexcept { return tag_; }

  /// Standard library for performance modeling over `param_names`:
  /// constant, per-parameter linear/quadratic/cubic terms, pairwise
  /// products, logarithms, and x*log(x) terms — the shapes that arise from
  /// compute volume, surface communication, and tree collectives.
  [[nodiscard]] static FeatureLibrary polynomial(std::size_t num_params);

  [[nodiscard]] std::size_t size() const noexcept { return features_.size(); }
  [[nodiscard]] const Feature& at(std::size_t i) const {
    return features_.at(i);
  }
  /// Evaluate every feature at a parameter point.
  [[nodiscard]] std::vector<double> evaluate(
      std::span<const double> params) const;
  /// Same, into a caller-provided buffer (resized to size()) — the batch
  /// paths call this once per row and reuse the buffer across rows.
  void evaluate_into(std::span<const double> params,
                     std::vector<double>& phi) const;

 private:
  std::vector<Feature> features_;
  std::string tag_;
};

class FeatureModel final : public PerfModel {
 public:
  FeatureModel(FeatureLibrary library, std::vector<double> weights);

  /// Fit by ridge least squares. When `relative_error` is set, rows are
  /// weighted by 1/response so the optimization approximates minimizing
  /// MAPE rather than absolute error (appropriate when responses span
  /// orders of magnitude, as timing data does). Predictions are clamped to
  /// be non-negative (a duration can never be negative).
  [[nodiscard]] static FeatureModel fit(const Dataset& data,
                                        FeatureLibrary library,
                                        double ridge_lambda = 1e-9,
                                        bool relative_error = true);

  [[nodiscard]] double predict(std::span<const double> params) const override;
  /// Row loop with a reused feature buffer (no per-row allocation).
  void predict_batch(const Dataset& data,
                     std::vector<double>& out) const override;
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] const std::vector<double>& weights() const noexcept {
    return weights_;
  }
  /// Construction tag of the underlying library (see FeatureLibrary::tag).
  [[nodiscard]] const std::string& library_tag() const noexcept {
    return library_.tag();
  }

 private:
  FeatureLibrary library_;
  std::vector<double> weights_;
};

}  // namespace ftbesst::model
