#pragma once
// Shared work-stealing task pool.
//
// DSE sweeps are nested-parallel: run_dse fans out one task per
// (scenario, parameter point) and each point's run_ensemble fans out one
// task per Monte-Carlo trial. Spawning raw threads at both levels either
// serializes the outer loop or oversubscribes the machine; instead both
// levels submit to one process-wide pool sized to the hardware.
//
// Structure: each worker owns a deque (newest-first for itself, oldest-first
// for thieves) and there is one global injection queue for external
// submitters. A thread that waits on a TaskGroup *helps*: it executes
// pending tasks — its own queue first, then the global queue, then steals —
// until the group drains. Helping is what makes nesting compose: a worker
// running a DSE-point task that blocks in run_ensemble's wait() simply
// executes that ensemble's trial tasks itself instead of idling, so the
// pool never deadlocks and never needs more threads than cores.
//
// Determinism: the pool makes no ordering promises. Callers that need
// reproducible results must derive per-task inputs (seeds) *before*
// submission and write results to per-task slots, as core::run_ensemble
// and core::run_dse do; results are then bit-identical for any worker
// count, including zero helping.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace ftbesst::util {

class TaskGroup;

class TaskPool {
 public:
  /// 0 workers = FTBESST_THREADS env var if set, else hardware concurrency
  /// (always at least one worker thread).
  explicit TaskPool(unsigned workers = 0);
  ~TaskPool();
  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  /// The process-wide pool every nested-parallel caller shares.
  [[nodiscard]] static TaskPool& shared();

  [[nodiscard]] unsigned worker_count() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  /// Execute one pending task on the calling thread, if any is available.
  /// Returns false when every queue is empty. Public so that ad-hoc
  /// helpers (benchmarks, schedulers) can donate cycles.
  bool try_run_one();

 private:
  friend class TaskGroup;

  struct Task {
    std::function<void()> fn;
    TaskGroup* group = nullptr;
  };
  struct Worker {
    std::mutex mutex;
    std::deque<Task> deque;
  };

  void submit(Task task);
  bool try_pop(int self, Task& out);
  static void run_task(Task& task) noexcept;
  void worker_loop(unsigned index);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;
  std::mutex mutex_;  // guards global_, stop_, and the sleep protocol
  std::condition_variable wake_;
  std::deque<Task> global_;
  std::atomic<std::size_t> queued_{0};  // tasks pushed but not yet popped
  bool stop_ = false;
};

/// A set of tasks whose completion can be awaited. wait() helps execute
/// pool work while blocked, so groups nest freely (tasks may create and
/// wait on their own groups). The first exception thrown by a task is
/// captured and rethrown from wait(); remaining tasks still run.
class TaskGroup {
 public:
  explicit TaskGroup(TaskPool& pool = TaskPool::shared()) : pool_(&pool) {}
  ~TaskGroup() { join_quietly(); }
  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Submit a task tracked by this group.
  void run(std::function<void()> fn);

  /// Block until every submitted task has finished, executing pool work on
  /// this thread while waiting. Rethrows the first task exception.
  void wait();

 private:
  friend class TaskPool;
  void finish_one(std::exception_ptr error) noexcept;
  void join_quietly() noexcept;

  TaskPool* pool_;
  std::atomic<std::size_t> outstanding_{0};
  std::mutex mutex_;  // guards error_ and the completion wait
  std::condition_variable done_;
  std::exception_ptr error_;
};

/// Dynamically-claimed parallel loop: body(0..n-1), each index exactly once,
/// claimed by an atomic counter so uneven iterations never idle a worker.
/// The calling thread participates. Safe to call from inside pool tasks.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                  TaskPool& pool = TaskPool::shared());

}  // namespace ftbesst::util
