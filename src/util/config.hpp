#pragma once
// Minimal INI-style configuration reader for experiment descriptions:
//
//   # comment
//   [experiment]
//   app = lulesh
//   epr = 15
//   [plan]
//   L1 = 40
//
// Sections of key=value pairs; '#' and ';' start comments; whitespace is
// trimmed. Duplicate keys within a section keep the last value. Used by
// `ftbesst run-experiment` so a DSE study is a reviewable text artifact.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace ftbesst::util {

class Config {
 public:
  /// Parse from text. Throws std::invalid_argument with a line number on
  /// malformed input (key outside a section, missing '=', bad section).
  [[nodiscard]] static Config parse(const std::string& text);

  [[nodiscard]] bool has_section(const std::string& section) const noexcept;
  [[nodiscard]] bool has(const std::string& section,
                         const std::string& key) const noexcept;
  [[nodiscard]] std::vector<std::string> sections() const;
  /// Keys of a section in file order (empty if the section is absent).
  [[nodiscard]] std::vector<std::string> keys(
      const std::string& section) const;

  [[nodiscard]] std::optional<std::string> get(const std::string& section,
                                               const std::string& key) const;
  [[nodiscard]] std::string get_string(const std::string& section,
                                       const std::string& key,
                                       const std::string& fallback) const;
  /// Typed getters; throw std::invalid_argument on unparseable values.
  [[nodiscard]] std::int64_t get_int(const std::string& section,
                                     const std::string& key,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& section,
                                  const std::string& key,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& section,
                              const std::string& key, bool fallback) const;

 private:
  struct Section {
    std::vector<std::string> order;
    std::map<std::string, std::string> values;
  };
  std::vector<std::string> section_order_;
  std::map<std::string, Section> sections_;
};

}  // namespace ftbesst::util
