#pragma once
// Text-table and CSV emission. Every bench binary reproduces a paper table
// or figure by printing rows; this is the single formatting path so all
// outputs look alike and are machine-parsable.

#include <ostream>
#include <string>
#include <vector>

namespace ftbesst::util {

/// A column-aligned text table with an optional title, printable to any
/// ostream and exportable as CSV.
class TextTable {
 public:
  explicit TextTable(std::string title = {}) : title_(std::move(title)) {}

  void set_header(std::vector<std::string> header);
  void add_row(std::vector<std::string> row);

  /// Convenience: format doubles with the given precision.
  static std::string fmt(double v, int precision = 4);
  /// Format as a percentage string, e.g. "16.68%".
  static std::string pct(double v, int precision = 2);

  void print(std::ostream& os) const;
  void write_csv(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Write a simple (x, series...) dataset as CSV — the format used to dump
/// figure data (Figs. 1, 5-8 of the paper).
class SeriesCsv {
 public:
  explicit SeriesCsv(std::vector<std::string> column_names)
      : names_(std::move(column_names)) {}
  void add_row(const std::vector<double>& row);
  void write(std::ostream& os) const;

 private:
  std::vector<std::string> names_;
  std::vector<std::vector<double>> rows_;
};

}  // namespace ftbesst::util
