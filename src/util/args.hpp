#pragma once
// Tiny command-line argument parser for the ftbesst tool binaries:
// `--flag value` and `--flag=value` options plus positional arguments.

#include <cstdint>
#include <initializer_list>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace ftbesst::util {

class ArgParser {
 public:
  /// Parses argv (argv[0] skipped). Throws std::invalid_argument on a
  /// `--flag` with no value at the end of the line.
  ArgParser(int argc, const char* const* argv);

  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }
  [[nodiscard]] bool has(const std::string& flag) const noexcept;

  /// Typed getters; the non-optional forms return `fallback` when absent
  /// and throw std::invalid_argument on unparseable values.
  [[nodiscard]] std::optional<std::string> get(const std::string& flag) const;
  [[nodiscard]] std::string get_string(const std::string& flag,
                                       const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& flag,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& flag,
                                  double fallback) const;

  /// Reject any parsed flag outside `valid`: throws std::invalid_argument
  /// naming the offending flag and listing every valid one, with a "did
  /// you mean --X?" hint when a valid flag is within edit distance 2.
  /// Commands call this after construction so a typo like --trails fails
  /// loudly instead of silently falling back to a default.
  void expect_known(std::initializer_list<std::string_view> valid) const;

  /// Split a comma-separated value list ("a,b,c").
  [[nodiscard]] static std::vector<std::string> split_list(
      const std::string& value);

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace ftbesst::util
