#include "util/task_pool.hpp"

#include <chrono>
#include <cstdlib>
#include <string>

#include "obs/obs.hpp"

namespace ftbesst::util {

namespace {
// Which pool (if any) the current thread is a worker of, and its index.
thread_local TaskPool* t_pool = nullptr;
thread_local int t_worker = -1;

// Pool instrumentation.  Handles are registered once (cold path); every use
// below is a relaxed-load-and-branch when obs is disabled.  pool.busy_ns is
// accumulated per worker wake-cycle, not per task, so the enabled-path cost
// stays off the per-task critical path; helping threads (TaskGroup::wait)
// contribute to pool.tasks but not to pool.busy_ns, which measures worker
// occupancy only.
struct PoolMetrics {
  obs::Counter tasks = obs::counter("pool.tasks");
  obs::Counter steals = obs::counter("pool.steals");
  obs::Counter busy_ns = obs::counter("pool.busy_ns");
  obs::Counter wakeups = obs::counter("pool.wakeups");
  obs::Gauge queue_high_water = obs::gauge("pool.queue_high_water");
};

PoolMetrics& pool_metrics() {
  static PoolMetrics m;
  return m;
}

unsigned default_worker_count() {
  if (const char* env = std::getenv("FTBESST_THREADS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) return static_cast<unsigned>(parsed);
  }
  return std::thread::hardware_concurrency();
}
}  // namespace

TaskPool::TaskPool(unsigned workers) {
  // Force the obs registries (function-local statics) into existence before
  // any worker thread is spawned: worker thread-local shards detach from the
  // registries at thread exit, and for the shared() pool that happens during
  // static destruction — construction order here guarantees the registries
  // are torn down after the pool has joined its workers.
  obs::touch();
  pool_metrics();
  if (workers == 0) workers = default_worker_count();
  workers = std::max(1u, workers);
  workers_.reserve(workers);
  for (unsigned w = 0; w < workers; ++w)
    workers_.push_back(std::make_unique<Worker>());
  threads_.reserve(workers);
  for (unsigned w = 0; w < workers; ++w)
    threads_.emplace_back([this, w] { worker_loop(w); });
}

TaskPool::~TaskPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (auto& t : threads_) t.join();
}

TaskPool& TaskPool::shared() {
  static TaskPool pool;
  return pool;
}

void TaskPool::submit(Task task) {
  if (t_pool == this) {
    // Worker submitting to its own pool: push onto its deque. The owner
    // pops newest-first (locality); thieves steal oldest-first.
    Worker& mine = *workers_[static_cast<std::size_t>(t_worker)];
    std::lock_guard<std::mutex> lock(mine.mutex);
    mine.deque.push_back(std::move(task));
  } else {
    std::lock_guard<std::mutex> lock(mutex_);
    global_.push_back(std::move(task));
  }
  const std::size_t depth = queued_.fetch_add(1, std::memory_order_release) + 1;
  pool_metrics().queue_high_water.max(static_cast<double>(depth));
  // Empty critical section: pairs with the sleep predicate so a worker
  // between its predicate check and its sleep cannot miss this notify.
  { std::lock_guard<std::mutex> lock(mutex_); }
  wake_.notify_one();
}

bool TaskPool::try_pop(int self, Task& out) {
  const std::size_t n = workers_.size();
  if (self >= 0) {
    Worker& mine = *workers_[static_cast<std::size_t>(self)];
    std::lock_guard<std::mutex> lock(mine.mutex);
    if (!mine.deque.empty()) {
      out = std::move(mine.deque.back());
      mine.deque.pop_back();
      queued_.fetch_sub(1, std::memory_order_acq_rel);
      return true;
    }
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!global_.empty()) {
      out = std::move(global_.front());
      global_.pop_front();
      queued_.fetch_sub(1, std::memory_order_acq_rel);
      return true;
    }
  }
  for (std::size_t i = 1; i <= n; ++i) {
    const std::size_t victim = (static_cast<std::size_t>(self < 0 ? 0 : self) + i) % n;
    if (static_cast<int>(victim) == self) continue;
    Worker& other = *workers_[victim];
    std::lock_guard<std::mutex> lock(other.mutex);
    if (!other.deque.empty()) {
      out = std::move(other.deque.front());
      other.deque.pop_front();
      queued_.fetch_sub(1, std::memory_order_acq_rel);
      pool_metrics().steals.add();
      return true;
    }
  }
  return false;
}

void TaskPool::run_task(Task& task) noexcept {
  pool_metrics().tasks.add();
  std::exception_ptr error;
  try {
    task.fn();
  } catch (...) {
    error = std::current_exception();
  }
  task.fn = nullptr;  // release captures before signalling completion
  if (task.group != nullptr) task.group->finish_one(error);
}

bool TaskPool::try_run_one() {
  Task task;
  if (!try_pop(t_pool == this ? t_worker : -1, task)) return false;
  run_task(task);
  return true;
}

void TaskPool::worker_loop(unsigned index) {
  t_pool = this;
  t_worker = static_cast<int>(index);
  for (;;) {
    Task task;
    if (obs::enabled()) {
      // Clock the whole drain cycle (one wake), not each task: busy time is
      // what utilization needs, and per-cycle clocking keeps the enabled
      // cost amortized over however many tasks the cycle runs.
      const std::uint64_t t0 = obs::now_ns();
      std::uint64_t ran = 0;
      while (try_pop(static_cast<int>(index), task)) {
        run_task(task);
        ++ran;
      }
      if (ran > 0) {
        PoolMetrics& m = pool_metrics();
        m.busy_ns.add(obs::now_ns() - t0);
        m.wakeups.add();
      }
    } else {
      while (try_pop(static_cast<int>(index), task)) run_task(task);
    }
    std::unique_lock<std::mutex> lock(mutex_);
    wake_.wait(lock, [this] {
      return stop_ || queued_.load(std::memory_order_acquire) > 0;
    });
    if (stop_) return;
  }
}

void TaskGroup::run(std::function<void()> fn) {
  outstanding_.fetch_add(1, std::memory_order_acq_rel);
  pool_->submit(TaskPool::Task{std::move(fn), this});
}

void TaskGroup::finish_one(std::exception_ptr error) noexcept {
  // The decrement and the notify both happen under the mutex, and the
  // waiter re-acquires the mutex after observing zero: once this critical
  // section ends, no thread touches the group again, so the waiter may
  // safely destroy it. (Notifying outside the lock would let a timed-out
  // waiter observe zero, return, and destroy the condvar mid-notify.)
  std::lock_guard<std::mutex> lock(mutex_);
  if (error && !error_) error_ = error;
  if (outstanding_.fetch_sub(1, std::memory_order_acq_rel) == 1)
    done_.notify_all();
}

void TaskGroup::wait() {
  join_quietly();
  std::lock_guard<std::mutex> lock(mutex_);
  if (error_) {
    std::exception_ptr error = error_;
    error_ = nullptr;
    std::rethrow_exception(error);
  }
}

void TaskGroup::join_quietly() noexcept {
  while (outstanding_.load(std::memory_order_acquire) > 0) {
    if (pool_->try_run_one()) continue;
    // Nothing to help with: our remaining tasks are running on other
    // threads. The timeout is a belt-and-braces fallback so a task
    // submitted after our last poll can never strand us.
    std::unique_lock<std::mutex> lock(mutex_);
    done_.wait_for(lock, std::chrono::milliseconds(10), [this] {
      return outstanding_.load(std::memory_order_acquire) == 0;
    });
  }
  // Serialize with the final finish_one: it decrements and notifies under
  // this mutex, so once we pass here it has fully let go of the group.
  std::lock_guard<std::mutex> lock(mutex_);
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                  TaskPool& pool) {
  if (n == 0) return;
  if (n == 1) {
    body(0);
    return;
  }
  std::atomic<std::size_t> next{0};
  auto claim_loop = [&body, &next, n] {
    for (std::size_t i; (i = next.fetch_add(1, std::memory_order_relaxed)) < n;)
      body(i);
  };
  const std::size_t helpers =
      std::min<std::size_t>(pool.worker_count(), n) - 1;
  TaskGroup group(pool);
  for (std::size_t w = 0; w < helpers; ++w) group.run(claim_loop);
  claim_loop();  // the calling thread participates
  group.wait();
}

}  // namespace ftbesst::util
