#include "util/task_pool.hpp"

#include <chrono>
#include <cstdlib>
#include <string>

namespace ftbesst::util {

namespace {
// Which pool (if any) the current thread is a worker of, and its index.
thread_local TaskPool* t_pool = nullptr;
thread_local int t_worker = -1;

unsigned default_worker_count() {
  if (const char* env = std::getenv("FTBESST_THREADS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) return static_cast<unsigned>(parsed);
  }
  return std::thread::hardware_concurrency();
}
}  // namespace

TaskPool::TaskPool(unsigned workers) {
  if (workers == 0) workers = default_worker_count();
  workers = std::max(1u, workers);
  workers_.reserve(workers);
  for (unsigned w = 0; w < workers; ++w)
    workers_.push_back(std::make_unique<Worker>());
  threads_.reserve(workers);
  for (unsigned w = 0; w < workers; ++w)
    threads_.emplace_back([this, w] { worker_loop(w); });
}

TaskPool::~TaskPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (auto& t : threads_) t.join();
}

TaskPool& TaskPool::shared() {
  static TaskPool pool;
  return pool;
}

void TaskPool::submit(Task task) {
  if (t_pool == this) {
    // Worker submitting to its own pool: push onto its deque. The owner
    // pops newest-first (locality); thieves steal oldest-first.
    Worker& mine = *workers_[static_cast<std::size_t>(t_worker)];
    std::lock_guard<std::mutex> lock(mine.mutex);
    mine.deque.push_back(std::move(task));
  } else {
    std::lock_guard<std::mutex> lock(mutex_);
    global_.push_back(std::move(task));
  }
  queued_.fetch_add(1, std::memory_order_release);
  // Empty critical section: pairs with the sleep predicate so a worker
  // between its predicate check and its sleep cannot miss this notify.
  { std::lock_guard<std::mutex> lock(mutex_); }
  wake_.notify_one();
}

bool TaskPool::try_pop(int self, Task& out) {
  const std::size_t n = workers_.size();
  if (self >= 0) {
    Worker& mine = *workers_[static_cast<std::size_t>(self)];
    std::lock_guard<std::mutex> lock(mine.mutex);
    if (!mine.deque.empty()) {
      out = std::move(mine.deque.back());
      mine.deque.pop_back();
      queued_.fetch_sub(1, std::memory_order_acq_rel);
      return true;
    }
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!global_.empty()) {
      out = std::move(global_.front());
      global_.pop_front();
      queued_.fetch_sub(1, std::memory_order_acq_rel);
      return true;
    }
  }
  for (std::size_t i = 1; i <= n; ++i) {
    const std::size_t victim = (static_cast<std::size_t>(self < 0 ? 0 : self) + i) % n;
    if (static_cast<int>(victim) == self) continue;
    Worker& other = *workers_[victim];
    std::lock_guard<std::mutex> lock(other.mutex);
    if (!other.deque.empty()) {
      out = std::move(other.deque.front());
      other.deque.pop_front();
      queued_.fetch_sub(1, std::memory_order_acq_rel);
      return true;
    }
  }
  return false;
}

void TaskPool::run_task(Task& task) noexcept {
  std::exception_ptr error;
  try {
    task.fn();
  } catch (...) {
    error = std::current_exception();
  }
  task.fn = nullptr;  // release captures before signalling completion
  if (task.group != nullptr) task.group->finish_one(error);
}

bool TaskPool::try_run_one() {
  Task task;
  if (!try_pop(t_pool == this ? t_worker : -1, task)) return false;
  run_task(task);
  return true;
}

void TaskPool::worker_loop(unsigned index) {
  t_pool = this;
  t_worker = static_cast<int>(index);
  for (;;) {
    Task task;
    while (try_pop(static_cast<int>(index), task)) run_task(task);
    std::unique_lock<std::mutex> lock(mutex_);
    wake_.wait(lock, [this] {
      return stop_ || queued_.load(std::memory_order_acquire) > 0;
    });
    if (stop_) return;
  }
}

void TaskGroup::run(std::function<void()> fn) {
  outstanding_.fetch_add(1, std::memory_order_acq_rel);
  pool_->submit(TaskPool::Task{std::move(fn), this});
}

void TaskGroup::finish_one(std::exception_ptr error) noexcept {
  // The decrement and the notify both happen under the mutex, and the
  // waiter re-acquires the mutex after observing zero: once this critical
  // section ends, no thread touches the group again, so the waiter may
  // safely destroy it. (Notifying outside the lock would let a timed-out
  // waiter observe zero, return, and destroy the condvar mid-notify.)
  std::lock_guard<std::mutex> lock(mutex_);
  if (error && !error_) error_ = error;
  if (outstanding_.fetch_sub(1, std::memory_order_acq_rel) == 1)
    done_.notify_all();
}

void TaskGroup::wait() {
  join_quietly();
  std::lock_guard<std::mutex> lock(mutex_);
  if (error_) {
    std::exception_ptr error = error_;
    error_ = nullptr;
    std::rethrow_exception(error);
  }
}

void TaskGroup::join_quietly() noexcept {
  while (outstanding_.load(std::memory_order_acquire) > 0) {
    if (pool_->try_run_one()) continue;
    // Nothing to help with: our remaining tasks are running on other
    // threads. The timeout is a belt-and-braces fallback so a task
    // submitted after our last poll can never strand us.
    std::unique_lock<std::mutex> lock(mutex_);
    done_.wait_for(lock, std::chrono::milliseconds(10), [this] {
      return outstanding_.load(std::memory_order_acquire) == 0;
    });
  }
  // Serialize with the final finish_one: it decrements and notifies under
  // this mutex, so once we pass here it has fully let go of the group.
  std::lock_guard<std::mutex> lock(mutex_);
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                  TaskPool& pool) {
  if (n == 0) return;
  if (n == 1) {
    body(0);
    return;
  }
  std::atomic<std::size_t> next{0};
  auto claim_loop = [&body, &next, n] {
    for (std::size_t i; (i = next.fetch_add(1, std::memory_order_relaxed)) < n;)
      body(i);
  };
  const std::size_t helpers =
      std::min<std::size_t>(pool.worker_count(), n) - 1;
  TaskGroup group(pool);
  for (std::size_t w = 0; w < helpers; ++w) group.run(claim_loop);
  claim_loop();  // the calling thread participates
  group.wait();
}

}  // namespace ftbesst::util
