#include "util/config.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace ftbesst::util {

namespace {
std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return {};
  const auto end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

std::string strip_comment(const std::string& line) {
  const auto pos = line.find_first_of("#;");
  return pos == std::string::npos ? line : line.substr(0, pos);
}
}  // namespace

Config Config::parse(const std::string& text) {
  Config cfg;
  std::istringstream is(text);
  std::string line;
  std::string current;
  int lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    const std::string body = trim(strip_comment(line));
    if (body.empty()) continue;
    if (body.front() == '[') {
      if (body.back() != ']' || body.size() < 3)
        throw std::invalid_argument("config line " + std::to_string(lineno) +
                                    ": malformed section header");
      current = trim(body.substr(1, body.size() - 2));
      if (current.empty())
        throw std::invalid_argument("config line " + std::to_string(lineno) +
                                    ": empty section name");
      if (!cfg.sections_.count(current))
        cfg.section_order_.push_back(current);
      cfg.sections_[current];  // materialize
      continue;
    }
    const auto eq = body.find('=');
    if (eq == std::string::npos)
      throw std::invalid_argument("config line " + std::to_string(lineno) +
                                  ": expected key = value");
    if (current.empty())
      throw std::invalid_argument("config line " + std::to_string(lineno) +
                                  ": key outside any [section]");
    const std::string key = trim(body.substr(0, eq));
    const std::string value = trim(body.substr(eq + 1));
    if (key.empty())
      throw std::invalid_argument("config line " + std::to_string(lineno) +
                                  ": empty key");
    Section& section = cfg.sections_[current];
    if (!section.values.count(key)) section.order.push_back(key);
    section.values[key] = value;
  }
  return cfg;
}

bool Config::has_section(const std::string& section) const noexcept {
  return sections_.count(section) > 0;
}

bool Config::has(const std::string& section,
                 const std::string& key) const noexcept {
  const auto it = sections_.find(section);
  return it != sections_.end() && it->second.values.count(key) > 0;
}

std::vector<std::string> Config::sections() const { return section_order_; }

std::vector<std::string> Config::keys(const std::string& section) const {
  const auto it = sections_.find(section);
  return it == sections_.end() ? std::vector<std::string>{}
                               : it->second.order;
}

std::optional<std::string> Config::get(const std::string& section,
                                       const std::string& key) const {
  const auto it = sections_.find(section);
  if (it == sections_.end()) return std::nullopt;
  const auto kit = it->second.values.find(key);
  if (kit == it->second.values.end()) return std::nullopt;
  return kit->second;
}

std::string Config::get_string(const std::string& section,
                               const std::string& key,
                               const std::string& fallback) const {
  return get(section, key).value_or(fallback);
}

std::int64_t Config::get_int(const std::string& section,
                             const std::string& key,
                             std::int64_t fallback) const {
  const auto v = get(section, key);
  if (!v) return fallback;
  try {
    return std::stoll(*v);
  } catch (const std::exception&) {
    throw std::invalid_argument("[" + section + "] " + key +
                                " expects an integer, got '" + *v + "'");
  }
}

double Config::get_double(const std::string& section, const std::string& key,
                          double fallback) const {
  const auto v = get(section, key);
  if (!v) return fallback;
  try {
    return std::stod(*v);
  } catch (const std::exception&) {
    throw std::invalid_argument("[" + section + "] " + key +
                                " expects a number, got '" + *v + "'");
  }
}

bool Config::get_bool(const std::string& section, const std::string& key,
                      bool fallback) const {
  const auto v = get(section, key);
  if (!v) return fallback;
  std::string lower = *v;
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (lower == "true" || lower == "1" || lower == "yes" || lower == "on")
    return true;
  if (lower == "false" || lower == "0" || lower == "no" || lower == "off")
    return false;
  throw std::invalid_argument("[" + section + "] " + key +
                              " expects a boolean, got '" + *v + "'");
}

}  // namespace ftbesst::util
