#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <iostream>
#include <mutex>

#include "obs/clock.hpp"

namespace ftbesst::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }
LogLevel log_level() noexcept { return g_level.load(); }

void log_message(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  // The whole line is formatted up front and emitted with one write under
  // the mutex, so concurrent TaskPool workers can never shear a line
  // mid-way.  The timestamp is the obs monotonic clock (seconds since the
  // process epoch) — the same timebase span traces use, so log lines and
  // trace events line up.
  char header[64];
  const int header_len = std::snprintf(
      header, sizeof(header), "[ftbesst:%s +%.6fs] ", level_name(level),
      static_cast<double>(obs::now_ns()) * 1e-9);
  std::string line;
  line.reserve(static_cast<std::size_t>(header_len) + msg.size() + 1);
  line.append(header, static_cast<std::size_t>(header_len));
  line += msg;
  line += '\n';
  std::lock_guard<std::mutex> lock(g_mutex);
  // Through std::cerr (not fwrite) so rdbuf redirection keeps working for
  // tests and embedders; cerr is unit-buffered, so this flushes too.
  std::cerr.write(line.data(), static_cast<std::streamsize>(line.size()));
}

}  // namespace ftbesst::util
