#include "util/rng.hpp"

#include <cmath>

namespace ftbesst::util {

namespace {
constexpr double kTwoPi = 6.283185307179586476925286766559;

inline std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) noexcept {
  // Expand the seed so that even seed==0 yields a valid (nonzero) state.
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

Rng Rng::split(std::uint64_t stream_index) const noexcept {
  std::uint64_t sm = s_[0] ^ (s_[3] + 0x9e3779b97f4a7c15ULL * (stream_index + 1));
  return Rng(splitmix64(sm));
}

double Rng::uniform() noexcept {
  // 53 random mantissa bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_int(std::uint64_t n) noexcept {
  // Lemire's multiply-shift rejection method (unbiased).
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (0 - n) % n;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::normal() noexcept {
  // Box–Muller; guard against log(0).
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(kTwoPi * u2);
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

double Rng::lognormal_median(double median, double sigma) noexcept {
  return median * std::exp(sigma * normal());
}

double Rng::exponential(double rate) noexcept {
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -std::log(u) / rate;
}

std::uint64_t Rng::poisson(double mean) noexcept {
  if (mean <= 0.0) return 0;
  if (mean < 64.0) {
    const double limit = std::exp(-mean);
    std::uint64_t k = 0;
    double p = uniform();
    while (p > limit) {
      ++k;
      p *= uniform();
    }
    return k;
  }
  const double draw = normal(mean, std::sqrt(mean));
  return draw <= 0.0 ? 0 : static_cast<std::uint64_t>(draw + 0.5);
}

}  // namespace ftbesst::util
