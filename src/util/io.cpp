#include "util/io.hpp"

#include <unistd.h>

#include <cerrno>
#include <system_error>

namespace ftbesst::util {

std::size_t read_full(int fd, void* buf, std::size_t n) {
  char* p = static_cast<char*>(buf);
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, p + got, n - got);
    if (r > 0) {
      got += static_cast<std::size_t>(r);
      continue;
    }
    if (r == 0) break;  // EOF
    if (errno == EINTR) continue;
    throw std::system_error(errno, std::generic_category(), "read");
  }
  return got;
}

void write_full(int fd, const void* buf, std::size_t n) {
  const char* p = static_cast<const char*>(buf);
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t w = ::write(fd, p + sent, n - sent);
    if (w > 0) {
      sent += static_cast<std::size_t>(w);
      continue;
    }
    // write() returning 0 for n > 0 should not happen on pipes/sockets;
    // treat it as an error rather than spinning.
    if (w == 0) throw std::system_error(EIO, std::generic_category(), "write");
    if (errno == EINTR) continue;
    throw std::system_error(errno, std::generic_category(), "write");
  }
}

}  // namespace ftbesst::util
