#pragma once
// Descriptive statistics and the error metrics used throughout the BE-SST
// validation workflow (MAPE is the paper's headline accuracy metric).

#include <cstddef>
#include <span>
#include <vector>

namespace ftbesst::util {

/// Summary of a sample of real values.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  ///< sample standard deviation (n-1 denominator)
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
};

/// Compute a full summary. Empty input yields a zeroed Summary.  The median
/// follows quantile()'s NaN semantics (NaNs dropped); mean/stddev/min/max
/// are raw and will propagate NaNs, as plain arithmetic does.
[[nodiscard]] Summary summarize(std::span<const double> xs);

[[nodiscard]] double mean(std::span<const double> xs);
[[nodiscard]] double sample_stddev(std::span<const double> xs);

/// Linear-interpolated quantile, q in [0,1]. Input need not be sorted.
/// Chosen semantics for degenerate inputs (obs histograms feed this, and a
/// NaN would otherwise poison the sort's strict-weak ordering):
///   - NaN elements carry no rank information and are dropped before
///     ranking; quantiles are computed over the finite-ordered remainder.
///   - Empty input, or input that is all-NaN, returns 0.0.
///   - A single (surviving) element is every quantile of itself.
[[nodiscard]] double quantile(std::span<const double> xs, double q);

/// Mean Absolute Percentage Error, in percent:
///   100/n * sum |pred - actual| / |actual|
/// Rows with actual == 0 are skipped (and do not count toward n).
[[nodiscard]] double mape_percent(std::span<const double> actual,
                                  std::span<const double> predicted);

/// Root mean square error.
[[nodiscard]] double rmse(std::span<const double> actual,
                          std::span<const double> predicted);

/// Coefficient of determination R^2 (1 - SS_res/SS_tot). Returns 0 when the
/// actuals have zero variance.
[[nodiscard]] double r_squared(std::span<const double> actual,
                               std::span<const double> predicted);

/// Pearson correlation coefficient; 0 when either side has zero variance.
[[nodiscard]] double pearson(std::span<const double> xs,
                             std::span<const double> ys);

/// Streaming mean/variance accumulator (Welford). Numerically stable; used
/// by the Monte-Carlo driver where traces are too long to retain.
class RunningStats {
 public:
  void add(double x) noexcept;
  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double variance() const noexcept;  ///< sample variance
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace ftbesst::util
