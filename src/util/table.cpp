#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace ftbesst::util {

void TextTable::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::add_row(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string TextTable::fmt(double v, int precision) {
  std::ostringstream os;
  os << std::setprecision(precision) << std::fixed << v;
  return os.str();
}

std::string TextTable::pct(double v, int precision) {
  std::ostringstream os;
  os << std::setprecision(precision) << std::fixed << v << "%";
  return os.str();
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size(), 0);
  auto widen = [&](const std::vector<std::string>& row) {
    if (row.size() > widths.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i)
      widths[i] = std::max(widths[i], row[i].size());
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  auto print_row = [&](const std::vector<std::string>& row) {
    os << "| ";
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string{};
      os << std::left << std::setw(static_cast<int>(widths[i])) << cell
         << " | ";
    }
    os << '\n';
  };

  if (!title_.empty()) os << "== " << title_ << " ==\n";
  std::size_t total = 4;
  for (std::size_t w : widths) total += w + 3;
  const std::string rule(total > 4 ? total - 4 : 0, '-');
  if (!header_.empty()) {
    print_row(header_);
    os << "|" << rule << "|\n";
  }
  for (const auto& row : rows_) print_row(row);
}

void TextTable::write_csv(std::ostream& os) const {
  auto write_row = [&os](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) os << ',';
      os << row[i];
    }
    os << '\n';
  };
  if (!header_.empty()) write_row(header_);
  for (const auto& row : rows_) write_row(row);
}

void SeriesCsv::add_row(const std::vector<double>& row) { rows_.push_back(row); }

void SeriesCsv::write(std::ostream& os) const {
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (i) os << ',';
    os << names_[i];
  }
  os << '\n';
  os << std::setprecision(9);
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) os << ',';
      os << row[i];
    }
    os << '\n';
  }
}

}  // namespace ftbesst::util
