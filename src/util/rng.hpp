#pragma once
// Deterministic, splittable random number generation for simulation.
//
// BE-SST runs Monte-Carlo ensembles of full-system simulations; every draw
// in the simulator must be reproducible from a single seed, and independent
// streams (one per simulated rank, one per kernel model, ...) must be cheap
// to derive without correlation. xoshiro256** satisfies both needs and is
// much faster than std::mt19937_64.

#include <array>
#include <cstdint>

namespace ftbesst::util {

/// SplitMix64 — used to expand seeds into full xoshiro state and to derive
/// child-stream seeds.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// xoshiro256** generator (Blackman & Vigna). Satisfies the C++ named
/// requirement UniformRandomBitGenerator, so it composes with <random>
/// distributions when needed, but provides its own faster distribution
/// helpers for the hot paths.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  result_type operator()() noexcept;

  /// Derive an independent child stream. Children of distinct indices from
  /// the same parent are decorrelated (seed mixed through SplitMix64).
  [[nodiscard]] Rng split(std::uint64_t stream_index) const noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept;
  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept;
  /// Uniform integer in [0, n). Requires n > 0.
  [[nodiscard]] std::uint64_t uniform_int(std::uint64_t n) noexcept;
  /// Standard normal via Box–Muller (cached spare discarded for determinism
  /// simplicity: both values are computed, one returned).
  [[nodiscard]] double normal() noexcept;
  /// Normal with given mean and standard deviation.
  [[nodiscard]] double normal(double mean, double stddev) noexcept;
  /// Log-normal such that the *median* of the distribution is `median` and
  /// log-space standard deviation is `sigma` (the natural way to model
  /// multiplicative timing noise).
  [[nodiscard]] double lognormal_median(double median, double sigma) noexcept;
  /// Exponential with the given rate (events per unit time). rate > 0.
  [[nodiscard]] double exponential(double rate) noexcept;
  /// Poisson-distributed count with the given mean (Knuth for small means,
  /// normal approximation above 64).
  [[nodiscard]] std::uint64_t poisson(double mean) noexcept;

 private:
  std::array<std::uint64_t, 4> s_{};
};

}  // namespace ftbesst::util
