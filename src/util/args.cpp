#include "util/args.hpp"

#include <algorithm>
#include <stdexcept>

namespace ftbesst::util {

ArgParser::ArgParser(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      flags_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    if (i + 1 >= argc)
      throw std::invalid_argument("flag --" + body + " needs a value");
    flags_[body] = argv[++i];
  }
}

bool ArgParser::has(const std::string& flag) const noexcept {
  return flags_.count(flag) > 0;
}

std::optional<std::string> ArgParser::get(const std::string& flag) const {
  const auto it = flags_.find(flag);
  if (it == flags_.end()) return std::nullopt;
  return it->second;
}

std::string ArgParser::get_string(const std::string& flag,
                                  const std::string& fallback) const {
  return get(flag).value_or(fallback);
}

std::int64_t ArgParser::get_int(const std::string& flag,
                                std::int64_t fallback) const {
  const auto v = get(flag);
  if (!v) return fallback;
  try {
    return std::stoll(*v);
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + flag + " expects an integer, got '" +
                                *v + "'");
  }
}

double ArgParser::get_double(const std::string& flag, double fallback) const {
  const auto v = get(flag);
  if (!v) return fallback;
  try {
    return std::stod(*v);
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + flag + " expects a number, got '" +
                                *v + "'");
  }
}

namespace {

// Plain Levenshtein distance, small inputs only (flag names).
std::size_t edit_distance(std::string_view a, std::string_view b) {
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diagonal = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t above = row[j];
      const std::size_t cost = a[i - 1] == b[j - 1] ? 0 : 1;
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, diagonal + cost});
      diagonal = above;
    }
  }
  return row[b.size()];
}

}  // namespace

void ArgParser::expect_known(
    std::initializer_list<std::string_view> valid) const {
  for (const auto& [flag, value] : flags_) {
    bool known = false;
    for (std::string_view v : valid)
      if (flag == v) {
        known = true;
        break;
      }
    if (known) continue;

    std::string message = "unknown flag --" + flag;
    std::string_view closest;
    std::size_t best = 3;  // suggest only within edit distance 2
    for (std::string_view v : valid) {
      const std::size_t d = edit_distance(flag, v);
      if (d < best) {
        best = d;
        closest = v;
      }
    }
    if (!closest.empty())
      message += " (did you mean --" + std::string(closest) + "?)";
    message += "; valid flags:";
    for (std::string_view v : valid) message += " --" + std::string(v);
    throw std::invalid_argument(message);
  }
}

std::vector<std::string> ArgParser::split_list(const std::string& value) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= value.size()) {
    const auto comma = value.find(',', start);
    const auto end = comma == std::string::npos ? value.size() : comma;
    if (end > start) out.push_back(value.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

}  // namespace ftbesst::util
