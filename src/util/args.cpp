#include "util/args.hpp"

#include <stdexcept>

namespace ftbesst::util {

ArgParser::ArgParser(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      flags_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    if (i + 1 >= argc)
      throw std::invalid_argument("flag --" + body + " needs a value");
    flags_[body] = argv[++i];
  }
}

bool ArgParser::has(const std::string& flag) const noexcept {
  return flags_.count(flag) > 0;
}

std::optional<std::string> ArgParser::get(const std::string& flag) const {
  const auto it = flags_.find(flag);
  if (it == flags_.end()) return std::nullopt;
  return it->second;
}

std::string ArgParser::get_string(const std::string& flag,
                                  const std::string& fallback) const {
  return get(flag).value_or(fallback);
}

std::int64_t ArgParser::get_int(const std::string& flag,
                                std::int64_t fallback) const {
  const auto v = get(flag);
  if (!v) return fallback;
  try {
    return std::stoll(*v);
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + flag + " expects an integer, got '" +
                                *v + "'");
  }
}

double ArgParser::get_double(const std::string& flag, double fallback) const {
  const auto v = get(flag);
  if (!v) return fallback;
  try {
    return std::stod(*v);
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + flag + " expects a number, got '" +
                                *v + "'");
  }
}

std::vector<std::string> ArgParser::split_list(const std::string& value) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= value.size()) {
    const auto comma = value.find(',', start);
    const auto end = comma == std::string::npos ? value.size() : comma;
    if (end > start) out.push_back(value.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

}  // namespace ftbesst::util
