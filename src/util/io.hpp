#pragma once
// Robust POSIX I/O helpers for the wire protocol (and any other code that
// talks to pipes/sockets): read()/write() return short counts and are
// interrupted by signals, so every framed-protocol reader needs the same
// retry loop. Centralizing it here keeps the svc framing code free of
// errno plumbing and makes the EINTR/short-transfer behaviour unit-testable
// in isolation.

#include <cstddef>

namespace ftbesst::util {

/// Read exactly `n` bytes into `buf`, retrying on EINTR and short reads.
/// Returns the number of bytes actually read: `n` on success, less than `n`
/// only if EOF arrived first (0 if the stream was already at EOF). Throws
/// std::system_error on a hard I/O error. A receive timeout configured on
/// the fd (SO_RCVTIMEO) surfaces as std::system_error(EAGAIN/EWOULDBLOCK).
std::size_t read_full(int fd, void* buf, std::size_t n);

/// Write exactly `n` bytes from `buf`, retrying on EINTR and short writes.
/// Throws std::system_error on error (including EPIPE when the peer is
/// gone — callers talking to sockets should ignore/handle SIGPIPE, e.g.
/// via signal(SIGPIPE, SIG_IGN), so the error arrives as errno and not as
/// a process-killing signal).
void write_full(int fd, const void* buf, std::size_t n);

}  // namespace ftbesst::util
