#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>

namespace ftbesst::util {

Summary summarize(std::span<const double> xs) {
  Summary s;
  if (xs.empty()) return s;
  s.count = xs.size();
  s.mean = mean(xs);
  s.stddev = sample_stddev(xs);
  const auto [mn, mx] = std::minmax_element(xs.begin(), xs.end());
  s.min = *mn;
  s.max = *mx;
  s.median = quantile(xs, 0.5);
  return s;
}

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double acc = 0.0;
  for (double x : xs) acc += x;
  return acc / static_cast<double>(xs.size());
}

double sample_stddev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double quantile(std::span<const double> xs, double q) {
  // See stats.hpp: NaNs are dropped (they have no rank and break the sort's
  // ordering); empty-after-filter returns 0.0; one element is every
  // quantile of itself (the interpolation below handles that case: pos = 0).
  std::vector<double> sorted;
  sorted.reserve(xs.size());
  for (double x : xs)
    if (!std::isnan(x)) sorted.push_back(x);
  if (sorted.empty()) return 0.0;
  std::sort(sorted.begin(), sorted.end());
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double mape_percent(std::span<const double> actual,
                    std::span<const double> predicted) {
  const std::size_t n = std::min(actual.size(), predicted.size());
  double acc = 0.0;
  std::size_t used = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (actual[i] == 0.0) continue;
    acc += std::abs(predicted[i] - actual[i]) / std::abs(actual[i]);
    ++used;
  }
  return used == 0 ? 0.0 : 100.0 * acc / static_cast<double>(used);
}

double rmse(std::span<const double> actual,
            std::span<const double> predicted) {
  const std::size_t n = std::min(actual.size(), predicted.size());
  if (n == 0) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = predicted[i] - actual[i];
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(n));
}

double r_squared(std::span<const double> actual,
                 std::span<const double> predicted) {
  const std::size_t n = std::min(actual.size(), predicted.size());
  if (n == 0) return 0.0;
  const double m = mean(actual.subspan(0, n));
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    ss_res += (actual[i] - predicted[i]) * (actual[i] - predicted[i]);
    ss_tot += (actual[i] - m) * (actual[i] - m);
  }
  if (ss_tot == 0.0) return 0.0;
  return 1.0 - ss_res / ss_tot;
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  const std::size_t n = std::min(xs.size(), ys.size());
  if (n < 2) return 0.0;
  const double mx = mean(xs.subspan(0, n));
  const double my = mean(ys.subspan(0, n));
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sxy += (xs[i] - mx) * (ys[i] - my);
    sxx += (xs[i] - mx) * (xs[i] - mx);
    syy += (ys[i] - my) * (ys[i] - my);
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

}  // namespace ftbesst::util
