#pragma once
// Minimal leveled logging. Simulation libraries must never write to stdout
// uninvited (bench output is parsed), so everything goes to stderr and is
// silent by default above the configured level.
//
// Lines look like "[ftbesst:WARN +1.234567s] message": the timestamp is the
// obs monotonic clock (seconds since process epoch), so log lines correlate
// directly with span-trace timestamps.  Each message is formatted fully and
// written to the sink in a single locked write — concurrent workers cannot
// interleave characters inside a line.

#include <sstream>
#include <string>

namespace ftbesst::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are dropped. Default: kWarn.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Emit a message at `level` (thread-safe; single write per message).
void log_message(LogLevel level, const std::string& msg);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

#define FTBESST_LOG(level)                                      \
  if (static_cast<int>(level) < static_cast<int>(::ftbesst::util::log_level())) \
    ;                                                           \
  else                                                          \
    ::ftbesst::util::detail::LogLine(level)

#define FTBESST_DEBUG FTBESST_LOG(::ftbesst::util::LogLevel::kDebug)
#define FTBESST_INFO FTBESST_LOG(::ftbesst::util::LogLevel::kInfo)
#define FTBESST_WARN FTBESST_LOG(::ftbesst::util::LogLevel::kWarn)
#define FTBESST_ERROR FTBESST_LOG(::ftbesst::util::LogLevel::kError)

}  // namespace ftbesst::util
