#pragma once
// Model-level symmetry folding.
//
// Behavioural-emulation machines are overwhelmingly symmetric: every rank
// in a fat-tree pod executes the same AppBEO plan against the same FTI
// configuration through an isomorphic slice of the interconnect. Simulating
// each of 400k identical ranks individually buys nothing — the event
// timeline of one representative is the event timeline of all of them.
//
// This layer detects those equivalence classes *before* components execute:
// a model builder describes each prospective component as a FoldSpec
// (signature + link endpoints) and plan_folds() partitions the specs into
// FoldGroups. Two specs fold together only when
//   * their signatures match exactly (component type, behaviour digest —
//     e.g. the AppBEO plan, config digest — e.g. the FTI layout), and
//   * their link signatures are isomorphic: same (port, peer port, latency)
//     edges reaching peers of the same equivalence class, established by
//     iterated colour refinement (1-WL) over the link graph until fixpoint.
// A spec marked non-foldable (independent Monte-Carlo noise stream, a
// pinned fault-injection victim) is always a singleton class.
//
// The builder then instantiates one representative component per group,
// carrying the group's multiplicity (Component::set_multiplicity), and the
// kernel scales counters back up at aggregation
// (Simulation::aggregate_counters) so folded and unfolded runs report
// identical statistics. Divergence discovered *after* planning — a fault
// that singles out one member of a class — is handled by clone-on-
// divergence: FoldPlan::break_out splits the member into its own singleton
// group before instantiation (see docs/ARCHITECTURE.md, "Scaling the DES
// core", for the fold/no-fold rules each engine applies).

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace ftbesst::sim {

// --- 64-bit FNV-1a digest helpers for behaviour/config signatures ---

inline constexpr std::uint64_t kFoldDigestSeed = 0xcbf29ce484222325ULL;

[[nodiscard]] constexpr std::uint64_t fold_digest_u64(
    std::uint64_t h, std::uint64_t value) noexcept {
  for (int i = 0; i < 8; ++i) {
    h ^= (value >> (8 * i)) & 0xffULL;
    h *= 0x100000001b3ULL;
  }
  return h;
}

[[nodiscard]] std::uint64_t fold_digest_bytes(std::uint64_t h,
                                              const void* data,
                                              std::size_t size) noexcept;
[[nodiscard]] std::uint64_t fold_digest_string(std::uint64_t h,
                                               const std::string& s) noexcept;
/// Digest the bit pattern of a double (NaN payloads and -0.0 included:
/// behaviourally different inputs must never collide into one class).
[[nodiscard]] std::uint64_t fold_digest_f64(std::uint64_t h,
                                            double value) noexcept;

/// The part of a component's identity that must match exactly for two
/// components to be candidates of the same equivalence class.
struct FoldSignature {
  /// Component type tag ("rank", "nic", "leaf", ...). Different types never
  /// fold together regardless of digests.
  std::string type;
  /// Digest of the behaviour the component executes (e.g. the AppBEO
  /// program, core::AppBEO::plan_digest()).
  std::uint64_t behavior_digest = 0;
  /// Digest of the configuration the behaviour is parameterized by (FTI
  /// layout, bound model identities, comm parameters...).
  std::uint64_t config_digest = 0;
  /// False marks the spec as divergent (its own singleton class): used for
  /// per-component Monte-Carlo noise streams and fault-injection victims.
  bool foldable = true;

  [[nodiscard]] bool operator==(const FoldSignature& o) const noexcept {
    return type == o.type && behavior_digest == o.behavior_digest &&
           config_digest == o.config_digest && foldable == o.foldable;
  }
};

/// One link endpoint in a spec's link signature.
struct FoldEndpoint {
  std::uint32_t port = 0;       ///< local port the link attaches to
  std::uint32_t peer_port = 0;  ///< port on the peer side
  SimTime latency = 0;
  std::size_t peer = 0;  ///< index of the peer spec in the plan input
};

/// A prospective component, described before instantiation.
struct FoldSpec {
  FoldSignature signature;
  std::vector<FoldEndpoint> links;
};

/// One detected equivalence class.
struct FoldGroup {
  std::size_t representative = 0;    ///< lowest member index
  std::vector<std::size_t> members;  ///< sorted ascending, incl. rep

  [[nodiscard]] std::uint64_t multiplicity() const noexcept {
    return static_cast<std::uint64_t>(members.size());
  }
};

class FoldPlan {
 public:
  [[nodiscard]] const std::vector<FoldGroup>& groups() const noexcept {
    return groups_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return group_of_.size(); }
  [[nodiscard]] std::size_t group_of(std::size_t spec) const;
  [[nodiscard]] std::size_t representative_of(std::size_t spec) const;
  [[nodiscard]] bool is_representative(std::size_t spec) const;
  [[nodiscard]] std::uint64_t multiplicity_of(std::size_t spec) const;
  /// Number of components the plan avoids instantiating.
  [[nodiscard]] std::size_t folded_away() const noexcept {
    return group_of_.size() - groups_.size();
  }

  /// Clone-on-divergence: split `member` out of its current group into a
  /// fresh singleton group (no-op if it is already a singleton). The old
  /// group keeps the remaining members; if `member` was the representative
  /// the next-lowest member takes over. Group indices of other groups are
  /// preserved; the new singleton is appended.
  void break_out(std::size_t member);

 private:
  friend FoldPlan plan_folds(const std::vector<FoldSpec>& specs);
  std::vector<FoldGroup> groups_;
  std::vector<std::size_t> group_of_;  // spec index -> group index
};

/// Partition `specs` into equivalence classes (see file header for the
/// exact folding rule). Peer indices out of range throw
/// std::invalid_argument. Deterministic: group order follows the lowest
/// member index, members are sorted ascending.
[[nodiscard]] FoldPlan plan_folds(const std::vector<FoldSpec>& specs);

}  // namespace ftbesst::sim
