#pragma once
// Thread-local freelist allocator for event payloads.
//
// Every payload-carrying event used to pay one malloc and one free on the
// DES hot path (net::DesNetwork allocates a FlowMsg per message). Payloads
// are small and short-lived, so freed blocks are cached on a per-thread,
// size-bucketed freelist and handed straight back to the next allocation.
//
// Thread safety: all freelist state is thread_local, so there is no
// synchronization and no sharing — a block freed on thread B joins B's
// freelist even if thread A allocated it (the bytes themselves were handed
// across threads under the simulator's existing inbox locks/barriers).
// Caches release their blocks to the heap when the thread exits.

#include <cstddef>
#include <cstdint>

namespace ftbesst::sim::detail {

struct PayloadPoolStats {
  std::uint64_t allocations = 0;    ///< pool_allocate calls (this thread)
  std::uint64_t freelist_hits = 0;  ///< served without touching the heap
  std::uint64_t deallocations = 0;  ///< pool_deallocate calls (this thread)
};

[[nodiscard]] void* pool_allocate(std::size_t size);
void pool_deallocate(void* p, std::size_t size) noexcept;

/// Allocation statistics for the calling thread.
[[nodiscard]] PayloadPoolStats payload_pool_stats() noexcept;

/// Release the calling thread's cached blocks back to the heap.
void payload_pool_trim() noexcept;

}  // namespace ftbesst::sim::detail
