#pragma once
// Kernel-internal thread-local execution context. The dispatch loop records
// the in-flight event's timestamp and the executing partition here; the
// Component helpers and the scheduler read them. Not part of the public API.

#include <cstdint>

#include "sim/time.hpp"

namespace ftbesst::sim::detail {

extern thread_local SimTime t_current_time;
extern thread_local std::int64_t t_current_partition;

}  // namespace ftbesst::sim::detail
