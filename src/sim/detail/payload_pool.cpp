#include "sim/detail/payload_pool.hpp"

#include <new>

namespace ftbesst::sim::detail {

namespace {

constexpr std::size_t kBucketStep = 64;  // block granularity (bytes)
constexpr std::size_t kBuckets = 4;      // pooled sizes: 64..256 bytes
constexpr std::size_t kMaxPooled = kBucketStep * kBuckets;
// Cap cached blocks per bucket so pathological churn cannot hoard memory.
constexpr std::size_t kMaxFreePerBucket = 4096;

struct FreeNode {
  FreeNode* next;
};

constexpr std::size_t bucket_of(std::size_t size) noexcept {
  return (size - 1) / kBucketStep;
}

struct ThreadCache {
  FreeNode* head[kBuckets] = {};
  std::size_t count[kBuckets] = {};
  PayloadPoolStats stats;

  ~ThreadCache() { trim(); }

  void trim() noexcept {
    for (std::size_t b = 0; b < kBuckets; ++b) {
      while (head[b] != nullptr) {
        FreeNode* node = head[b];
        head[b] = node->next;
        ::operator delete(node);
      }
      count[b] = 0;
    }
  }
};

thread_local ThreadCache t_cache;

}  // namespace

void* pool_allocate(std::size_t size) {
  if (size == 0) size = 1;
  ThreadCache& cache = t_cache;
  ++cache.stats.allocations;
  if (size <= kMaxPooled) {
    const std::size_t b = bucket_of(size);
    if (FreeNode* node = cache.head[b]) {
      cache.head[b] = node->next;
      --cache.count[b];
      ++cache.stats.freelist_hits;
      return node;
    }
    // Allocate the full bucket width so the block is reusable for any
    // size that maps to this bucket.
    return ::operator new((b + 1) * kBucketStep);
  }
  return ::operator new(size);
}

void pool_deallocate(void* p, std::size_t size) noexcept {
  if (p == nullptr) return;
  ThreadCache& cache = t_cache;
  ++cache.stats.deallocations;
  if (size != 0 && size <= kMaxPooled) {
    const std::size_t b = bucket_of(size);
    if (cache.count[b] < kMaxFreePerBucket) {
      auto* node = static_cast<FreeNode*>(p);
      node->next = cache.head[b];
      cache.head[b] = node;
      ++cache.count[b];
      return;
    }
  }
  ::operator delete(p);
}

PayloadPoolStats payload_pool_stats() noexcept { return t_cache.stats; }

void payload_pool_trim() noexcept { t_cache.trim(); }

}  // namespace ftbesst::sim::detail
