#pragma once
// Events and payloads for the PDES kernel.

#include <cstdint>
#include <memory>
#include <new>

#include "sim/detail/payload_pool.hpp"
#include "sim/time.hpp"

namespace ftbesst::sim {

using ComponentId = std::uint32_t;
using PortId = std::uint32_t;

inline constexpr ComponentId kNoComponent = ~ComponentId{0};

/// Base class for event payloads. Concrete simulations subclass this (or use
/// Box<T>) to attach data to an event. Ownership moves with the event.
struct Payload {
  virtual ~Payload() = default;

  // Payloads are allocated and freed once per carrying event — the DES hot
  // path — so they come from the thread-local freelist pool instead of the
  // heap. The sized delete receives the dynamic size (virtual destructor),
  // which is what lets the pool find the right bucket without a header.
  static void* operator new(std::size_t size) {
    return detail::pool_allocate(size);
  }
  static void operator delete(void* p, std::size_t size) noexcept {
    detail::pool_deallocate(p, size);
  }
};

/// Convenience payload wrapping an arbitrary movable value.
template <typename T>
struct Box final : Payload {
  explicit Box(T v) : value(std::move(v)) {}
  T value;
};

template <typename T>
[[nodiscard]] std::unique_ptr<Payload> box(T value) {
  return std::make_unique<Box<T>>(std::move(value));
}

/// Retrieve the value from a Box<T> payload; returns nullptr on type
/// mismatch. (dynamic_cast, so mismatches are detected, not UB.)
template <typename T>
[[nodiscard]] T* unbox(Payload* p) noexcept {
  auto* b = dynamic_cast<Box<T>*>(p);
  return b ? &b->value : nullptr;
}

/// A scheduled event. Ordering is total and identical in serial and parallel
/// execution: (time, priority, source component, per-source sequence).
struct Event {
  SimTime time = 0;
  std::int32_t priority = 0;       ///< lower runs first at equal time
  ComponentId src = kNoComponent;  ///< scheduling component (tie-break)
  std::uint64_t src_seq = 0;       ///< per-source monotonic counter
  ComponentId dst = kNoComponent;
  PortId port = 0;
  std::unique_ptr<Payload> payload;

  /// Strict-weak order for the event queue (earliest first).
  [[nodiscard]] bool before(const Event& other) const noexcept {
    if (time != other.time) return time < other.time;
    if (priority != other.priority) return priority < other.priority;
    if (src != other.src) return src < other.src;
    return src_seq < other.src_seq;
  }
};

}  // namespace ftbesst::sim
