#pragma once
// Component base class — the SST-style unit of simulated hardware/software.
//
// A component owns no threads and touches no global state; it reacts to
// events delivered by the Simulation and may schedule new events through the
// protected helpers. This discipline is what makes conservative parallel
// execution safe: a component only ever mutates itself.

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "sim/event.hpp"
#include "sim/time.hpp"

namespace ftbesst::sim {

class Simulation;

class Component {
 public:
  virtual ~Component() = default;

  Component(const Component&) = delete;
  Component& operator=(const Component&) = delete;

  [[nodiscard]] ComponentId id() const noexcept { return id_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  /// Partition this component executes in under parallel simulation.
  [[nodiscard]] std::uint32_t partition() const noexcept { return partition_; }
  void set_partition(std::uint32_t p) noexcept { partition_ = p; }

  /// Number of identical model entities this component stands for under
  /// symmetry folding (sim/fold.hpp). 1 for ordinary components; a fold
  /// representative carries its group's size and aggregate_counters() scales
  /// the component's counters by it, so folded and unfolded runs report
  /// identical totals.
  [[nodiscard]] std::uint64_t multiplicity() const noexcept {
    return multiplicity_;
  }
  void set_multiplicity(std::uint64_t m) noexcept {
    multiplicity_ = m > 0 ? m : 1;
  }

  /// Called once before the first event is processed.
  virtual void init() {}
  /// Called once after the simulation drains or reaches the horizon.
  virtual void finish() {}
  /// Deliver an event addressed to `port`. The payload may be null (pure
  /// timing events).
  virtual void handle_event(PortId port, std::unique_ptr<Payload> payload) = 0;

  /// SST-style named statistics: free-form counters a component bumps while
  /// simulating (messages forwarded, bytes moved, cache hits...). Counters
  /// are component-local (no synchronization needed under the partition
  /// discipline) and aggregated across the simulation via
  /// Simulation::aggregate_counters().
  [[nodiscard]] const std::map<std::string, std::uint64_t>& counters()
      const noexcept {
    return counters_;
  }

 protected:
  explicit Component(std::string name) : name_(std::move(name)) {}

  /// Current simulation time (valid inside init/handle_event).
  [[nodiscard]] SimTime now() const noexcept;

  /// Schedule an event back to this component after `delay` ticks.
  void schedule_self(SimTime delay, std::unique_ptr<Payload> payload = nullptr,
                     PortId port = 0, std::int32_t priority = 0);

  /// Send a payload out of `port` over its connected link; it arrives at the
  /// peer after the link latency plus `extra_delay`.
  void send(PortId port, std::unique_ptr<Payload> payload,
            SimTime extra_delay = 0, std::int32_t priority = 0);

  /// Direct cross-component scheduling (used by tightly-coupled subsystems
  /// that are not modeling a physical wire). Delay must respect the
  /// partition lookahead when crossing partitions in parallel runs; the
  /// Simulation enforces this.
  void schedule_to(ComponentId dst, PortId port, SimTime delay,
                   std::unique_ptr<Payload> payload = nullptr,
                   std::int32_t priority = 0);

  [[nodiscard]] Simulation& simulation() const noexcept { return *sim_; }

  /// Bump a named statistic (creates it at zero on first use).
  void bump(const std::string& counter, std::uint64_t delta = 1) {
    counters_[counter] += delta;
  }

 private:
  friend class Simulation;
  Simulation* sim_ = nullptr;
  ComponentId id_ = kNoComponent;
  std::uint32_t partition_ = 0;
  std::uint64_t multiplicity_ = 1;
  std::string name_;
  std::map<std::string, std::uint64_t> counters_;
  /// Wall-clock ns spent in handle_event, accumulated by Simulation::dispatch
  /// only while obs is enabled and folded into the obs registry (counter
  /// "sim.busy_ns.<name sans trailing digits>") at the end of each run.
  std::uint64_t obs_busy_ns_ = 0;
};

}  // namespace ftbesst::sim
