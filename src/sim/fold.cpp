#include "sim/fold.hpp"

#include <algorithm>
#include <cstring>
#include <map>
#include <stdexcept>
#include <tuple>

namespace ftbesst::sim {

std::uint64_t fold_digest_bytes(std::uint64_t h, const void* data,
                                std::size_t size) noexcept {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    h ^= bytes[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t fold_digest_string(std::uint64_t h,
                                 const std::string& s) noexcept {
  // Length first so that ("ab","c") and ("a","bc") stay distinct.
  h = fold_digest_u64(h, s.size());
  return fold_digest_bytes(h, s.data(), s.size());
}

std::uint64_t fold_digest_f64(std::uint64_t h, double value) noexcept {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof bits);
  return fold_digest_u64(h, bits);
}

std::size_t FoldPlan::group_of(std::size_t spec) const {
  if (spec >= group_of_.size())
    throw std::out_of_range("FoldPlan::group_of: unknown spec");
  return group_of_[spec];
}

std::size_t FoldPlan::representative_of(std::size_t spec) const {
  return groups_[group_of(spec)].representative;
}

bool FoldPlan::is_representative(std::size_t spec) const {
  return representative_of(spec) == spec;
}

std::uint64_t FoldPlan::multiplicity_of(std::size_t spec) const {
  return groups_[group_of(spec)].multiplicity();
}

void FoldPlan::break_out(std::size_t member) {
  const std::size_t g = group_of(member);  // range-checks
  FoldGroup& old_group = groups_[g];
  if (old_group.members.size() == 1) return;  // already a singleton
  old_group.members.erase(std::find(old_group.members.begin(),
                                    old_group.members.end(), member));
  old_group.representative = old_group.members.front();
  FoldGroup fresh;
  fresh.representative = member;
  fresh.members = {member};
  group_of_[member] = groups_.size();
  groups_.push_back(std::move(fresh));
}

FoldPlan plan_folds(const std::vector<FoldSpec>& specs) {
  const std::size_t n = specs.size();
  for (const FoldSpec& spec : specs)
    for (const FoldEndpoint& link : spec.links)
      if (link.peer >= n)
        throw std::invalid_argument("plan_folds: link peer out of range");

  // Initial colouring: one colour per distinct signature; non-foldable
  // specs are poisoned with their own index so they never share a colour.
  // Colours are exact equivalence-class ids (assigned through ordered maps
  // keyed by the full comparison tuple), not hashes — a collision could
  // silently fold behaviourally different components together, which would
  // corrupt predictions, so we never risk one.
  using InitKey =
      std::tuple<std::string, std::uint64_t, std::uint64_t, std::uint64_t>;
  std::vector<std::size_t> colour(n);
  {
    std::map<InitKey, std::size_t> palette;
    for (std::size_t i = 0; i < n; ++i) {
      const FoldSignature& sig = specs[i].signature;
      InitKey key{sig.type, sig.behavior_digest, sig.config_digest,
                  sig.foldable ? 0 : i + 1};
      colour[i] =
          palette.emplace(std::move(key), palette.size()).first->second;
    }
  }

  // Iterated colour refinement (1-WL): recolour by (own colour, sorted
  // multiset of (port, peer_port, latency, peer colour)) until the number
  // of classes stops growing. Splits are monotone, so at most n rounds.
  using Edge = std::tuple<std::uint32_t, std::uint32_t, SimTime, std::size_t>;
  using RefineKey = std::pair<std::size_t, std::vector<Edge>>;
  std::size_t num_colours = 0;
  for (std::size_t c : colour) num_colours = std::max(num_colours, c + 1);
  for (;;) {
    std::map<RefineKey, std::size_t> palette;
    std::vector<std::size_t> next(n);
    for (std::size_t i = 0; i < n; ++i) {
      std::vector<Edge> edges;
      edges.reserve(specs[i].links.size());
      for (const FoldEndpoint& link : specs[i].links)
        edges.emplace_back(link.port, link.peer_port, link.latency,
                           colour[link.peer]);
      std::sort(edges.begin(), edges.end());
      RefineKey key{colour[i], std::move(edges)};
      next[i] = palette.emplace(std::move(key), palette.size()).first->second;
    }
    colour = std::move(next);
    if (palette.size() == num_colours) break;  // fixpoint
    num_colours = palette.size();
  }

  // Materialize groups in order of lowest member.
  FoldPlan plan;
  plan.group_of_.assign(n, 0);
  std::vector<std::size_t> group_of_colour(num_colours, SIZE_MAX);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t& g = group_of_colour[colour[i]];
    if (g == SIZE_MAX) {
      g = plan.groups_.size();
      FoldGroup group;
      group.representative = i;
      plan.groups_.push_back(std::move(group));
    }
    plan.groups_[g].members.push_back(i);
    plan.group_of_[i] = g;
  }
  return plan;
}

}  // namespace ftbesst::sim
