#pragma once
// Mutable event heap with an intrusive pop.
//
// std::priority_queue only exposes a const top(), which forced the engines
// into the const_cast pop-after-move idiom. This 4-ary implicit min-heap
// (ordered by Event::before) moves the root out of pop() directly. The
// wider node also means fewer cache-missing levels than a binary heap for
// the queue depths full-system simulations reach.

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

#include "sim/event.hpp"

namespace ftbesst::sim {

class EventHeap {
 public:
  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }
  /// The earliest event. Precondition: !empty().
  [[nodiscard]] const Event& top() const noexcept { return heap_.front(); }

  void push(Event ev) {
    heap_.push_back(std::move(ev));
    sift_up(heap_.size() - 1);
  }

  /// Remove and return the earliest event. Precondition: !empty().
  [[nodiscard]] Event pop() {
    Event out = std::move(heap_.front());
    if (heap_.size() > 1) {
      heap_.front() = std::move(heap_.back());
      heap_.pop_back();
      sift_down(0);
    } else {
      heap_.pop_back();
    }
    return out;
  }

  void clear() noexcept { heap_.clear(); }
  void reserve(std::size_t n) { heap_.reserve(n); }

 private:
  static constexpr std::size_t kArity = 4;

  void sift_up(std::size_t i) noexcept {
    while (i > 0) {
      const std::size_t parent = (i - 1) / kArity;
      if (!heap_[i].before(heap_[parent])) break;
      std::swap(heap_[i], heap_[parent]);
      i = parent;
    }
  }

  void sift_down(std::size_t i) noexcept {
    for (;;) {
      const std::size_t first = i * kArity + 1;
      if (first >= heap_.size()) break;
      const std::size_t last = std::min(first + kArity, heap_.size());
      std::size_t best = first;
      for (std::size_t c = first + 1; c < last; ++c)
        if (heap_[c].before(heap_[best])) best = c;
      if (!heap_[best].before(heap_[i])) break;
      std::swap(heap_[i], heap_[best]);
      i = best;
    }
  }

  std::vector<Event> heap_;
};

}  // namespace ftbesst::sim
