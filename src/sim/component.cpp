#include "sim/component.hpp"

#include "sim/detail/tls.hpp"
#include "sim/simulation.hpp"

namespace ftbesst::sim {

SimTime Component::now() const noexcept { return detail::t_current_time; }

void Component::schedule_self(SimTime delay, std::unique_ptr<Payload> payload,
                              PortId port, std::int32_t priority) {
  sim_->schedule(id_, id_, port, now() + delay, std::move(payload), priority);
}

void Component::send(PortId port, std::unique_ptr<Payload> payload,
                     SimTime extra_delay, std::int32_t priority) {
  sim_->send_on_port(id_, port, extra_delay, std::move(payload), priority);
}

void Component::schedule_to(ComponentId dst, PortId port, SimTime delay,
                            std::unique_ptr<Payload> payload,
                            std::int32_t priority) {
  sim_->schedule(id_, dst, port, now() + delay, std::move(payload), priority);
}

}  // namespace ftbesst::sim
