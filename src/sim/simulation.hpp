#pragma once
// The simulation kernel: component registry, links, event queues, and both
// serial and conservative-parallel execution engines.
//
// Parallel model (conservative, incremental rounds): components are assigned
// to partitions; each partition owns a private event queue. Execution
// proceeds in rounds. Between rounds a coordinator computes, per partition,
// a conservative *bound* — the earliest time any event could still arrive
// from another partition — from the CMB-style earliest-output-time fixed
// point over the partition graph: per-partition-pair lookahead is the
// minimum latency of the links joining that pair, and the minimum
// cross-partition link latency overall is a floor that keeps direct
// schedule_to deliveries (which ride no link) safe. Only partitions whose
// next event falls below their bound wake in a round ("selective wake");
// workers claim active partitions from a shared cursor and drain them
// independently. Events bound for another partition are appended to
// lock-free per-destination outboxes and batch-merged by the coordinator
// between rounds, while workers are quiescent at the barrier. Event
// ordering keys are identical in serial and parallel mode and form a strict
// total order, so both engines — and any thread count — produce
// bit-identical simulations.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sim/component.hpp"
#include "sim/event.hpp"
#include "sim/event_heap.hpp"
#include "sim/time.hpp"

namespace ftbesst::sim {

/// A bidirectional point-to-point link between two component ports.
struct Link {
  ComponentId a = kNoComponent;
  PortId port_a = 0;
  ComponentId b = kNoComponent;
  PortId port_b = 0;
  SimTime latency = 0;
};

/// Aggregated component counters, sorted by name (built once per call
/// instead of rebuilding a std::map node-by-node; benches aggregate per
/// run). Look values up with counter_value(). Counters of a fold
/// representative are scaled by its multiplicity, so folded and unfolded
/// models aggregate to identical totals.
using CounterTotals = std::vector<std::pair<std::string, std::uint64_t>>;

/// Value of `name` in sorted `totals` (binary search). Throws
/// std::out_of_range when the counter does not exist.
[[nodiscard]] std::uint64_t counter_value(const CounterTotals& totals,
                                          std::string_view name);

/// Aggregate run statistics.
struct SimStats {
  std::uint64_t events_processed = 0;
  std::uint64_t windows = 0;  ///< parallel synchronization rounds (0 serial)
  /// Deepest event queue observed during the run (max over partition queues
  /// in parallel mode) — the working-set measure the DES heap is sized by.
  std::uint64_t heap_high_water = 0;
  SimTime end_time = 0;
};

class Simulation {
 public:
  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Construct and register a component. Returns a non-owning pointer valid
  /// for the simulation's lifetime.
  template <typename T, typename... Args>
  T* add_component(Args&&... args) {
    auto owned = std::make_unique<T>(std::forward<Args>(args)...);
    T* raw = owned.get();
    register_component(std::move(owned));
    return raw;
  }

  /// Connect two component ports with a link of the given latency.
  /// Latency 0 is allowed but forces those components into one partition
  /// for parallel execution.
  void connect(ComponentId a, PortId port_a, ComponentId b, PortId port_b,
               SimTime latency);

  [[nodiscard]] Component& component(ComponentId id);
  [[nodiscard]] std::size_t component_count() const noexcept {
    return components_.size();
  }

  /// Sum of every component's named counters (SST-style statistics
  /// aggregation), each scaled by the component's fold multiplicity. Call
  /// after run() / run_parallel().
  [[nodiscard]] CounterTotals aggregate_counters() const;

  /// Total events dispatched over this simulation's lifetime (all runs).
  [[nodiscard]] std::uint64_t lifetime_events() const noexcept {
    return events_processed_;
  }

  /// Run serially until the event queue drains or `until` is reached.
  SimStats run(SimTime until = kNever);

  /// Run with `num_threads` worker threads using conservative incremental
  /// rounds. With num_threads <= 1 this is exactly run(). External event
  /// injection (Simulation::schedule from a thread outside the engine) is
  /// only supported while no parallel run is in flight.
  SimStats run_parallel(unsigned num_threads, SimTime until = kNever);

  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Request an early stop: the engine finishes the current event (serial)
  /// or round (parallel) and halts.
  void request_stop() noexcept {
    stop_requested_.store(true, std::memory_order_relaxed);
  }
  [[nodiscard]] bool stop_requested() const noexcept {
    return stop_requested_.load(std::memory_order_relaxed);
  }

  // -- scheduling interface (used by Component helpers; public so that test
  //    drivers can inject external stimuli) --
  void schedule(ComponentId src, ComponentId dst, PortId port, SimTime time,
                std::unique_ptr<Payload> payload, std::int32_t priority = 0);
  void send_on_port(ComponentId src, PortId port, SimTime extra_delay,
                    std::unique_ptr<Payload> payload, std::int32_t priority);

 private:
  /// Per-partition execution state. Cache-line aligned and stored by value
  /// (flat vector) so the coordinator's per-round scans stream through
  /// memory instead of chasing pointers.
  struct alignas(64) Partition {
    EventHeap queue;
    /// Cross-partition events produced this round, one vector per
    /// destination partition. Only the single worker that claimed this
    /// partition appends during a round; the coordinator merges between
    /// rounds while workers sit at the barrier — no locks anywhere.
    std::vector<std::vector<Event>> outbox;
    /// Published by the coordinator each round: no event below this time can
    /// still arrive from another partition, so draining strictly below it is
    /// safe. Also the reference for the cross-partition delivery check.
    SimTime bound = 0;
    std::uint64_t events_processed = 0;
    std::uint64_t heap_high_water = 0;
  };

  void register_component(std::unique_ptr<Component> component);
  void init_components();
  void finish_components();
  void dispatch(Event& ev, std::uint64_t& counter);
  /// Fold run totals and per-component busy time into the obs registry
  /// (no-op while obs is disabled); clears the per-component accumulators.
  void fold_obs_stats(const SimStats& stats);
  /// Build the flat component->partition map, the symmetric per-pair
  /// minimum-latency adjacency (peer_links_) and the global cross-partition
  /// minimum (global_min_la_: 0 iff some zero-latency link crosses
  /// partitions — parallel unsafe; kNever iff no link crosses at all).
  void build_partition_topology(std::uint32_t num_parts);
  /// Assign partitions automatically if the user did not: components
  /// connected by zero-latency links are grouped, groups are distributed
  /// round-robin over `parts` partitions.
  void auto_partition(std::uint32_t parts);

  std::vector<std::unique_ptr<Component>> components_;
  std::vector<Link> links_;
  /// links_by_port_[component][port] -> link index (resolved lazily).
  std::vector<std::vector<std::int64_t>> port_links_;
  std::vector<std::uint64_t> src_seq_;  // per-component schedule counter

  EventHeap queue_;  // serial engine queue
  std::vector<Partition> partitions_;
  /// Flat copy of each component's partition, rebuilt per parallel run; the
  /// schedule() hot path indexes it instead of dereferencing the component.
  std::vector<std::uint32_t> component_partition_;
  /// peer_links_[p] = (q, min latency of links between p and q), symmetric.
  std::vector<std::vector<std::pair<std::uint32_t, SimTime>>> peer_links_;
  SimTime global_min_la_ = kNever;
  bool parallel_mode_ = false;
  SimTime now_ = 0;
  bool initialized_ = false;
  bool running_ = false;
  std::atomic<bool> stop_requested_ = false;
  std::uint64_t events_processed_ = 0;
};

}  // namespace ftbesst::sim
