#pragma once
// The simulation kernel: component registry, links, event queues, and both
// serial and conservative-parallel execution engines.
//
// Parallel model (conservative, windowed): components are assigned to
// partitions; each partition owns a private event queue. Execution proceeds
// in global windows of width `lookahead` = the minimum latency of any
// cross-partition link (or explicit schedule_to delay). Within a window each
// partition drains its events independently on its own thread; events bound
// for another partition are deposited in that partition's locked inbox and
// merged at the barrier. Because every cross-partition event carries at
// least `lookahead` of delay, no event generated inside window [W, W+LA) can
// be due before W+LA — so concurrent intra-window execution never violates
// causality. Event ordering keys are identical in serial and parallel mode,
// so both engines produce bit-identical simulations.

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sim/component.hpp"
#include "sim/event.hpp"
#include "sim/event_heap.hpp"
#include "sim/time.hpp"

namespace ftbesst::sim {

/// A bidirectional point-to-point link between two component ports.
struct Link {
  ComponentId a = kNoComponent;
  PortId port_a = 0;
  ComponentId b = kNoComponent;
  PortId port_b = 0;
  SimTime latency = 0;
};

/// Aggregated component counters, sorted by name (built once per call
/// instead of rebuilding a std::map node-by-node; benches aggregate per
/// run). Look values up with counter_value().
using CounterTotals = std::vector<std::pair<std::string, std::uint64_t>>;

/// Value of `name` in sorted `totals` (binary search). Throws
/// std::out_of_range when the counter does not exist.
[[nodiscard]] std::uint64_t counter_value(const CounterTotals& totals,
                                          std::string_view name);

/// Aggregate run statistics.
struct SimStats {
  std::uint64_t events_processed = 0;
  std::uint64_t windows = 0;  ///< parallel barrier windows (0 for serial)
  /// Deepest event queue observed during the run (max over partition queues
  /// in parallel mode) — the working-set measure the DES heap is sized by.
  std::uint64_t heap_high_water = 0;
  SimTime end_time = 0;
};

class Simulation {
 public:
  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Construct and register a component. Returns a non-owning pointer valid
  /// for the simulation's lifetime.
  template <typename T, typename... Args>
  T* add_component(Args&&... args) {
    auto owned = std::make_unique<T>(std::forward<Args>(args)...);
    T* raw = owned.get();
    register_component(std::move(owned));
    return raw;
  }

  /// Connect two component ports with a link of the given latency.
  /// Latency 0 is allowed but forces those components into one partition
  /// for parallel execution.
  void connect(ComponentId a, PortId port_a, ComponentId b, PortId port_b,
               SimTime latency);

  [[nodiscard]] Component& component(ComponentId id);
  [[nodiscard]] std::size_t component_count() const noexcept {
    return components_.size();
  }

  /// Sum of every component's named counters (SST-style statistics
  /// aggregation). Call after run() / run_parallel().
  [[nodiscard]] CounterTotals aggregate_counters() const;

  /// Total events dispatched over this simulation's lifetime (all runs).
  [[nodiscard]] std::uint64_t lifetime_events() const noexcept {
    return events_processed_;
  }

  /// Run serially until the event queue drains or `until` is reached.
  SimStats run(SimTime until = kNever);

  /// Run with `num_threads` worker threads using conservative windowed
  /// synchronization. With num_threads <= 1 this is exactly run().
  SimStats run_parallel(unsigned num_threads, SimTime until = kNever);

  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Request an early stop: the engine finishes the current event and halts.
  void request_stop() noexcept { stop_requested_ = true; }
  [[nodiscard]] bool stop_requested() const noexcept { return stop_requested_; }

  // -- scheduling interface (used by Component helpers; public so that test
  //    drivers can inject external stimuli) --
  void schedule(ComponentId src, ComponentId dst, PortId port, SimTime time,
                std::unique_ptr<Payload> payload, std::int32_t priority = 0);
  void send_on_port(ComponentId src, PortId port, SimTime extra_delay,
                    std::unique_ptr<Payload> payload, std::int32_t priority);

 private:
  struct Partition {
    EventHeap queue;
    std::vector<Event> inbox;  // cross-partition deliveries, merged at barrier
    std::mutex inbox_mutex;
    std::uint64_t events_processed = 0;
    std::uint64_t heap_high_water = 0;
  };

  void register_component(std::unique_ptr<Component> component);
  void init_components();
  void finish_components();
  void dispatch(Event& ev, std::uint64_t& counter);
  /// Fold run totals and per-component busy time into the obs registry
  /// (no-op while obs is disabled); clears the per-component accumulators.
  void fold_obs_stats(const SimStats& stats);
  /// Partition lookahead: the minimum cross-partition link latency. Returns
  /// 0 when any cross-partition link has zero latency (parallel unsafe).
  [[nodiscard]] SimTime compute_lookahead() const;
  /// Assign partitions automatically if the user did not: components
  /// connected by zero-latency links are grouped, groups are distributed
  /// round-robin over `parts` partitions.
  void auto_partition(std::uint32_t parts);

  std::vector<std::unique_ptr<Component>> components_;
  std::vector<Link> links_;
  /// links_by_port_[component][port] -> link index (resolved lazily).
  std::vector<std::vector<std::int64_t>> port_links_;
  std::vector<std::uint64_t> src_seq_;  // per-component schedule counter

  EventHeap queue_;  // serial engine queue
  std::vector<std::unique_ptr<Partition>> partitions_;
  bool parallel_mode_ = false;
  SimTime window_end_ = kNever;  // parallel: events >= window_end defer
  SimTime now_ = 0;
  bool initialized_ = false;
  bool running_ = false;
  bool stop_requested_ = false;
  std::uint64_t events_processed_ = 0;
};

}  // namespace ftbesst::sim
