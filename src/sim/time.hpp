#pragma once
// Simulation time base.
//
// SST uses an integer core time base to keep parallel event ordering exact;
// we do the same. One tick = 1 nanosecond, giving ~584 years of range in a
// uint64 — comfortably more than any full-system HPC run we emulate.
// Performance models produce double seconds; conversions round half-up so
// that model output and simulated clock agree to <= 0.5 ns.

#include <cmath>
#include <cstdint>
#include <limits>

namespace ftbesst::sim {

using SimTime = std::uint64_t;  ///< nanoseconds since simulation start

inline constexpr SimTime kNever = std::numeric_limits<SimTime>::max();
inline constexpr SimTime kNsPerUs = 1000;
inline constexpr SimTime kNsPerMs = 1000 * 1000;
inline constexpr SimTime kNsPerSec = 1000ULL * 1000 * 1000;

/// Convert seconds (model output) to simulation ticks, rounding half-up and
/// clamping negatives to zero (a model must never move time backwards).
[[nodiscard]] inline SimTime from_seconds(double seconds) noexcept {
  if (!(seconds > 0.0)) return 0;
  const double ns = seconds * 1e9 + 0.5;
  if (ns >= static_cast<double>(kNever)) return kNever;
  return static_cast<SimTime>(ns);
}

/// Convert simulation ticks back to seconds.
[[nodiscard]] inline double to_seconds(SimTime t) noexcept {
  return static_cast<double>(t) * 1e-9;
}

}  // namespace ftbesst::sim
