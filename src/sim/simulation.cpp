#include "sim/simulation.hpp"

#include <algorithm>
#include <barrier>
#include <numeric>
#include <stdexcept>
#include <thread>

#include "obs/obs.hpp"
#include "sim/detail/tls.hpp"
#include "util/log.hpp"

namespace ftbesst::sim {

namespace detail {
thread_local SimTime t_current_time = 0;
thread_local std::int64_t t_current_partition = -1;
}  // namespace detail

namespace {
using detail::t_current_partition;
using detail::t_current_time;

SimTime saturating_add(SimTime a, SimTime b) noexcept {
  return (kNever - a < b) ? kNever : a + b;
}

struct SimMetrics {
  obs::Counter events = obs::counter("sim.events");
  obs::Gauge heap_high_water = obs::gauge("sim.heap_high_water");
};

SimMetrics& sim_metrics() {
  static SimMetrics m;
  return m;
}

// Group per-component busy time by component *kind*: trailing instance
// digits (and any separator left dangling) are stripped, so "rank0".."rank7"
// all fold into "sim.busy_ns.rank".
std::string busy_counter_name(const std::string& component_name) {
  std::string_view base = component_name;
  while (!base.empty() && base.back() >= '0' && base.back() <= '9')
    base.remove_suffix(1);
  while (!base.empty() &&
         (base.back() == '_' || base.back() == '.' || base.back() == '-'))
    base.remove_suffix(1);
  if (base.empty()) base = component_name;
  return "sim.busy_ns." + std::string(base);
}
}  // namespace

void Simulation::register_component(std::unique_ptr<Component> component) {
  if (running_) throw std::logic_error("cannot add components while running");
  component->sim_ = this;
  component->id_ = static_cast<ComponentId>(components_.size());
  components_.push_back(std::move(component));
  port_links_.emplace_back();
  src_seq_.push_back(0);
}

Component& Simulation::component(ComponentId id) {
  return *components_.at(id);
}

std::uint64_t counter_value(const CounterTotals& totals,
                            std::string_view name) {
  const auto it = std::lower_bound(
      totals.begin(), totals.end(), name,
      [](const auto& entry, std::string_view key) { return entry.first < key; });
  if (it == totals.end() || it->first != name)
    throw std::out_of_range("no such counter: " + std::string(name));
  return it->second;
}

CounterTotals Simulation::aggregate_counters() const {
  CounterTotals totals;
  for (const auto& component : components_)
    for (const auto& [name, value] : component->counters())
      totals.emplace_back(name, value);
  std::sort(totals.begin(), totals.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  // Sum duplicates in place (same counter bumped by several components).
  std::size_t out = 0;
  for (std::size_t i = 0; i < totals.size(); ++i) {
    if (out > 0 && totals[out - 1].first == totals[i].first) {
      totals[out - 1].second += totals[i].second;
    } else {
      if (out != i) totals[out] = std::move(totals[i]);
      ++out;
    }
  }
  totals.resize(out);
  return totals;
}

void Simulation::connect(ComponentId a, PortId port_a, ComponentId b,
                         PortId port_b, SimTime latency) {
  if (a >= components_.size() || b >= components_.size())
    throw std::out_of_range("connect: unknown component");
  const auto link_index = static_cast<std::int64_t>(links_.size());
  links_.push_back(Link{a, port_a, b, port_b, latency});
  auto attach = [&](ComponentId c, PortId p) {
    auto& ports = port_links_[c];
    if (ports.size() <= p) ports.resize(p + 1, -1);
    if (ports[p] != -1)
      throw std::logic_error("connect: port already connected on " +
                             components_[c]->name());
    ports[p] = link_index;
  };
  attach(a, port_a);
  attach(b, port_b);
}

void Simulation::schedule(ComponentId src, ComponentId dst, PortId port,
                          SimTime time, std::unique_ptr<Payload> payload,
                          std::int32_t priority) {
  if (dst >= components_.size())
    throw std::out_of_range("schedule: unknown destination");
  Event ev;
  ev.time = time;
  ev.priority = priority;
  ev.src = src;
  ev.src_seq = (src == kNoComponent) ? src_seq_[dst]++ : src_seq_[src]++;
  ev.dst = dst;
  ev.port = port;
  ev.payload = std::move(payload);

  if (!parallel_mode_) {
    queue_.push(std::move(ev));
    return;
  }
  const std::uint32_t dst_part = components_[dst]->partition();
  if (t_current_partition == static_cast<std::int64_t>(dst_part)) {
    partitions_[dst_part]->queue.push(std::move(ev));
    return;
  }
  // Cross-partition: must not be due inside the current window, or the
  // conservative execution would be incorrect.
  if (ev.time < window_end_ && t_current_partition >= 0)
    throw std::logic_error(
        "cross-partition event violates lookahead (delay too small)");
  std::lock_guard<std::mutex> lock(partitions_[dst_part]->inbox_mutex);
  partitions_[dst_part]->inbox.push_back(std::move(ev));
}

void Simulation::send_on_port(ComponentId src, PortId port,
                              SimTime extra_delay,
                              std::unique_ptr<Payload> payload,
                              std::int32_t priority) {
  const auto& ports = port_links_.at(src);
  if (port >= ports.size() || ports[port] == -1)
    throw std::logic_error("send on unconnected port of " +
                           components_[src]->name());
  const Link& link = links_[static_cast<std::size_t>(ports[port])];
  const ComponentId dst = (link.a == src && link.port_a == port) ? link.b : link.a;
  const PortId dst_port =
      (link.a == src && link.port_a == port) ? link.port_b : link.port_a;
  const SimTime when =
      saturating_add(t_current_time, saturating_add(link.latency, extra_delay));
  schedule(src, dst, dst_port, when, std::move(payload), priority);
}

void Simulation::init_components() {
  if (initialized_) return;  // resuming a paused run must not re-init
  initialized_ = true;
  t_current_time = 0;
  for (auto& c : components_) c->init();
}

void Simulation::finish_components() {
  for (auto& c : components_) c->finish();
}

void Simulation::dispatch(Event& ev, std::uint64_t& counter) {
  t_current_time = ev.time;
  Component& dst = *components_[ev.dst];
  if (obs::enabled()) {
    const std::uint64_t t0 = obs::now_ns();
    dst.handle_event(ev.port, std::move(ev.payload));
    dst.obs_busy_ns_ += obs::now_ns() - t0;
  } else {
    dst.handle_event(ev.port, std::move(ev.payload));
  }
  ++counter;
}

void Simulation::fold_obs_stats(const SimStats& stats) {
  if (!obs::enabled()) {
    // Keep the accumulators clean even if obs was switched off mid-run.
    for (auto& c : components_) c->obs_busy_ns_ = 0;
    return;
  }
  SimMetrics& m = sim_metrics();
  m.events.add(stats.events_processed);
  m.heap_high_water.max(static_cast<double>(stats.heap_high_water));
  for (auto& c : components_) {
    if (c->obs_busy_ns_ == 0) continue;
    // Registration is idempotent and cold (once per component per run end).
    obs::counter(busy_counter_name(c->name())).add(c->obs_busy_ns_);
    c->obs_busy_ns_ = 0;
  }
}

SimStats Simulation::run(SimTime until) {
  SimStats stats;
  running_ = true;
  stop_requested_ = false;
  parallel_mode_ = false;
  t_current_partition = -1;
  init_components();
  while (!queue_.empty() && !stop_requested_) {
    if (queue_.top().time > until) break;
    stats.heap_high_water =
        std::max<std::uint64_t>(stats.heap_high_water, queue_.size());
    Event ev = queue_.pop();
    dispatch(ev, stats.events_processed);
  }
  now_ = std::min(t_current_time, until);
  stats.end_time = now_;
  running_ = false;
  finish_components();
  events_processed_ += stats.events_processed;
  fold_obs_stats(stats);
  return stats;
}

SimTime Simulation::compute_lookahead() const {
  SimTime lookahead = kNever;
  for (const Link& link : links_) {
    if (components_[link.a]->partition() != components_[link.b]->partition())
      lookahead = std::min(lookahead, link.latency);
  }
  return lookahead;
}

void Simulation::auto_partition(std::uint32_t parts) {
  // Union components joined by zero-latency links; such pairs must share a
  // partition because they provide no lookahead.
  std::vector<std::uint32_t> root(components_.size());
  std::iota(root.begin(), root.end(), 0u);
  auto find = [&](std::uint32_t x) {
    while (root[x] != x) x = root[x] = root[root[x]];
    return x;
  };
  for (const Link& link : links_)
    if (link.latency == 0) root[find(link.a)] = find(link.b);

  std::vector<std::int64_t> group_part(components_.size(), -1);
  std::uint32_t next = 0;
  for (ComponentId c = 0; c < components_.size(); ++c) {
    const std::uint32_t g = find(c);
    if (group_part[g] < 0) group_part[g] = next++ % parts;
    components_[c]->set_partition(static_cast<std::uint32_t>(group_part[g]));
  }
}

SimStats Simulation::run_parallel(unsigned num_threads, SimTime until) {
  if (num_threads <= 1) return run(until);

  const bool user_partitioned = std::any_of(
      components_.begin(), components_.end(),
      [](const auto& c) { return c->partition() != 0; });
  if (!user_partitioned) auto_partition(num_threads);

  std::uint32_t num_parts = 0;
  for (const auto& c : components_)
    num_parts = std::max(num_parts, c->partition() + 1);

  const SimTime lookahead = compute_lookahead();
  if (lookahead == 0) {
    FTBESST_WARN << "zero cross-partition lookahead; falling back to serial";
    return run(until);
  }

  SimStats stats;
  running_ = true;
  stop_requested_ = false;
  parallel_mode_ = true;
  partitions_.clear();
  for (std::uint32_t p = 0; p < num_parts; ++p)
    partitions_.push_back(std::make_unique<Partition>());

  init_components();
  // Distribute any events injected before run (from init() or externally)
  // out of the serial queue into the partition queues.
  while (!queue_.empty()) {
    Event ev = queue_.pop();
    partitions_[components_[ev.dst]->partition()]->queue.push(std::move(ev));
  }

  bool done = false;
  std::barrier window_barrier(static_cast<std::ptrdiff_t>(num_parts) + 1);

  auto worker = [&](std::uint32_t part) {
    Partition& mine = *partitions_[part];
    for (;;) {
      window_barrier.arrive_and_wait();  // window published by coordinator
      if (done) return;
      t_current_partition = static_cast<std::int64_t>(part);
      while (!mine.queue.empty() && mine.queue.top().time < window_end_) {
        mine.heap_high_water =
            std::max<std::uint64_t>(mine.heap_high_water, mine.queue.size());
        Event ev = mine.queue.pop();
        dispatch(ev, mine.events_processed);
      }
      t_current_partition = -1;
      window_barrier.arrive_and_wait();  // window complete
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(num_parts);
  for (std::uint32_t p = 0; p < num_parts; ++p) threads.emplace_back(worker, p);

  SimTime last_time = 0;
  for (;;) {
    // Merge inboxes, then find the globally earliest pending event.
    SimTime next_time = kNever;
    for (auto& part : partitions_) {
      for (Event& ev : part->inbox) {
        partitions_[components_[ev.dst]->partition()]->queue.push(
            std::move(ev));
      }
      part->inbox.clear();
    }
    for (auto& part : partitions_)
      if (!part->queue.empty())
        next_time = std::min(next_time, part->queue.top().time);

    if (next_time == kNever || next_time > until || stop_requested_) {
      done = true;
      window_barrier.arrive_and_wait();
      break;
    }
    last_time = std::min(next_time, until);
    window_end_ = std::min(saturating_add(next_time, lookahead),
                           saturating_add(until, 1));
    ++stats.windows;
    window_barrier.arrive_and_wait();  // start window
    window_barrier.arrive_and_wait();  // end window
  }
  for (auto& t : threads) t.join();

  for (auto& part : partitions_) {
    stats.events_processed += part->events_processed;
    stats.heap_high_water =
        std::max(stats.heap_high_water, part->heap_high_water);
    // Return undrained events to the serial queue so a later run() resumes.
    while (!part->queue.empty()) queue_.push(part->queue.pop());
  }
  partitions_.clear();
  parallel_mode_ = false;
  now_ = std::min(last_time, until);
  stats.end_time = now_;
  running_ = false;
  finish_components();
  events_processed_ += stats.events_processed;
  fold_obs_stats(stats);
  return stats;
}

}  // namespace ftbesst::sim
