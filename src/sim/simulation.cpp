#include "sim/simulation.hpp"

#include <algorithm>
#include <barrier>
#include <map>
#include <numeric>
#include <stdexcept>
#include <thread>

#include "obs/obs.hpp"
#include "sim/detail/tls.hpp"
#include "util/log.hpp"

namespace ftbesst::sim {

namespace detail {
thread_local SimTime t_current_time = 0;
thread_local std::int64_t t_current_partition = -1;
}  // namespace detail

namespace {
using detail::t_current_partition;
using detail::t_current_time;

SimTime saturating_add(SimTime a, SimTime b) noexcept {
  return (kNever - a < b) ? kNever : a + b;
}

struct SimMetrics {
  obs::Counter events = obs::counter("sim.events");
  obs::Gauge heap_high_water = obs::gauge("sim.heap_high_water");
};

SimMetrics& sim_metrics() {
  static SimMetrics m;
  return m;
}

// Group per-component busy time by component *kind*: trailing instance
// digits (and any separator left dangling) are stripped, so "rank0".."rank7"
// all fold into "sim.busy_ns.rank".
std::string busy_counter_name(const std::string& component_name) {
  std::string_view base = component_name;
  while (!base.empty() && base.back() >= '0' && base.back() <= '9')
    base.remove_suffix(1);
  while (!base.empty() &&
         (base.back() == '_' || base.back() == '.' || base.back() == '-'))
    base.remove_suffix(1);
  if (base.empty()) base = component_name;
  return "sim.busy_ns." + std::string(base);
}
}  // namespace

void Simulation::register_component(std::unique_ptr<Component> component) {
  if (running_) throw std::logic_error("cannot add components while running");
  component->sim_ = this;
  component->id_ = static_cast<ComponentId>(components_.size());
  components_.push_back(std::move(component));
  port_links_.emplace_back();
  src_seq_.push_back(0);
}

Component& Simulation::component(ComponentId id) {
  return *components_.at(id);
}

std::uint64_t counter_value(const CounterTotals& totals,
                            std::string_view name) {
  const auto it = std::lower_bound(
      totals.begin(), totals.end(), name,
      [](const auto& entry, std::string_view key) { return entry.first < key; });
  if (it == totals.end() || it->first != name)
    throw std::out_of_range("no such counter: " + std::string(name));
  return it->second;
}

CounterTotals Simulation::aggregate_counters() const {
  CounterTotals totals;
  for (const auto& component : components_) {
    const std::uint64_t mult = component->multiplicity();
    for (const auto& [name, value] : component->counters())
      totals.emplace_back(name, value * mult);
  }
  std::sort(totals.begin(), totals.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  // Sum duplicates in place (same counter bumped by several components).
  std::size_t out = 0;
  for (std::size_t i = 0; i < totals.size(); ++i) {
    if (out > 0 && totals[out - 1].first == totals[i].first) {
      totals[out - 1].second += totals[i].second;
    } else {
      if (out != i) totals[out] = std::move(totals[i]);
      ++out;
    }
  }
  totals.resize(out);
  return totals;
}

void Simulation::connect(ComponentId a, PortId port_a, ComponentId b,
                         PortId port_b, SimTime latency) {
  if (a >= components_.size() || b >= components_.size())
    throw std::out_of_range("connect: unknown component");
  const auto link_index = static_cast<std::int64_t>(links_.size());
  links_.push_back(Link{a, port_a, b, port_b, latency});
  auto attach = [&](ComponentId c, PortId p) {
    auto& ports = port_links_[c];
    if (ports.size() <= p) ports.resize(p + 1, -1);
    if (ports[p] != -1)
      throw std::logic_error("connect: port already connected on " +
                             components_[c]->name());
    ports[p] = link_index;
  };
  attach(a, port_a);
  attach(b, port_b);
}

void Simulation::schedule(ComponentId src, ComponentId dst, PortId port,
                          SimTime time, std::unique_ptr<Payload> payload,
                          std::int32_t priority) {
  if (dst >= components_.size())
    throw std::out_of_range("schedule: unknown destination");
  Event ev;
  ev.time = time;
  ev.priority = priority;
  ev.src = src;
  ev.src_seq = (src == kNoComponent) ? src_seq_[dst]++ : src_seq_[src]++;
  ev.dst = dst;
  ev.port = port;
  ev.payload = std::move(payload);

  if (!parallel_mode_) {
    queue_.push(std::move(ev));
    return;
  }
  const std::uint32_t dst_part = component_partition_[dst];
  if (t_current_partition == static_cast<std::int64_t>(dst_part)) {
    partitions_[dst_part].queue.push(std::move(ev));
    return;
  }
  if (t_current_partition >= 0) {
    // Cross-partition from inside a round: must not undercut the
    // destination's published bound, or the conservative execution would be
    // incorrect (the destination may already have drained past ev.time).
    if (ev.time < partitions_[dst_part].bound)
      throw std::logic_error(
          "cross-partition event violates lookahead (delay too small)");
    partitions_[static_cast<std::size_t>(t_current_partition)]
        .outbox[dst_part]
        .push_back(std::move(ev));
    return;
  }
  // Outside any round (init, or the coordinator between rounds): workers are
  // quiescent, the destination queue is safe to touch directly.
  partitions_[dst_part].queue.push(std::move(ev));
}

void Simulation::send_on_port(ComponentId src, PortId port,
                              SimTime extra_delay,
                              std::unique_ptr<Payload> payload,
                              std::int32_t priority) {
  const auto& ports = port_links_.at(src);
  if (port >= ports.size() || ports[port] == -1)
    throw std::logic_error("send on unconnected port of " +
                           components_[src]->name());
  const Link& link = links_[static_cast<std::size_t>(ports[port])];
  const ComponentId dst = (link.a == src && link.port_a == port) ? link.b : link.a;
  const PortId dst_port =
      (link.a == src && link.port_a == port) ? link.port_b : link.port_a;
  const SimTime when =
      saturating_add(t_current_time, saturating_add(link.latency, extra_delay));
  schedule(src, dst, dst_port, when, std::move(payload), priority);
}

void Simulation::init_components() {
  if (initialized_) return;  // resuming a paused run must not re-init
  initialized_ = true;
  t_current_time = 0;
  for (auto& c : components_) c->init();
}

void Simulation::finish_components() {
  for (auto& c : components_) c->finish();
}

void Simulation::dispatch(Event& ev, std::uint64_t& counter) {
  t_current_time = ev.time;
  Component& dst = *components_[ev.dst];
  if (obs::enabled()) {
    const std::uint64_t t0 = obs::now_ns();
    dst.handle_event(ev.port, std::move(ev.payload));
    dst.obs_busy_ns_ += obs::now_ns() - t0;
  } else {
    dst.handle_event(ev.port, std::move(ev.payload));
  }
  ++counter;
}

void Simulation::fold_obs_stats(const SimStats& stats) {
  if (!obs::enabled()) {
    // Keep the accumulators clean even if obs was switched off mid-run.
    for (auto& c : components_) c->obs_busy_ns_ = 0;
    return;
  }
  SimMetrics& m = sim_metrics();
  m.events.add(stats.events_processed);
  m.heap_high_water.max(static_cast<double>(stats.heap_high_water));
  for (auto& c : components_) {
    if (c->obs_busy_ns_ == 0) continue;
    // Registration is idempotent and cold (once per component per run end).
    obs::counter(busy_counter_name(c->name())).add(c->obs_busy_ns_);
    c->obs_busy_ns_ = 0;
  }
}

SimStats Simulation::run(SimTime until) {
  SimStats stats;
  running_ = true;
  stop_requested_.store(false, std::memory_order_relaxed);
  parallel_mode_ = false;
  t_current_partition = -1;
  init_components();
  while (!queue_.empty() && !stop_requested()) {
    if (queue_.top().time > until) break;
    stats.heap_high_water =
        std::max<std::uint64_t>(stats.heap_high_water, queue_.size());
    Event ev = queue_.pop();
    dispatch(ev, stats.events_processed);
  }
  now_ = std::min(t_current_time, until);
  stats.end_time = now_;
  running_ = false;
  finish_components();
  events_processed_ += stats.events_processed;
  fold_obs_stats(stats);
  return stats;
}

void Simulation::build_partition_topology(std::uint32_t num_parts) {
  component_partition_.resize(components_.size());
  for (ComponentId c = 0; c < components_.size(); ++c)
    component_partition_[c] = components_[c]->partition();

  global_min_la_ = kNever;
  std::map<std::pair<std::uint32_t, std::uint32_t>, SimTime> pair_la;
  for (const Link& link : links_) {
    const std::uint32_t pa = component_partition_[link.a];
    const std::uint32_t pb = component_partition_[link.b];
    if (pa == pb) continue;
    global_min_la_ = std::min(global_min_la_, link.latency);
    auto relax = [&](std::uint32_t from, std::uint32_t to) {
      auto [it, fresh] = pair_la.try_emplace({from, to}, link.latency);
      if (!fresh) it->second = std::min(it->second, link.latency);
    };
    relax(pa, pb);
    relax(pb, pa);
  }
  peer_links_.assign(num_parts, {});
  for (const auto& [pair, la] : pair_la)
    peer_links_[pair.first].emplace_back(pair.second, la);
}

void Simulation::auto_partition(std::uint32_t parts) {
  // Union components joined by zero-latency links; such pairs must share a
  // partition because they provide no lookahead.
  std::vector<std::uint32_t> root(components_.size());
  std::iota(root.begin(), root.end(), 0u);
  auto find = [&](std::uint32_t x) {
    while (root[x] != x) x = root[x] = root[root[x]];
    return x;
  };
  for (const Link& link : links_)
    if (link.latency == 0) root[find(link.a)] = find(link.b);

  std::vector<std::int64_t> group_part(components_.size(), -1);
  std::uint32_t next = 0;
  for (ComponentId c = 0; c < components_.size(); ++c) {
    const std::uint32_t g = find(c);
    if (group_part[g] < 0) group_part[g] = next++ % parts;
    components_[c]->set_partition(static_cast<std::uint32_t>(group_part[g]));
  }
}

SimStats Simulation::run_parallel(unsigned num_threads, SimTime until) {
  if (num_threads <= 1) return run(until);

  const bool user_partitioned = std::any_of(
      components_.begin(), components_.end(),
      [](const auto& c) { return c->partition() != 0; });
  if (!user_partitioned) auto_partition(num_threads);

  std::uint32_t num_parts = 0;
  for (const auto& c : components_)
    num_parts = std::max(num_parts, c->partition() + 1);

  build_partition_topology(num_parts);
  // global_min_la_ is 0 exactly when a zero-latency link crosses partitions
  // (kNever when no link crosses at all, which is fine: independent
  // partitions drain without any bound).
  if (global_min_la_ == 0) {
    FTBESST_WARN << "zero cross-partition lookahead; falling back to serial";
    return run(until);
  }

  SimStats stats;
  running_ = true;
  stop_requested_.store(false, std::memory_order_relaxed);
  parallel_mode_ = true;
  partitions_.clear();
  partitions_.resize(num_parts);
  for (auto& part : partitions_) part.outbox.resize(num_parts);

  init_components();
  // Distribute any events injected before run (from init() or externally)
  // out of the serial queue into the partition queues.
  while (!queue_.empty()) {
    Event ev = queue_.pop();
    partitions_[component_partition_[ev.dst]].queue.push(std::move(ev));
  }

  // Round state shared coordinator <-> workers; every field below is written
  // by the coordinator between rounds and read by workers inside a round,
  // with the barrier providing the synchronization both ways.
  bool done = false;
  std::vector<std::uint32_t> active;
  std::atomic<std::size_t> cursor{0};
  std::barrier round_barrier(static_cast<std::ptrdiff_t>(num_threads));

  auto drain_partition = [&](std::uint32_t part) {
    Partition& mine = partitions_[part];
    t_current_partition = static_cast<std::int64_t>(part);
    const SimTime bound = mine.bound;
    while (!mine.queue.empty()) {
      const SimTime top = mine.queue.top().time;
      if (top >= bound || top > until) break;
      mine.heap_high_water =
          std::max<std::uint64_t>(mine.heap_high_water, mine.queue.size());
      Event ev = mine.queue.pop();
      dispatch(ev, mine.events_processed);
    }
    t_current_partition = -1;
  };

  // Workers (and the coordinator, which helps) claim active partitions from
  // the shared cursor; each partition is drained by exactly one thread.
  auto work_round = [&]() {
    for (std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
         i < active.size();
         i = cursor.fetch_add(1, std::memory_order_relaxed))
      drain_partition(active[i]);
  };
  auto worker = [&]() {
    for (;;) {
      round_barrier.arrive_and_wait();  // round published by coordinator
      if (done) return;
      work_round();
      round_barrier.arrive_and_wait();  // round complete
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(num_threads - 1);
  for (unsigned t = 1; t < num_threads; ++t) threads.emplace_back(worker);

  // Scratch reused across rounds.
  std::vector<SimTime> next(num_parts, kNever);
  std::vector<SimTime> eot(num_parts, kNever);
  std::vector<char> settled(num_parts, 0);
  SimTime last_time = 0;
  for (;;) {
    // Batched cross-partition merge. Workers are quiescent between rounds,
    // so outboxes move into destination queues without locks.
    for (auto& from : partitions_)
      for (std::uint32_t q = 0; q < num_parts; ++q) {
        for (Event& ev : from.outbox[q]) partitions_[q].queue.push(std::move(ev));
        from.outbox[q].clear();
      }

    SimTime global_next = kNever;
    for (std::uint32_t p = 0; p < num_parts; ++p) {
      next[p] =
          partitions_[p].queue.empty() ? kNever : partitions_[p].queue.top().time;
      global_next = std::min(global_next, next[p]);
    }
    if (global_next == kNever || global_next > until || stop_requested()) {
      done = true;
      round_barrier.arrive_and_wait();
      break;
    }
    last_time = std::min(global_next, until);

    // Earliest-output-time fixed point (the CMB null-message bound): eot[q]
    // lower-bounds the time of anything partition q could ever execute or
    // emit from now on, accounting for transitive feedback through other
    // partitions. Settle partitions in eot order (Dijkstra over the
    // partition graph; sources are the queue heads, edges are the per-pair
    // minimum link latencies, plus an implicit complete graph at
    // global_min_la_ that keeps link-less schedule_to deliveries safe).
    std::copy(next.begin(), next.end(), eot.begin());
    std::fill(settled.begin(), settled.end(), 0);
    for (std::uint32_t iter = 0; iter < num_parts; ++iter) {
      std::uint32_t u = num_parts;
      SimTime best = kNever;
      for (std::uint32_t p = 0; p < num_parts; ++p)
        if (!settled[p] && eot[p] < best) {
          best = eot[p];
          u = p;
        }
      if (u == num_parts) break;  // everything left is at kNever
      settled[u] = 1;
      const SimTime via_floor = saturating_add(best, global_min_la_);
      for (std::uint32_t p = 0; p < num_parts; ++p)
        if (!settled[p]) eot[p] = std::min(eot[p], via_floor);
      for (const auto& [q, la] : peer_links_[u])
        if (!settled[q]) eot[q] = std::min(eot[q], saturating_add(best, la));
    }

    // Per-partition bound = earliest possible future arrival from any other
    // partition. The floor term uses the two smallest eot values so that
    // min over q != p is O(1) per partition.
    SimTime min1 = kNever, min2 = kNever;
    std::uint32_t argmin = 0;
    for (std::uint32_t p = 0; p < num_parts; ++p) {
      if (eot[p] < min1) {
        min2 = min1;
        min1 = eot[p];
        argmin = p;
      } else {
        min2 = std::min(min2, eot[p]);
      }
    }
    active.clear();
    for (std::uint32_t p = 0; p < num_parts; ++p) {
      const SimTime others = (p == argmin) ? min2 : min1;
      SimTime bound = saturating_add(others, global_min_la_);
      for (const auto& [q, la] : peer_links_[p])
        bound = std::min(bound, saturating_add(eot[q], la));
      partitions_[p].bound = bound;
      // Selective wake: only partitions with work inside their bound (and
      // the horizon) join this round.
      if (next[p] < bound && next[p] <= until) active.push_back(p);
    }
    cursor.store(0, std::memory_order_relaxed);
    ++stats.windows;
    round_barrier.arrive_and_wait();  // publish round
    work_round();                     // coordinator helps drain
    round_barrier.arrive_and_wait();  // round complete
  }
  for (auto& t : threads) t.join();

  for (auto& part : partitions_) {
    stats.events_processed += part.events_processed;
    stats.heap_high_water =
        std::max(stats.heap_high_water, part.heap_high_water);
    // Return undrained events to the serial queue so a later run() resumes.
    // (Outboxes are empty here: the merge at the top of the final round ran
    // before the termination check.)
    while (!part.queue.empty()) queue_.push(part.queue.pop());
  }
  partitions_.clear();
  parallel_mode_ = false;
  now_ = std::min(last_time, until);
  stats.end_time = now_;
  running_ = false;
  finish_components();
  events_processed_ += stats.events_processed;
  fold_obs_stats(stats);
  return stats;
}

}  // namespace ftbesst::sim
