#pragma once
// Analytic per-level checkpoint cost composition.
//
// The paper observes that each FTI level stresses a different subsystem:
// "local storage (Level 1), communication and network congestion (Level 2),
// computational performance (Level 3) and write speed to the parallel file
// system (Level 4)". This model composes those terms from first principles.
// It serves two roles:
//  * the synthetic testbed uses it (plus hidden perturbations and noise) as
//    ground truth to benchmark against, and
//  * forward-looking DSE (bench_ext_l3l4) evaluates levels the case study
//    could not benchmark.

#include <cstdint>

#include "ft/fti.hpp"

namespace ftbesst::ft {

struct StorageParams {
  double local_write_bw = 1.0e9;  ///< node-local storage write (B/s)
  double local_latency = 2e-3;    ///< file create/metadata latency (s)
  double nic_bw = 6.0e9;          ///< per-node NIC bandwidth (B/s)
  double nic_latency = 5e-6;      ///< message latency (s)
  double rs_encode_rate = 1.2e9;  ///< RS-encode throughput per node (B/s
                                  ///< of data per parity shard)
  double pfs_bw = 40.0e9;         ///< aggregate parallel-FS write bw (B/s)
  double pfs_latency = 15e-3;     ///< PFS open/commit latency (s)
  double sync_latency = 20e-6;    ///< per-tree-level coordination cost (s)
  double congestion_per_node = 2e-5;  ///< network sharing penalty slope
};

class CheckpointCostModel {
 public:
  CheckpointCostModel(StorageParams storage, FtiConfig fti);

  /// Time (seconds) for one coordinated checkpoint instance at `level`,
  /// with `bytes_per_rank` of protected state, across `ranks` ranks.
  [[nodiscard]] double cost(Level level, std::uint64_t bytes_per_rank,
                            std::int64_t ranks) const;

  /// Restart (recovery) time from a `level` checkpoint — dominated by
  /// reading the checkpoint back through the same path, plus rebuild work
  /// for encoded levels.
  [[nodiscard]] double restart_cost(Level level, std::uint64_t bytes_per_rank,
                                    std::int64_t ranks) const;

  [[nodiscard]] const StorageParams& storage() const noexcept {
    return storage_;
  }
  [[nodiscard]] const FtiConfig& fti() const noexcept { return fti_; }

 private:
  [[nodiscard]] double coordination(std::int64_t ranks) const;
  [[nodiscard]] double bytes_per_node(std::uint64_t bytes_per_rank) const;

  StorageParams storage_;
  FtiConfig fti_;
};

}  // namespace ftbesst::ft
