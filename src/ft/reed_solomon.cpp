#include "ft/reed_solomon.hpp"

#include <stdexcept>

#include "ft/gf256.hpp"

namespace ftbesst::ft {

ReedSolomon::ReedSolomon(std::size_t data_shards, std::size_t parity_shards)
    : k_(data_shards), m_(parity_shards) {
  if (k_ < 1 || m_ < 1 || k_ + m_ > 255)
    throw std::invalid_argument(
        "reed-solomon requires 1 <= k, 1 <= m, k+m <= 255");
}

std::uint8_t ReedSolomon::coeff(std::size_t row, std::size_t col) const {
  if (row < k_) return row == col ? 1 : 0;
  // Cauchy element 1 / (x_i + y_j) with x_i = k + parity index, y_j = j.
  // All x_i, y_j are distinct field elements, so x_i + y_j (XOR) != 0 and
  // every square submatrix is invertible (MDS property).
  const auto xi = static_cast<std::uint8_t>(row);
  const auto yj = static_cast<std::uint8_t>(col);
  return GF256::inv(GF256::add(xi, yj));
}

std::vector<std::vector<std::uint8_t>> ReedSolomon::encode(
    const std::vector<std::vector<std::uint8_t>>& data) const {
  if (data.size() != k_)
    throw std::invalid_argument("encode: expected k data shards");
  const std::size_t len = data.front().size();
  for (const auto& shard : data)
    if (shard.size() != len)
      throw std::invalid_argument("encode: shard length mismatch");

  std::vector<std::vector<std::uint8_t>> parity(
      m_, std::vector<std::uint8_t>(len, 0));
  for (std::size_t p = 0; p < m_; ++p) {
    auto& out = parity[p];
    for (std::size_t j = 0; j < k_; ++j) {
      const std::uint8_t c = coeff(k_ + p, j);
      const auto& in = data[j];
      for (std::size_t b = 0; b < len; ++b)
        out[b] = GF256::add(out[b], GF256::mul(c, in[b]));
    }
  }
  return parity;
}

void ReedSolomon::reconstruct(std::vector<std::vector<std::uint8_t>>& shards,
                              const std::vector<bool>& present) const {
  const std::size_t total = k_ + m_;
  if (shards.size() != total || present.size() != total)
    throw std::invalid_argument("reconstruct: expected k+m shards/flags");

  std::vector<std::size_t> alive;
  for (std::size_t i = 0; i < total; ++i)
    if (present[i]) alive.push_back(i);
  if (alive.size() < k_)
    throw std::runtime_error("too many erasures: unrecoverable");

  std::size_t len = 0;
  for (std::size_t i : alive) len = std::max(len, shards[i].size());
  for (std::size_t i : alive)
    if (shards[i].size() != len)
      throw std::invalid_argument("reconstruct: live shard length mismatch");

  // Take the first k surviving rows of the generator matrix; invert that
  // k x k system to recover the data shards, then re-encode parity.
  std::vector<std::vector<std::uint8_t>> a(
      k_, std::vector<std::uint8_t>(k_, 0));
  std::vector<const std::vector<std::uint8_t>*> rhs(k_, nullptr);
  for (std::size_t r = 0; r < k_; ++r) {
    for (std::size_t c = 0; c < k_; ++c) a[r][c] = coeff(alive[r], c);
    rhs[r] = &shards[alive[r]];
  }

  // Gauss–Jordan over GF(256), building the inverse applied to rhs lazily:
  // we track an explicit inverse matrix so the byte loops run once.
  std::vector<std::vector<std::uint8_t>> inv(
      k_, std::vector<std::uint8_t>(k_, 0));
  for (std::size_t i = 0; i < k_; ++i) inv[i][i] = 1;
  for (std::size_t col = 0; col < k_; ++col) {
    std::size_t pivot = col;
    while (pivot < k_ && a[pivot][col] == 0) ++pivot;
    if (pivot == k_) throw std::runtime_error("singular decode matrix");
    // Swap rows of the augmented [A | I] system only; `rhs` stays in the
    // original alive-row order because the finished `inv` is A^{-1} in that
    // original indexing.
    std::swap(a[pivot], a[col]);
    std::swap(inv[pivot], inv[col]);
    const std::uint8_t d = GF256::inv(a[col][col]);
    for (std::size_t c = 0; c < k_; ++c) {
      a[col][c] = GF256::mul(a[col][c], d);
      inv[col][c] = GF256::mul(inv[col][c], d);
    }
    for (std::size_t r = 0; r < k_; ++r) {
      if (r == col || a[r][col] == 0) continue;
      const std::uint8_t f = a[r][col];
      for (std::size_t c = 0; c < k_; ++c) {
        a[r][c] = GF256::sub(a[r][c], GF256::mul(f, a[col][c]));
        inv[r][c] = GF256::sub(inv[r][c], GF256::mul(f, inv[col][c]));
      }
    }
  }

  // data[j] = sum_r inv[j][r] * rhs[r].
  std::vector<std::vector<std::uint8_t>> data(
      k_, std::vector<std::uint8_t>(len, 0));
  for (std::size_t j = 0; j < k_; ++j) {
    for (std::size_t r = 0; r < k_; ++r) {
      const std::uint8_t c = inv[j][r];
      if (c == 0) continue;
      const auto& src = *rhs[r];
      auto& dst = data[j];
      for (std::size_t b = 0; b < len; ++b)
        dst[b] = GF256::add(dst[b], GF256::mul(c, src[b]));
    }
  }
  for (std::size_t j = 0; j < k_; ++j) shards[j] = std::move(data[j]);
  auto parity = encode(std::vector<std::vector<std::uint8_t>>(
      shards.begin(), shards.begin() + static_cast<std::ptrdiff_t>(k_)));
  for (std::size_t p = 0; p < m_; ++p) shards[k_ + p] = std::move(parity[p]);
}

}  // namespace ftbesst::ft
