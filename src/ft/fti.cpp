#include "ft/fti.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <stdexcept>

namespace ftbesst::ft {

std::string to_string(Level level) {
  switch (level) {
    case Level::kL1: return "L1";
    case Level::kL2: return "L2";
    case Level::kL3: return "L3";
    case Level::kL4: return "L4";
  }
  return "?";
}

std::string to_string(FailureKind kind) {
  switch (kind) {
    case FailureKind::kProcessCrash: return "crash";
    case FailureKind::kNodeLoss: return "loss";
    case FailureKind::kSilentCorruption: return "sdc";
  }
  return "?";
}

void FtiConfig::validate(std::int64_t ranks) const {
  if (group_size < 2)
    throw std::invalid_argument("FTI group_size must be >= 2");
  if (node_size < 1)
    throw std::invalid_argument("FTI node_size must be >= 1");
  if (l2_partners < 1 || l2_partners >= group_size)
    throw std::invalid_argument("l2_partners must be in [1, group_size)");
  if (ranks < 1) throw std::invalid_argument("ranks must be >= 1");
  const std::int64_t unit =
      static_cast<std::int64_t>(group_size) * node_size;
  if (ranks % unit != 0)
    throw std::invalid_argument(
        "FTI requires ranks to be a multiple of group_size*node_size (" +
        std::to_string(unit) + "), got " + std::to_string(ranks));
}

std::int64_t FtiConfig::nodes_for(std::int64_t ranks) const {
  return ranks / node_size;
}

std::int64_t FtiConfig::groups_for(std::int64_t ranks) const {
  return nodes_for(ranks) / group_size;
}

bool recoverable(Level level, const FtiConfig& config, std::int64_t ranks,
                 const FailureSet& failures) {
  config.validate(ranks);
  const std::int64_t nodes = config.nodes_for(ranks);
  std::set<std::int64_t> failed(failures.nodes.begin(), failures.nodes.end());
  for (std::int64_t n : failed)
    if (n < 0 || n >= nodes)
      throw std::out_of_range("failed node id out of range");
  if (failed.empty()) return true;

  // Process crashes never lose checkpoint files: every level recovers.
  // Silent corruption damages application state, not storage, so at the
  // recoverability layer it behaves the same way; the *freshness* rule
  // (checkpoints written after the corruption are poisoned) is enforced by
  // the injection ledger, which filters candidates by timestamp before
  // asking this predicate.
  if (failures.kind == FailureKind::kProcessCrash ||
      failures.kind == FailureKind::kSilentCorruption)
    return true;

  switch (level) {
    case Level::kL1:
      // Node loss takes the only copy with it.
      return false;
    case Level::kL2: {
      // For each failed node, at least one of its ring partners (the next
      // l2_partners nodes within the group) or itself... the node is gone,
      // so a surviving partner must hold the copy.
      for (std::int64_t n : failed) {
        const std::int64_t g = config.group_of_node(n);
        const std::int64_t base = g * config.group_size;
        const std::int64_t local = n - base;
        bool copy_survives = false;
        for (int p = 1; p <= config.l2_partners; ++p) {
          const std::int64_t partner =
              base + (local + p) % config.group_size;
          if (!failed.count(partner)) {
            copy_survives = true;
            break;
          }
        }
        if (!copy_survives) return false;
      }
      return true;
    }
    case Level::kL3: {
      // Reed-Solomon across the group tolerates floor(group/2) losses.
      std::map<std::int64_t, int> per_group;
      for (std::int64_t n : failed) ++per_group[config.group_of_node(n)];
      const int tolerance = config.group_size / 2;
      return std::all_of(per_group.begin(), per_group.end(),
                         [tolerance](const auto& kv) {
                           return kv.second <= tolerance;
                         });
    }
    case Level::kL4:
      return true;
  }
  return false;
}

CheckpointScheduler::CheckpointScheduler(std::vector<PlanEntry> plan)
    : plan_(std::move(plan)) {
  for (const PlanEntry& e : plan_)
    if (e.period < 1)
      throw std::invalid_argument("checkpoint period must be >= 1");
  std::sort(plan_.begin(), plan_.end(),
            [](const PlanEntry& a, const PlanEntry& b) {
              return static_cast<int>(a.level) < static_cast<int>(b.level);
            });
}

std::vector<Level> CheckpointScheduler::due_after(int timestep) const {
  std::vector<Level> due;
  for (const PlanEntry& e : due_entries_after(timestep)) due.push_back(e.level);
  return due;
}

std::vector<PlanEntry> CheckpointScheduler::due_entries_after(
    int timestep) const {
  std::vector<PlanEntry> due;
  if (timestep < 1) return due;
  for (const PlanEntry& e : plan_)
    if (timestep % e.period == 0) due.push_back(e);
  return due;
}

std::int64_t CheckpointScheduler::instances(int timesteps) const {
  std::int64_t total = 0;
  for (const PlanEntry& e : plan_) total += timesteps / e.period;
  return total;
}

Level CheckpointScheduler::max_level() const {
  if (plan_.empty())
    throw std::logic_error("max_level() on an empty checkpoint plan");
  return plan_.back().level;
}

}  // namespace ftbesst::ft
