#pragma once
// Multilevel checkpoint-plan optimization.
//
// The paper's future work asks to "optimize for different fault rates and
// scenarios". With FTI-style levels, failures split into classes: soft
// failures (process crashes — any level's files survive) and hard failures
// (node losses — only a sufficiently high level recovers). A two-level plan
// then takes cheap low-level checkpoints often (bounding soft-failure
// rework) and expensive high-level checkpoints rarely (bounding
// hard-failure rework). This module evaluates the first-order expected
// runtime of such plans and searches for the overhead-minimizing period
// pair — the closed-form counterpart of the fault-injection benches.

#include <cstdint>
#include <vector>

#include "ft/fti.hpp"

namespace ftbesst::ft {

struct LevelSpec {
  Level level = Level::kL1;
  double checkpoint_cost = 1.0;  ///< seconds per instance
  double restart_cost = 1.0;     ///< seconds to restore from this level
};

struct MultilevelWorkload {
  double work = 3600.0;          ///< useful compute seconds
  double system_mtbf = 600.0;    ///< all failures combined (s)
  /// Fraction of failures that are soft (recoverable from the low level);
  /// the remaining (1 - soft_fraction) require the high level.
  double soft_fraction = 0.8;
  double downtime = 10.0;        ///< per-failure downtime before recovery
};

/// First-order expected runtime of a two-level plan with low-level period
/// `tau_low` and high-level period `tau_high` (both in seconds of useful
/// work between instances; tau_high is additionally rounded up to a
/// multiple of tau_low, mirroring nested schedules). Returns +inf in
/// thrashing regimes.
[[nodiscard]] double expected_runtime_two_level(const MultilevelWorkload& w,
                                                const LevelSpec& low,
                                                const LevelSpec& high,
                                                double tau_low,
                                                double tau_high);

struct TwoLevelPlan {
  double tau_low = 0.0;
  double tau_high = 0.0;
  double expected_runtime = 0.0;
  double overhead_fraction = 0.0;  ///< expected_runtime / work - 1
};

/// Grid/refinement search for the best (tau_low, tau_high). Deterministic.
[[nodiscard]] TwoLevelPlan optimize_two_level(const MultilevelWorkload& w,
                                              const LevelSpec& low,
                                              const LevelSpec& high);

/// Degenerate single-level expected runtime (low level handles everything)
/// — matches expected_runtime_cr with the same parameters; exposed for
/// cross-checking against Young/Daly.
[[nodiscard]] double expected_runtime_single_level(
    const MultilevelWorkload& w, const LevelSpec& spec, double tau);

}  // namespace ftbesst::ft
