#pragma once
// Executable in-memory FTI runtime.
//
// checkpoint_cost.hpp models what FTI *costs*; this header implements what
// FTI *does*, at data-structure fidelity: ranks register protected buffers,
// checkpoint(level) materializes the level's storage layout (node-local
// files, partner copies, distributed Reed-Solomon shards, PFS flush),
// fail_node() destroys a node and everything it stored, and recover()
// reconstructs every rank's protected data if any surviving checkpoint
// allows — the executable counterpart of the recoverable() predicate, and
// the artifact our recoverability tests cross-validate against.
//
// Layouts per level (group of g nodes):
//   L1  each node stores its own ranks' buffers;
//   L2  L1 + each node's bundle is copied to its next l2_partners
//       neighbours in the group ring;
//   L3  the group's g node-bundles (padded to equal length) form the data
//       shards of an RS(g, g) code; parity shard i lives on group node i —
//       any f <= g/2 node losses leave >= g of 2g shards, so the group
//       reconstructs (exactly FTI's "half the group" guarantee);
//   L4  every rank's buffer is flushed to the PFS, which never fails.

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "ft/fti.hpp"
#include "ft/reed_solomon.hpp"

namespace ftbesst::ft {

class FtiRuntime {
 public:
  using Blob = std::vector<std::uint8_t>;

  FtiRuntime(FtiConfig config, std::int64_t ranks);

  [[nodiscard]] const FtiConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::int64_t ranks() const noexcept { return ranks_; }
  [[nodiscard]] std::int64_t nodes() const noexcept {
    return config_.nodes_for(ranks_);
  }

  /// Register (or replace) the protected buffer of `rank` — FTI_Protect.
  void protect(std::int64_t rank, Blob data);
  /// Current in-memory protected data of a rank. Throws if the rank's node
  /// has failed and no recovery has happened since.
  [[nodiscard]] const Blob& data(std::int64_t rank) const;

  /// Take a coordinated checkpoint at `level` — FTI_Checkpoint. Returns the
  /// checkpoint id (monotonically increasing across all levels).
  int checkpoint(Level level);

  /// Destroy a node: its ranks' live memory AND all checkpoint material it
  /// stored (local bundles, partner copies, RS shards).
  void fail_node(std::int64_t node);
  /// Crash all processes (live memory lost) but leave storage intact —
  /// the FailureKind::kProcessCrash scenario.
  void crash_processes();

  /// True while some rank's live data is unavailable.
  [[nodiscard]] bool needs_recovery() const noexcept;

  /// Attempt recovery — FTI_Recover. Tries surviving checkpoints from most
  /// recent (and, at equal recency, highest level) down; on success every
  /// rank's live data equals the recovered snapshot and the method reports
  /// the checkpoint id used. Returns std::nullopt when nothing usable
  /// survives (the application must restart from scratch).
  std::optional<int> recover();

  /// Which checkpoint id recovery would use, without mutating state.
  [[nodiscard]] std::optional<int> best_recoverable() const;

 private:
  struct Checkpoint {
    int id = 0;
    Level level = Level::kL1;
    // node -> rank -> blob, for node-local bundles (L1/L2 base copies).
    std::map<std::int64_t, std::map<std::int64_t, Blob>> local;
    // holder node -> owner node -> rank -> blob (L2 partner copies).
    std::map<std::int64_t, std::map<std::int64_t, std::map<std::int64_t, Blob>>>
        partner;
    // holder node -> (shard index -> shard) per group for L3. Shard
    // indices: [0, g) data, [g, 2g) parity; shard j of group G lives on
    // group node j % g.
    std::map<std::int64_t, std::map<std::int64_t, std::map<std::size_t, Blob>>>
        shards;
    std::map<std::int64_t, std::map<std::size_t, std::size_t>>
        bundle_sizes;  // group -> local node index -> unpadded bundle bytes
    std::map<std::int64_t, Blob> pfs;  // rank -> blob (L4)
  };

  [[nodiscard]] std::int64_t node_of_rank(std::int64_t rank) const {
    return rank / config_.node_size;
  }
  /// Serialize a node's ranks into one bundle / split it back.
  [[nodiscard]] Blob bundle_node(std::int64_t node) const;
  void unbundle_node(std::int64_t node, const Blob& bundle,
                     std::map<std::int64_t, Blob>& out) const;

  [[nodiscard]] bool try_restore(const Checkpoint& ckpt,
                                 std::map<std::int64_t, Blob>& restored) const;

  FtiConfig config_;
  std::int64_t ranks_;
  std::map<std::int64_t, Blob> live_;   // rank -> current data
  std::vector<bool> rank_alive_;
  std::vector<bool> node_failed_;
  std::vector<Checkpoint> checkpoints_;  // newest last
  int next_id_ = 1;
};

}  // namespace ftbesst::ft
