#pragma once
// Failure-log analysis.
//
// The paper's Co-Design section: hardware "failure rates ... can be found
// through various means, such as documentation or failure logs [Jauk et
// al.]". This module closes that loop: given an observed fault-event log
// (from a real machine, or from FaultProcess::sample in simulation
// studies), estimate the fault-model parameters to feed back into an
// ArchBEO — per-node MTBF, the Weibull shape of the interarrival process
// (moment matching on the coefficient of variation), and the node-loss
// fraction.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "ft/faults.hpp"

namespace ftbesst::ft {

/// One injected-fault outcome as recorded by a campaign: when and where the
/// fault struck, how (if at all) the application recovered, and what it
/// cost. `recovery_level` is the FTI level of the checkpoint restored from
/// (1..4), or 0 for a full restart from the beginning of the run.
struct FaultRecord {
  std::int64_t trial = 0;    ///< Monte-Carlo trial index the fault belongs to
  double time = 0.0;         ///< seconds since application start
  std::int64_t node = 0;     ///< node struck
  FailureKind kind = FailureKind::kNodeLoss;
  double detect_after = 0.0;       ///< detection latency (SDC only; else 0)
  int recovery_level = 0;          ///< 1..4 = FTI level restored; 0 = restart
  double lost_work_seconds = 0.0;  ///< work discarded by the rollback
  double restart_cost_seconds = 0.0;  ///< read-back / relaunch cost paid
};

/// Campaign-level record of every injected fault and its recovery outcome.
/// Serializes to CSV (for analysis via the standard table writers) and to a
/// versioned text format (`ftbesst-faultlog v1`) the injector re-ingests
/// for exact replay: `to_trace(trial)` recovers the FaultEvent sequence of
/// one trial, suitable for EngineOptions::fault_trace.
class FaultLog {
 public:
  void add(FaultRecord record) { records_.push_back(record); }
  /// Append another log's records re-tagged with trial id `trial`.
  void append_trial(const FaultLog& other, std::int64_t trial);

  [[nodiscard]] const std::vector<FaultRecord>& records() const noexcept {
    return records_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }
  [[nodiscard]] bool empty() const noexcept { return records_.empty(); }

  /// Stable, re-ingestable text form. Doubles are emitted with shortest
  /// round-trip formatting so from_text(to_text(log)) is bit-exact.
  [[nodiscard]] std::string to_text() const;
  /// Strict parser for to_text output; throws std::invalid_argument on a
  /// bad magic line, malformed record, or unknown failure kind.
  [[nodiscard]] static FaultLog from_text(std::string_view text);

  /// CSV export via the standard table writer (header + one row per fault).
  void write_csv(std::ostream& os) const;

  /// The fault schedule of one trial, time-ordered, ready to be replayed
  /// through EngineOptions::fault_trace.
  [[nodiscard]] std::vector<FaultEvent> to_trace(std::int64_t trial) const;

 private:
  std::vector<FaultRecord> records_;
};

struct FaultModelEstimate {
  double node_mtbf = 0.0;        ///< seconds (system MTBF * node count)
  double system_mtbf = 0.0;      ///< mean interarrival over the machine
  double weibull_shape = 1.0;    ///< 1 = exponential; <1 bursty; >1 regular
  double node_loss_fraction = 1.0;
  std::size_t events = 0;

  /// Construct the matching generative process.
  [[nodiscard]] FaultProcess to_process() const {
    return FaultProcess(node_mtbf, node_loss_fraction, weibull_shape);
  }
};

/// Estimate the fault model from a time-ordered event log covering a
/// machine of `nodes` nodes. Requires >= 3 events (two interarrival gaps);
/// throws std::invalid_argument otherwise or on out-of-order logs.
[[nodiscard]] FaultModelEstimate estimate_fault_model(
    const std::vector<FaultEvent>& events, std::int64_t nodes);

/// Invert the Weibull coefficient of variation: find shape k such that
/// cv(k) = sqrt(Gamma(1+2/k)/Gamma(1+1/k)^2 - 1) equals `cv`
/// (bisection on k in [0.2, 10]; clamped at the ends).
[[nodiscard]] double weibull_shape_from_cv(double cv);

/// Per-fold-group fault accounting. Under symmetry folding (sim/fold.hpp)
/// a machine model keeps one representative node per equivalence class;
/// a fault log recorded against such a model names representatives, each
/// standing for `multiplicity[g]` physical nodes' worth of exposure. This
/// scales the per-class tallies back up to machine level so loss fractions
/// of folded and unfolded studies agree.
struct FoldLossAccount {
  /// Raw logged events naming a member of each group.
  std::vector<std::uint64_t> events_per_group;
  /// Raw node-loss events (FailureKind::kNodeLoss) per group.
  std::vector<std::uint64_t> losses_per_group;
  /// Multiplicity-weighted share of machine-level faults attributed to
  /// each group (sums to 1 when any events exist, all-zero otherwise).
  std::vector<double> machine_fault_share;
  /// Machine-level event total: sum over groups of events * multiplicity.
  std::uint64_t weighted_events = 0;
  /// Machine-level node-loss fraction: weighted losses / weighted events
  /// (1.0 when the log is empty, matching FaultModelEstimate's default).
  double node_loss_fraction = 1.0;
};

/// Aggregate `events` over fold groups. `group_of_node[n]` maps a logged
/// node id to its fold group; `multiplicity[g]` is the number of physical
/// nodes group g stands for (>= 1). Throws std::invalid_argument on a node
/// id outside `group_of_node`, a group index outside `multiplicity`, or a
/// zero multiplicity.
[[nodiscard]] FoldLossAccount account_fold_losses(
    const std::vector<FaultEvent>& events,
    const std::vector<std::size_t>& group_of_node,
    const std::vector<std::uint64_t>& multiplicity);

}  // namespace ftbesst::ft
