#pragma once
// Failure-log analysis.
//
// The paper's Co-Design section: hardware "failure rates ... can be found
// through various means, such as documentation or failure logs [Jauk et
// al.]". This module closes that loop: given an observed fault-event log
// (from a real machine, or from FaultProcess::sample in simulation
// studies), estimate the fault-model parameters to feed back into an
// ArchBEO — per-node MTBF, the Weibull shape of the interarrival process
// (moment matching on the coefficient of variation), and the node-loss
// fraction.

#include <cstdint>
#include <vector>

#include "ft/faults.hpp"

namespace ftbesst::ft {

struct FaultModelEstimate {
  double node_mtbf = 0.0;        ///< seconds (system MTBF * node count)
  double system_mtbf = 0.0;      ///< mean interarrival over the machine
  double weibull_shape = 1.0;    ///< 1 = exponential; <1 bursty; >1 regular
  double node_loss_fraction = 1.0;
  std::size_t events = 0;

  /// Construct the matching generative process.
  [[nodiscard]] FaultProcess to_process() const {
    return FaultProcess(node_mtbf, node_loss_fraction, weibull_shape);
  }
};

/// Estimate the fault model from a time-ordered event log covering a
/// machine of `nodes` nodes. Requires >= 3 events (two interarrival gaps);
/// throws std::invalid_argument otherwise or on out-of-order logs.
[[nodiscard]] FaultModelEstimate estimate_fault_model(
    const std::vector<FaultEvent>& events, std::int64_t nodes);

/// Invert the Weibull coefficient of variation: find shape k such that
/// cv(k) = sqrt(Gamma(1+2/k)/Gamma(1+1/k)^2 - 1) equals `cv`
/// (bisection on k in [0.2, 10]; clamped at the ends).
[[nodiscard]] double weibull_shape_from_cv(double cv);

}  // namespace ftbesst::ft
