#include "ft/multilevel_opt.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace ftbesst::ft {

namespace {
void check_workload(const MultilevelWorkload& w) {
  if (w.work <= 0.0) throw std::invalid_argument("work must be positive");
  if (w.system_mtbf <= 0.0)
    throw std::invalid_argument("MTBF must be positive");
  if (w.soft_fraction < 0.0 || w.soft_fraction > 1.0)
    throw std::invalid_argument("soft_fraction must be in [0,1]");
  if (w.downtime < 0.0)
    throw std::invalid_argument("downtime must be >= 0");
}
void check_spec(const LevelSpec& s) {
  if (s.checkpoint_cost < 0.0 || s.restart_cost < 0.0)
    throw std::invalid_argument("level costs must be >= 0");
}
}  // namespace

double expected_runtime_two_level(const MultilevelWorkload& w,
                                  const LevelSpec& low, const LevelSpec& high,
                                  double tau_low, double tau_high) {
  check_workload(w);
  check_spec(low);
  check_spec(high);
  if (tau_low <= 0.0 || tau_high <= 0.0)
    throw std::invalid_argument("periods must be positive");
  // Nested schedule: the high level fires on a low-level boundary.
  const double tau_high_eff =
      std::ceil(tau_high / tau_low - 1e-12) * tau_low;

  const double overhead =
      1.0 + low.checkpoint_cost / tau_low + high.checkpoint_cost / tau_high_eff;
  const double lambda = 1.0 / w.system_mtbf;
  const double soft_loss = tau_low / 2.0 + low.restart_cost + w.downtime;
  const double hard_loss = tau_high_eff / 2.0 + high.restart_cost + w.downtime;
  const double waste =
      lambda * (w.soft_fraction * soft_loss +
                (1.0 - w.soft_fraction) * hard_loss);
  if (waste >= 1.0) return std::numeric_limits<double>::infinity();
  return w.work * overhead / (1.0 - waste);
}

double expected_runtime_single_level(const MultilevelWorkload& w,
                                     const LevelSpec& spec, double tau) {
  check_workload(w);
  check_spec(spec);
  if (tau <= 0.0) throw std::invalid_argument("period must be positive");
  const double overhead = 1.0 + spec.checkpoint_cost / tau;
  const double waste = (tau / 2.0 + spec.restart_cost + w.downtime) /
                       w.system_mtbf;
  if (waste >= 1.0) return std::numeric_limits<double>::infinity();
  return w.work * overhead / (1.0 - waste);
}

TwoLevelPlan optimize_two_level(const MultilevelWorkload& w,
                                const LevelSpec& low, const LevelSpec& high) {
  check_workload(w);
  check_spec(low);
  check_spec(high);

  const double tau_min = std::max(1e-3, low.checkpoint_cost / 10.0);
  const double tau_max = w.work;

  TwoLevelPlan best;
  best.expected_runtime = std::numeric_limits<double>::infinity();

  auto evaluate = [&](double tl, double th) {
    if (tl <= 0.0 || th < tl) return;
    const double t = expected_runtime_two_level(w, low, high, tl, th);
    if (t < best.expected_runtime) {
      best.expected_runtime = t;
      best.tau_low = tl;
      best.tau_high = th;
    }
  };

  // Coarse log grid, then two refinement passes around the incumbent.
  constexpr int kGrid = 32;
  const double log_lo = std::log(tau_min);
  const double log_hi = std::log(tau_max);
  for (int i = 0; i <= kGrid; ++i) {
    const double tl =
        std::exp(log_lo + (log_hi - log_lo) * i / static_cast<double>(kGrid));
    for (int j = 0; j <= kGrid; ++j) {
      const double th = std::exp(
          std::log(tl) +
          (log_hi - std::log(tl)) * j / static_cast<double>(kGrid));
      evaluate(tl, th);
    }
  }
  for (int pass = 0; pass < 2; ++pass) {
    if (!std::isfinite(best.expected_runtime)) break;
    const double tl0 = best.tau_low;
    const double th0 = best.tau_high;
    for (int i = -8; i <= 8; ++i)
      for (int j = -8; j <= 8; ++j)
        evaluate(tl0 * std::pow(1.15, i), th0 * std::pow(1.15, j));
  }
  if (std::isfinite(best.expected_runtime))
    best.overhead_fraction = best.expected_runtime / w.work - 1.0;
  return best;
}

}  // namespace ftbesst::ft
