#include "ft/fti_runtime.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace ftbesst::ft {

namespace {
void append_u64(FtiRuntime::Blob& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
}
std::uint64_t read_u64(const FtiRuntime::Blob& in, std::size_t offset) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(in.at(offset + i)) << (8 * i);
  return v;
}
}  // namespace

FtiRuntime::FtiRuntime(FtiConfig config, std::int64_t ranks)
    : config_(config), ranks_(ranks) {
  config_.validate(ranks_);
  rank_alive_.assign(static_cast<std::size_t>(ranks_), false);
  node_failed_.assign(static_cast<std::size_t>(nodes()), false);
}

void FtiRuntime::protect(std::int64_t rank, Blob data) {
  if (rank < 0 || rank >= ranks_) throw std::out_of_range("bad rank");
  live_[rank] = std::move(data);
  rank_alive_[static_cast<std::size_t>(rank)] = true;
}

const FtiRuntime::Blob& FtiRuntime::data(std::int64_t rank) const {
  if (rank < 0 || rank >= ranks_) throw std::out_of_range("bad rank");
  if (!rank_alive_[static_cast<std::size_t>(rank)])
    throw std::logic_error("rank " + std::to_string(rank) +
                           " lost its data; call recover() first");
  return live_.at(rank);
}

bool FtiRuntime::needs_recovery() const noexcept {
  return std::any_of(rank_alive_.begin(), rank_alive_.end(),
                     [](bool alive) { return !alive; });
}

FtiRuntime::Blob FtiRuntime::bundle_node(std::int64_t node) const {
  Blob out;
  for (int r = 0; r < config_.node_size; ++r) {
    const std::int64_t rank = node * config_.node_size + r;
    const Blob& blob = live_.at(rank);
    append_u64(out, blob.size());
    out.insert(out.end(), blob.begin(), blob.end());
  }
  return out;
}

void FtiRuntime::unbundle_node(std::int64_t node, const Blob& bundle,
                               std::map<std::int64_t, Blob>& out) const {
  std::size_t offset = 0;
  for (int r = 0; r < config_.node_size; ++r) {
    const std::int64_t rank = node * config_.node_size + r;
    const std::uint64_t len = read_u64(bundle, offset);
    offset += 8;
    if (offset + len > bundle.size())
      throw std::runtime_error("corrupt checkpoint bundle");
    out[rank] = Blob(bundle.begin() + static_cast<std::ptrdiff_t>(offset),
                     bundle.begin() + static_cast<std::ptrdiff_t>(offset + len));
    offset += len;
  }
}

int FtiRuntime::checkpoint(Level level) {
  if (needs_recovery())
    throw std::logic_error("cannot checkpoint with failed ranks");
  if (static_cast<std::int64_t>(live_.size()) != ranks_)
    throw std::logic_error("all ranks must protect() before checkpointing");

  Checkpoint ckpt;
  ckpt.id = next_id_++;
  ckpt.level = level;
  const std::int64_t total_nodes = nodes();
  const int g = config_.group_size;

  // Node-local bundles back every level except the PFS flush.
  if (level != Level::kL4) {
    for (std::int64_t node = 0; node < total_nodes; ++node)
      for (int r = 0; r < config_.node_size; ++r) {
        const std::int64_t rank = node * config_.node_size + r;
        ckpt.local[node][rank] = live_.at(rank);
      }
  }

  switch (level) {
    case Level::kL1:
      break;
    case Level::kL2: {
      for (std::int64_t node = 0; node < total_nodes; ++node) {
        const std::int64_t group = config_.group_of_node(node);
        const std::int64_t base = group * g;
        const std::int64_t local_index = node - base;
        for (int p = 1; p <= config_.l2_partners; ++p) {
          const std::int64_t holder = base + (local_index + p) % g;
          for (int r = 0; r < config_.node_size; ++r) {
            const std::int64_t rank = node * config_.node_size + r;
            ckpt.partner[holder][node][rank] = live_.at(rank);
          }
        }
      }
      break;
    }
    case Level::kL3: {
      ReedSolomon rs(static_cast<std::size_t>(g),
                     static_cast<std::size_t>(g));
      for (std::int64_t group = 0; group < total_nodes / g; ++group) {
        const std::int64_t base = group * g;
        std::vector<Blob> bundles;
        std::size_t max_len = 0;
        for (int j = 0; j < g; ++j) {
          bundles.push_back(bundle_node(base + j));
          ckpt.bundle_sizes[group][static_cast<std::size_t>(j)] =
              bundles.back().size();
          max_len = std::max(max_len, bundles.back().size());
        }
        for (Blob& b : bundles) b.resize(max_len, 0);
        const auto parity = rs.encode(bundles);
        for (int j = 0; j < g; ++j) {
          ckpt.shards[base + j][group][static_cast<std::size_t>(j)] =
              std::move(bundles[static_cast<std::size_t>(j)]);
          ckpt.shards[base + j][group]
                     [static_cast<std::size_t>(g + j)] =
                         parity[static_cast<std::size_t>(j)];
        }
      }
      break;
    }
    case Level::kL4: {
      for (const auto& [rank, blob] : live_) ckpt.pfs[rank] = blob;
      break;
    }
  }
  checkpoints_.push_back(std::move(ckpt));
  return checkpoints_.back().id;
}

void FtiRuntime::fail_node(std::int64_t node) {
  if (node < 0 || node >= nodes()) throw std::out_of_range("bad node");
  // Live memory of its ranks is gone.
  for (int r = 0; r < config_.node_size; ++r) {
    const std::int64_t rank = node * config_.node_size + r;
    rank_alive_[static_cast<std::size_t>(rank)] = false;
    live_.erase(rank);
  }
  // So is every piece of checkpoint material it stored. (The node is then
  // considered replaced with blank storage — future checkpoints may use
  // it again after recovery.)
  for (Checkpoint& ckpt : checkpoints_) {
    ckpt.local.erase(node);
    ckpt.partner.erase(node);
    ckpt.shards.erase(node);
  }
}

void FtiRuntime::crash_processes() {
  std::fill(rank_alive_.begin(), rank_alive_.end(), false);
  live_.clear();
}

bool FtiRuntime::try_restore(const Checkpoint& ckpt,
                             std::map<std::int64_t, Blob>& restored) const {
  const std::int64_t total_nodes = nodes();
  const int g = config_.group_size;
  restored.clear();

  switch (ckpt.level) {
    case Level::kL4:
      if (static_cast<std::int64_t>(ckpt.pfs.size()) != ranks_) return false;
      restored = ckpt.pfs;
      return true;
    case Level::kL1: {
      for (std::int64_t node = 0; node < total_nodes; ++node) {
        const auto it = ckpt.local.find(node);
        if (it == ckpt.local.end()) return false;
        for (const auto& [rank, blob] : it->second) restored[rank] = blob;
      }
      return true;
    }
    case Level::kL2: {
      for (std::int64_t node = 0; node < total_nodes; ++node) {
        if (const auto it = ckpt.local.find(node); it != ckpt.local.end()) {
          for (const auto& [rank, blob] : it->second) restored[rank] = blob;
          continue;
        }
        // Local copy gone: search surviving partner holders.
        bool found = false;
        for (const auto& [holder, owners] : ckpt.partner) {
          const auto owner_it = owners.find(node);
          if (owner_it == owners.end()) continue;
          for (const auto& [rank, blob] : owner_it->second)
            restored[rank] = blob;
          found = true;
          break;
        }
        if (!found) return false;
      }
      return true;
    }
    case Level::kL3: {
      ReedSolomon rs(static_cast<std::size_t>(g),
                     static_cast<std::size_t>(g));
      for (std::int64_t group = 0; group < total_nodes / g; ++group) {
        const std::int64_t base = group * g;
        std::vector<Blob> shards(static_cast<std::size_t>(2 * g));
        std::vector<bool> present(static_cast<std::size_t>(2 * g), false);
        std::size_t alive = 0;
        for (int j = 0; j < g; ++j) {
          const auto holder_it = ckpt.shards.find(base + j);
          if (holder_it == ckpt.shards.end()) continue;
          const auto group_it = holder_it->second.find(group);
          if (group_it == holder_it->second.end()) continue;
          for (const auto& [index, shard] : group_it->second) {
            shards[index] = shard;
            present[index] = true;
            ++alive;
          }
        }
        if (alive < static_cast<std::size_t>(g)) return false;
        try {
          rs.reconstruct(shards, present);
        } catch (const std::runtime_error&) {
          return false;
        }
        const auto sizes_it = ckpt.bundle_sizes.find(group);
        if (sizes_it == ckpt.bundle_sizes.end()) return false;
        for (int j = 0; j < g; ++j) {
          Blob bundle = shards[static_cast<std::size_t>(j)];
          bundle.resize(sizes_it->second.at(static_cast<std::size_t>(j)));
          unbundle_node(base + j, bundle, restored);
        }
      }
      return true;
    }
  }
  return false;
}

std::optional<int> FtiRuntime::best_recoverable() const {
  std::map<std::int64_t, Blob> scratch;
  for (auto it = checkpoints_.rbegin(); it != checkpoints_.rend(); ++it)
    if (try_restore(*it, scratch)) return it->id;
  return std::nullopt;
}

std::optional<int> FtiRuntime::recover() {
  std::map<std::int64_t, Blob> restored;
  for (auto it = checkpoints_.rbegin(); it != checkpoints_.rend(); ++it) {
    if (!try_restore(*it, restored)) continue;
    live_ = std::move(restored);
    std::fill(rank_alive_.begin(), rank_alive_.end(), true);
    return it->id;
  }
  return std::nullopt;
}

}  // namespace ftbesst::ft
