#pragma once
// Model of the Fault Tolerance Interface (FTI) checkpointing library
// [Bautista-Gomez et al., SC'11], the FT technique of the paper's case
// study (Table I):
//
//   Level 1  checkpoint file saved on local node storage
//   Level 2  local save AND copy sent to partner node(s) in the FTI group
//   Level 3  checkpoint files Reed-Solomon-encoded across the group
//   Level 4  all checkpoint files flushed to the parallel file system
//
// FTI organizes nodes into groups of `group_size`; each node hosts
// `node_size` ranks; the number of ranks must be a multiple of
// group_size * node_size. Recoverability per level:
//   L1: survives process crashes (files intact) but not node loss;
//   L2: survives node losses as long as, for every lost node, at least one
//       of its partner nodes in the group survives;
//   L3: survives up to floor(group_size / 2) concurrent node losses per
//       group (Reed-Solomon with group_size/2 parity);
//   L4: survives any number of node losses (PFS is stable storage).

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace ftbesst::ft {

enum class Level : int { kL1 = 1, kL2 = 2, kL3 = 3, kL4 = 4 };

[[nodiscard]] std::string to_string(Level level);

/// What kind of failure hit a node.
enum class FailureKind {
  kProcessCrash,      ///< ranks die; node (and its local storage) survive
  kNodeLoss,          ///< node and its local checkpoint files are gone
  /// Silent data corruption (soft error): the application state is wrong
  /// but the node and every checkpoint file written *before* the
  /// corruption remain intact — storage-wise this recovers like a process
  /// crash, but checkpoints taken after the corruption instant are
  /// poisoned (they snapshot corrupted state) and must not be used.
  /// Enforced by the injection ledger (inject/ledger.hpp), not here.
  kSilentCorruption
};

[[nodiscard]] std::string to_string(FailureKind kind);

struct FtiConfig {
  int group_size = 4;  ///< nodes per FTI group
  int node_size = 2;   ///< ranks per node
  /// Partner copies kept by L2 (FTI sends to neighbours in the group ring).
  int l2_partners = 1;

  /// Validates group/node sizes and the rank-count constraint
  /// ("FTI requires the number of ranks to be a multiple of
  /// group_size * node_size"). Throws std::invalid_argument on violation.
  void validate(std::int64_t ranks) const;

  [[nodiscard]] std::int64_t nodes_for(std::int64_t ranks) const;
  [[nodiscard]] std::int64_t groups_for(std::int64_t ranks) const;
  [[nodiscard]] std::int64_t group_of_node(std::int64_t node) const {
    return node / group_size;
  }
};

/// A concurrent multi-node failure event: which nodes failed and how.
struct FailureSet {
  std::vector<std::int64_t> nodes;
  FailureKind kind = FailureKind::kNodeLoss;
};

/// Can a checkpoint taken at `level` be recovered after `failures`, given
/// the group structure? Implements the Table I semantics above.
[[nodiscard]] bool recoverable(Level level, const FtiConfig& config,
                               std::int64_t ranks,
                               const FailureSet& failures);

/// A checkpointing plan entry: take a `level` checkpoint every `period`
/// timesteps. A scenario holds one entry per active level (the case study's
/// "L1 & L2" scenario has two entries, both with period 40).
struct PlanEntry {
  Level level = Level::kL1;
  int period = 40;
  /// Asynchronous (staged) checkpoint, FTI's dedicated-process flush: the
  /// application pays only a local staging cost on the critical path while
  /// the full write proceeds in the background. The checkpoint only becomes
  /// usable for recovery once the background flush completes, and a new
  /// checkpoint stalls until the previous flush is done.
  bool async = false;
};

/// Deterministic checkpoint schedule over the timestep loop of an
/// iterative solver (Fig. 3 of the paper).
class CheckpointScheduler {
 public:
  explicit CheckpointScheduler(std::vector<PlanEntry> plan);

  /// Levels due after timestep `t` (1-based), in ascending level order.
  [[nodiscard]] std::vector<Level> due_after(int timestep) const;
  /// Full plan entries due after timestep `t`, ascending level order.
  [[nodiscard]] std::vector<PlanEntry> due_entries_after(int timestep) const;
  /// Total checkpoint instances of each plan entry over `timesteps`.
  [[nodiscard]] std::int64_t instances(int timesteps) const;
  [[nodiscard]] const std::vector<PlanEntry>& plan() const noexcept {
    return plan_;
  }
  /// Highest level in the plan (determines worst-failure recoverability).
  [[nodiscard]] Level max_level() const;
  [[nodiscard]] bool empty() const noexcept { return plan_.empty(); }

 private:
  std::vector<PlanEntry> plan_;
};

}  // namespace ftbesst::ft
