#pragma once
// GF(2^8) arithmetic for Reed–Solomon erasure coding.
//
// FTI's level-3 checkpointing Reed–Solomon-encodes each node's checkpoint
// file across its group. We implement the field for real (table-based,
// generator polynomial x^8 + x^4 + x^3 + x^2 + 1, i.e. 0x11d — the AES/
// QR-code field), both because the encoder feeds the L3 cost model its
// operation counts and because recoverability claims should be executable.

#include <array>
#include <cstdint>

namespace ftbesst::ft {

class GF256 {
 public:
  /// Field addition = XOR (characteristic 2).
  [[nodiscard]] static constexpr std::uint8_t add(std::uint8_t a,
                                                  std::uint8_t b) noexcept {
    return a ^ b;
  }
  [[nodiscard]] static constexpr std::uint8_t sub(std::uint8_t a,
                                                  std::uint8_t b) noexcept {
    return a ^ b;
  }
  /// Multiplication via log/antilog tables.
  [[nodiscard]] static std::uint8_t mul(std::uint8_t a,
                                        std::uint8_t b) noexcept;
  /// Division; b must be nonzero (returns 0 if it is not, by convention —
  /// callers in the decoder guarantee nonzero pivots).
  [[nodiscard]] static std::uint8_t div(std::uint8_t a,
                                        std::uint8_t b) noexcept;
  /// Multiplicative inverse of a nonzero element.
  [[nodiscard]] static std::uint8_t inv(std::uint8_t a) noexcept;
  /// a raised to integer power n (n >= 0).
  [[nodiscard]] static std::uint8_t pow(std::uint8_t a,
                                        unsigned n) noexcept;
  /// The field generator 2^n, handy for Vandermonde construction.
  [[nodiscard]] static std::uint8_t exp(unsigned n) noexcept;

 private:
  struct Tables {
    std::array<std::uint8_t, 256> log{};
    std::array<std::uint8_t, 512> exp{};
  };
  static const Tables& tables() noexcept;
};

}  // namespace ftbesst::ft
