#include "ft/faults.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ftbesst::ft {

FaultProcess::FaultProcess(double node_mtbf_seconds,
                           double node_loss_fraction, double weibull_shape)
    : mtbf_(node_mtbf_seconds),
      loss_fraction_(node_loss_fraction),
      shape_(weibull_shape) {
  if (mtbf_ <= 0.0) throw std::invalid_argument("MTBF must be positive");
  if (loss_fraction_ < 0.0 || loss_fraction_ > 1.0)
    throw std::invalid_argument("node_loss_fraction must be in [0,1]");
  if (shape_ <= 0.0)
    throw std::invalid_argument("Weibull shape must be positive");
  // E[Weibull(k, lambda)] = lambda * Gamma(1 + 1/k); keep the mean fixed.
  scale_factor_ = 1.0 / std::tgamma(1.0 + 1.0 / shape_);
}

double FaultProcess::system_mtbf(std::int64_t nodes) const {
  if (nodes < 1) throw std::invalid_argument("nodes must be >= 1");
  return mtbf_ / static_cast<double>(nodes);
}

double FaultProcess::draw_interval(std::int64_t nodes, util::Rng& rng) const {
  const double mean = system_mtbf(nodes);
  if (shape_ == 1.0) return rng.exponential(1.0 / mean);
  // Inverse-CDF Weibull draw with the mean pinned to `mean`.
  double u = rng.uniform();
  while (u <= 0.0) u = rng.uniform();
  const double scale = mean * scale_factor_;
  return scale * std::pow(-std::log(u), 1.0 / shape_);
}

std::vector<FaultEvent> FaultProcess::sample(std::int64_t nodes,
                                             double horizon_seconds,
                                             util::Rng& rng) const {
  std::vector<FaultEvent> events;
  double t = 0.0;
  for (;;) {
    t += draw_interval(nodes, rng);
    if (t >= horizon_seconds) break;
    FaultEvent ev;
    ev.time = t;
    ev.node = static_cast<std::int64_t>(
        rng.uniform_int(static_cast<std::uint64_t>(nodes)));
    ev.kind = rng.uniform() < loss_fraction_ ? FailureKind::kNodeLoss
                                             : FailureKind::kProcessCrash;
    events.push_back(ev);
  }
  return events;
}

FaultEvent FaultProcess::next_after(double from, std::int64_t nodes,
                                    util::Rng& rng) const {
  FaultEvent ev;
  ev.time = from + draw_interval(nodes, rng);
  ev.node = static_cast<std::int64_t>(
      rng.uniform_int(static_cast<std::uint64_t>(nodes)));
  ev.kind = rng.uniform() < loss_fraction_ ? FailureKind::kNodeLoss
                                           : FailureKind::kProcessCrash;
  return ev;
}

}  // namespace ftbesst::ft
