#pragma once
// Fault processes for fault-injection simulation (Cases 2 & 4 of the
// paper's Fig. 4 taxonomy — flagged there as future work; implemented here).
//
// The standard assumption in the reliability-aware modeling literature the
// paper builds on (Zheng & Lan, Cavelan et al.) is exponentially
// distributed inter-arrival times per node; a system of n nodes then fails
// as a Poisson process with rate n/MTBF_node.

#include <cstdint>
#include <vector>

#include "ft/fti.hpp"
#include "util/rng.hpp"

namespace ftbesst::ft {

struct FaultEvent {
  double time = 0.0;       ///< seconds since application start
  std::int64_t node = 0;   ///< which node failed
  FailureKind kind = FailureKind::kNodeLoss;
  /// Detection latency after `time` (seconds). 0 for crash/loss faults,
  /// which are detected instantly by the runtime; > 0 for silent
  /// corruption, which damages state at `time` but only triggers recovery
  /// at `time + detect_after` (inject::SdcProcess draws this).
  double detect_after = 0.0;
};

class FaultProcess {
 public:
  /// `node_mtbf_seconds` is the per-node mean time between failures;
  /// `node_loss_fraction` in [0,1] is the probability a failure destroys
  /// the node's local storage (vs a recoverable process crash);
  /// `weibull_shape` selects the interarrival distribution of the renewal
  /// process: 1 (default) is exponential; < 1 gives the infant-mortality /
  /// bursty behaviour observed in HPC failure logs [Jauk et al., SC'19];
  /// > 1 gives wear-out clustering. The scale is always chosen so the mean
  /// interarrival stays `node_mtbf_seconds`.
  FaultProcess(double node_mtbf_seconds, double node_loss_fraction = 1.0,
               double weibull_shape = 1.0);

  [[nodiscard]] double node_mtbf() const noexcept { return mtbf_; }
  /// System-level MTBF for `nodes` nodes (= node MTBF / nodes).
  [[nodiscard]] double system_mtbf(std::int64_t nodes) const;

  /// Sample all fault events in [0, horizon_seconds) for a machine of
  /// `nodes` nodes, time-ordered.
  [[nodiscard]] std::vector<FaultEvent> sample(std::int64_t nodes,
                                               double horizon_seconds,
                                               util::Rng& rng) const;

  /// Time of the first fault at or after `from` (one renewal-interval draw
  /// over the whole machine; exact for the exponential shape, a renewal
  /// approximation otherwise); assigns a uniformly random node.
  [[nodiscard]] FaultEvent next_after(double from, std::int64_t nodes,
                                      util::Rng& rng) const;

  [[nodiscard]] double weibull_shape() const noexcept { return shape_; }

 private:
  /// One system-level interarrival draw at rate nodes/mtbf.
  [[nodiscard]] double draw_interval(std::int64_t nodes,
                                     util::Rng& rng) const;

  double mtbf_;
  double loss_fraction_;
  double shape_;
  double scale_factor_;  ///< Weibull scale / mean (1/Gamma(1+1/k))
};

}  // namespace ftbesst::ft
