#include "ft/fault_log.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <ostream>
#include <stdexcept>

#include "util/stats.hpp"
#include "util/table.hpp"

namespace ftbesst::ft {

namespace {

constexpr std::string_view kFaultLogMagic = "ftbesst-faultlog v1";

// Shortest round-trip double formatting (same convention as the scenario
// text format): what we print parses back to the identical bits.
std::string shortest_double(double v) {
  char buf[64];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  if (ec != std::errc{}) throw std::logic_error("double formatting failed");
  return std::string(buf, ptr);
}

double parse_double_tok(std::string_view tok) {
  double v = 0.0;
  const auto [ptr, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), v);
  if (ec != std::errc{} || ptr != tok.data() + tok.size())
    throw std::invalid_argument("faultlog: bad number '" + std::string(tok) +
                                "'");
  return v;
}

std::int64_t parse_int_tok(std::string_view tok) {
  std::int64_t v = 0;
  const auto [ptr, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), v);
  if (ec != std::errc{} || ptr != tok.data() + tok.size())
    throw std::invalid_argument("faultlog: bad integer '" + std::string(tok) +
                                "'");
  return v;
}

FailureKind parse_kind_tok(std::string_view tok) {
  if (tok == "crash") return FailureKind::kProcessCrash;
  if (tok == "loss") return FailureKind::kNodeLoss;
  if (tok == "sdc") return FailureKind::kSilentCorruption;
  throw std::invalid_argument("faultlog: unknown failure kind '" +
                              std::string(tok) + "'");
}

std::vector<std::string_view> split_ws(std::string_view line) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && line[i] == ' ') ++i;
    std::size_t j = i;
    while (j < line.size() && line[j] != ' ') ++j;
    if (j > i) out.push_back(line.substr(i, j - i));
    i = j;
  }
  return out;
}

}  // namespace

void FaultLog::append_trial(const FaultLog& other, std::int64_t trial) {
  records_.reserve(records_.size() + other.records_.size());
  for (FaultRecord r : other.records_) {
    r.trial = trial;
    records_.push_back(r);
  }
}

std::string FaultLog::to_text() const {
  std::string out(kFaultLogMagic);
  out += '\n';
  for (const FaultRecord& r : records_) {
    out += std::to_string(r.trial);
    out += ' ';
    out += shortest_double(r.time);
    out += ' ';
    out += std::to_string(r.node);
    out += ' ';
    out += to_string(r.kind);
    out += ' ';
    out += shortest_double(r.detect_after);
    out += ' ';
    out += std::to_string(r.recovery_level);
    out += ' ';
    out += shortest_double(r.lost_work_seconds);
    out += ' ';
    out += shortest_double(r.restart_cost_seconds);
    out += '\n';
  }
  return out;
}

FaultLog FaultLog::from_text(std::string_view text) {
  FaultLog log;
  std::size_t pos = 0;
  bool saw_magic = false;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, eol == std::string_view::npos ? text.size() - pos : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    if (!saw_magic) {
      if (line != kFaultLogMagic)
        throw std::invalid_argument(
            "faultlog: bad magic line (expected '" +
            std::string(kFaultLogMagic) + "')");
      saw_magic = true;
      continue;
    }
    if (line.empty()) continue;
    const auto tok = split_ws(line);
    if (tok.size() != 8)
      throw std::invalid_argument(
          "faultlog: record needs 8 fields, got " +
          std::to_string(tok.size()) + " in '" + std::string(line) + "'");
    FaultRecord r;
    r.trial = parse_int_tok(tok[0]);
    r.time = parse_double_tok(tok[1]);
    r.node = parse_int_tok(tok[2]);
    r.kind = parse_kind_tok(tok[3]);
    r.detect_after = parse_double_tok(tok[4]);
    const std::int64_t level = parse_int_tok(tok[5]);
    if (level < 0 || level > 4)
      throw std::invalid_argument("faultlog: recovery_level out of range");
    r.recovery_level = static_cast<int>(level);
    r.lost_work_seconds = parse_double_tok(tok[6]);
    r.restart_cost_seconds = parse_double_tok(tok[7]);
    log.add(r);
  }
  if (!saw_magic)
    throw std::invalid_argument("faultlog: empty input (no magic line)");
  return log;
}

void FaultLog::write_csv(std::ostream& os) const {
  util::TextTable table;
  table.set_header({"trial", "time_s", "node", "kind", "detect_after_s",
                    "recovery_level", "lost_work_s", "restart_cost_s"});
  for (const FaultRecord& r : records_)
    table.add_row({std::to_string(r.trial), shortest_double(r.time),
                   std::to_string(r.node), to_string(r.kind),
                   shortest_double(r.detect_after),
                   std::to_string(r.recovery_level),
                   shortest_double(r.lost_work_seconds),
                   shortest_double(r.restart_cost_seconds)});
  table.write_csv(os);
}

std::vector<FaultEvent> FaultLog::to_trace(std::int64_t trial) const {
  std::vector<FaultEvent> trace;
  for (const FaultRecord& r : records_) {
    if (r.trial != trial) continue;
    FaultEvent ev;
    ev.time = r.time;
    ev.node = r.node;
    ev.kind = r.kind;
    ev.detect_after = r.detect_after;
    trace.push_back(ev);
  }
  std::stable_sort(trace.begin(), trace.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.time < b.time;
                   });
  return trace;
}

double weibull_shape_from_cv(double cv) {
  if (cv <= 0.0) return 10.0;  // perfectly regular -> stiffest shape we model
  const auto cv_of = [](double k) {
    const double g1 = std::tgamma(1.0 + 1.0 / k);
    const double g2 = std::tgamma(1.0 + 2.0 / k);
    return std::sqrt(std::max(0.0, g2 / (g1 * g1) - 1.0));
  };
  double lo = 0.2, hi = 10.0;
  if (cv >= cv_of(lo)) return lo;  // extremely bursty
  if (cv <= cv_of(hi)) return hi;  // extremely regular
  for (int iter = 0; iter < 80; ++iter) {
    const double mid = 0.5 * (lo + hi);
    // cv is strictly decreasing in k.
    if (cv_of(mid) > cv)
      lo = mid;
    else
      hi = mid;
  }
  return 0.5 * (lo + hi);
}

FaultModelEstimate estimate_fault_model(const std::vector<FaultEvent>& events,
                                        std::int64_t nodes) {
  if (nodes < 1) throw std::invalid_argument("nodes must be >= 1");
  if (events.size() < 3)
    throw std::invalid_argument(
        "need at least 3 logged events to estimate a fault model");
  std::vector<double> gaps;
  gaps.reserve(events.size() - 1);
  for (std::size_t i = 1; i < events.size(); ++i) {
    const double gap = events[i].time - events[i - 1].time;
    if (gap < 0.0)
      throw std::invalid_argument("fault log must be time-ordered");
    gaps.push_back(gap);
  }

  FaultModelEstimate est;
  est.events = events.size();
  est.system_mtbf = util::mean(gaps);
  if (est.system_mtbf <= 0.0)
    throw std::invalid_argument("degenerate log: all events simultaneous");
  est.node_mtbf = est.system_mtbf * static_cast<double>(nodes);
  est.weibull_shape =
      weibull_shape_from_cv(util::sample_stddev(gaps) / est.system_mtbf);
  const auto losses = static_cast<double>(
      std::count_if(events.begin(), events.end(), [](const FaultEvent& e) {
        return e.kind == FailureKind::kNodeLoss;
      }));
  est.node_loss_fraction = losses / static_cast<double>(events.size());
  return est;
}

FoldLossAccount account_fold_losses(
    const std::vector<FaultEvent>& events,
    const std::vector<std::size_t>& group_of_node,
    const std::vector<std::uint64_t>& multiplicity) {
  for (std::size_t g : group_of_node)
    if (g >= multiplicity.size())
      throw std::invalid_argument(
          "account_fold_losses: group index outside multiplicity table");
  for (std::uint64_t m : multiplicity)
    if (m == 0)
      throw std::invalid_argument("account_fold_losses: zero multiplicity");

  FoldLossAccount account;
  account.events_per_group.assign(multiplicity.size(), 0);
  account.losses_per_group.assign(multiplicity.size(), 0);
  account.machine_fault_share.assign(multiplicity.size(), 0.0);
  for (const FaultEvent& ev : events) {
    if (ev.node < 0 ||
        static_cast<std::size_t>(ev.node) >= group_of_node.size())
      throw std::invalid_argument(
          "account_fold_losses: event names an unknown node");
    const std::size_t g = group_of_node[static_cast<std::size_t>(ev.node)];
    ++account.events_per_group[g];
    if (ev.kind == FailureKind::kNodeLoss) ++account.losses_per_group[g];
  }

  std::uint64_t weighted_losses = 0;
  for (std::size_t g = 0; g < multiplicity.size(); ++g) {
    account.weighted_events += account.events_per_group[g] * multiplicity[g];
    weighted_losses += account.losses_per_group[g] * multiplicity[g];
  }
  if (account.weighted_events > 0) {
    for (std::size_t g = 0; g < multiplicity.size(); ++g)
      account.machine_fault_share[g] =
          static_cast<double>(account.events_per_group[g] * multiplicity[g]) /
          static_cast<double>(account.weighted_events);
    account.node_loss_fraction = static_cast<double>(weighted_losses) /
                                 static_cast<double>(account.weighted_events);
  }
  return account;
}

}  // namespace ftbesst::ft
