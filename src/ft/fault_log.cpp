#include "ft/fault_log.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/stats.hpp"

namespace ftbesst::ft {

double weibull_shape_from_cv(double cv) {
  if (cv <= 0.0) return 10.0;  // perfectly regular -> stiffest shape we model
  const auto cv_of = [](double k) {
    const double g1 = std::tgamma(1.0 + 1.0 / k);
    const double g2 = std::tgamma(1.0 + 2.0 / k);
    return std::sqrt(std::max(0.0, g2 / (g1 * g1) - 1.0));
  };
  double lo = 0.2, hi = 10.0;
  if (cv >= cv_of(lo)) return lo;  // extremely bursty
  if (cv <= cv_of(hi)) return hi;  // extremely regular
  for (int iter = 0; iter < 80; ++iter) {
    const double mid = 0.5 * (lo + hi);
    // cv is strictly decreasing in k.
    if (cv_of(mid) > cv)
      lo = mid;
    else
      hi = mid;
  }
  return 0.5 * (lo + hi);
}

FaultModelEstimate estimate_fault_model(const std::vector<FaultEvent>& events,
                                        std::int64_t nodes) {
  if (nodes < 1) throw std::invalid_argument("nodes must be >= 1");
  if (events.size() < 3)
    throw std::invalid_argument(
        "need at least 3 logged events to estimate a fault model");
  std::vector<double> gaps;
  gaps.reserve(events.size() - 1);
  for (std::size_t i = 1; i < events.size(); ++i) {
    const double gap = events[i].time - events[i - 1].time;
    if (gap < 0.0)
      throw std::invalid_argument("fault log must be time-ordered");
    gaps.push_back(gap);
  }

  FaultModelEstimate est;
  est.events = events.size();
  est.system_mtbf = util::mean(gaps);
  if (est.system_mtbf <= 0.0)
    throw std::invalid_argument("degenerate log: all events simultaneous");
  est.node_mtbf = est.system_mtbf * static_cast<double>(nodes);
  est.weibull_shape =
      weibull_shape_from_cv(util::sample_stddev(gaps) / est.system_mtbf);
  const auto losses = static_cast<double>(
      std::count_if(events.begin(), events.end(), [](const FaultEvent& e) {
        return e.kind == FailureKind::kNodeLoss;
      }));
  est.node_loss_fraction = losses / static_cast<double>(events.size());
  return est;
}

FoldLossAccount account_fold_losses(
    const std::vector<FaultEvent>& events,
    const std::vector<std::size_t>& group_of_node,
    const std::vector<std::uint64_t>& multiplicity) {
  for (std::size_t g : group_of_node)
    if (g >= multiplicity.size())
      throw std::invalid_argument(
          "account_fold_losses: group index outside multiplicity table");
  for (std::uint64_t m : multiplicity)
    if (m == 0)
      throw std::invalid_argument("account_fold_losses: zero multiplicity");

  FoldLossAccount account;
  account.events_per_group.assign(multiplicity.size(), 0);
  account.losses_per_group.assign(multiplicity.size(), 0);
  account.machine_fault_share.assign(multiplicity.size(), 0.0);
  for (const FaultEvent& ev : events) {
    if (ev.node < 0 ||
        static_cast<std::size_t>(ev.node) >= group_of_node.size())
      throw std::invalid_argument(
          "account_fold_losses: event names an unknown node");
    const std::size_t g = group_of_node[static_cast<std::size_t>(ev.node)];
    ++account.events_per_group[g];
    if (ev.kind == FailureKind::kNodeLoss) ++account.losses_per_group[g];
  }

  std::uint64_t weighted_losses = 0;
  for (std::size_t g = 0; g < multiplicity.size(); ++g) {
    account.weighted_events += account.events_per_group[g] * multiplicity[g];
    weighted_losses += account.losses_per_group[g] * multiplicity[g];
  }
  if (account.weighted_events > 0) {
    for (std::size_t g = 0; g < multiplicity.size(); ++g)
      account.machine_fault_share[g] =
          static_cast<double>(account.events_per_group[g] * multiplicity[g]) /
          static_cast<double>(account.weighted_events);
    account.node_loss_fraction = static_cast<double>(weighted_losses) /
                                 static_cast<double>(account.weighted_events);
  }
  return account;
}

}  // namespace ftbesst::ft
