#pragma once
// Systematic Reed–Solomon erasure coding over GF(2^8), Cauchy construction.
//
// Used by the FTI level-3 checkpoint model: each FTI group of g nodes
// RS-encodes its checkpoint files so that up to parity_shards concurrent
// node losses inside the group remain recoverable. The coder is fully
// functional (encode + erasure reconstruction), and its operation count
// parameterizes the L3 compute-cost model.

#include <cstdint>
#include <vector>

namespace ftbesst::ft {

class ReedSolomon {
 public:
  /// `data_shards` >= 1, `parity_shards` >= 1,
  /// data_shards + parity_shards <= 255.
  ReedSolomon(std::size_t data_shards, std::size_t parity_shards);

  [[nodiscard]] std::size_t data_shards() const noexcept { return k_; }
  [[nodiscard]] std::size_t parity_shards() const noexcept { return m_; }
  [[nodiscard]] std::size_t total_shards() const noexcept { return k_ + m_; }

  /// Compute parity shards from `data` (k shards of equal length).
  [[nodiscard]] std::vector<std::vector<std::uint8_t>> encode(
      const std::vector<std::vector<std::uint8_t>>& data) const;

  /// Reconstruct missing shards in place. `shards` has k+m entries in
  /// data-then-parity order; `present[i]` marks which survive (missing
  /// entries may be empty). Throws std::runtime_error when more than m
  /// shards are missing. On return every shard is filled in.
  void reconstruct(std::vector<std::vector<std::uint8_t>>& shards,
                   const std::vector<bool>& present) const;

  /// GF multiply-accumulate operations to encode shards of `shard_bytes`
  /// bytes — the compute volume behind the L3 checkpoint cost model.
  [[nodiscard]] std::uint64_t encode_ops(std::size_t shard_bytes) const noexcept {
    return static_cast<std::uint64_t>(k_) * m_ * shard_bytes;
  }

 private:
  /// Generator-matrix row `r` (r in [0, k+m)): identity for data rows,
  /// Cauchy 1/(x_r + y_c) for parity rows.
  [[nodiscard]] std::uint8_t coeff(std::size_t row, std::size_t col) const;

  std::size_t k_;
  std::size_t m_;
};

}  // namespace ftbesst::ft
