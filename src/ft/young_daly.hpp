#pragma once
// Young/Daly optimal checkpoint interval and first-order expected-runtime
// analytics. These are the closed-form baselines the FT-aware DSE results
// are sanity-checked against (bench_ext_youngdaly).

namespace ftbesst::ft {

/// Young's first-order optimal checkpoint interval: sqrt(2 * C * M), where
/// C is checkpoint cost (s) and M the system MTBF (s).
[[nodiscard]] double young_interval(double checkpoint_cost,
                                    double system_mtbf);

/// Daly's higher-order refinement of the optimal interval (valid for
/// C < 2M; falls back to M otherwise, per Daly 2006).
[[nodiscard]] double daly_interval(double checkpoint_cost,
                                   double system_mtbf);

/// First-order expected total runtime for `work` seconds of useful compute
/// with coordinated C/R: checkpoint cost C every `interval` of computation,
/// restart cost R, system MTBF M. Uses the standard waste decomposition
///   T = work * (1 + C/interval) / (1 - (interval/2 + R)/M)
/// and returns +inf when the denominator is non-positive (the system
/// thrashes: faults arrive faster than progress).
[[nodiscard]] double expected_runtime_cr(double work, double interval,
                                         double checkpoint_cost,
                                         double restart_cost,
                                         double system_mtbf);

/// Expected runtime without any fault tolerance: each fault forces a full
/// restart from the beginning. E[T] = (e^{W/M} - 1) * M for exponential
/// faults (classic result); finite only because the exponential is.
[[nodiscard]] double expected_runtime_no_ft(double work, double system_mtbf);

}  // namespace ftbesst::ft
