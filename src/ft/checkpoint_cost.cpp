#include "ft/checkpoint_cost.hpp"

#include <cmath>
#include <stdexcept>

namespace ftbesst::ft {

CheckpointCostModel::CheckpointCostModel(StorageParams storage, FtiConfig fti)
    : storage_(storage), fti_(fti) {
  if (storage_.local_write_bw <= 0 || storage_.nic_bw <= 0 ||
      storage_.pfs_bw <= 0 || storage_.rs_encode_rate <= 0)
    throw std::invalid_argument("storage bandwidths must be positive");
}

double CheckpointCostModel::coordination(std::int64_t ranks) const {
  // Coordinated checkpointing: a barrier-like agreement over all ranks.
  return ranks > 1 ? storage_.sync_latency *
                         std::ceil(std::log2(static_cast<double>(ranks)))
                   : 0.0;
}

double CheckpointCostModel::bytes_per_node(
    std::uint64_t bytes_per_rank) const {
  return static_cast<double>(bytes_per_rank) * fti_.node_size;
}

double CheckpointCostModel::cost(Level level, std::uint64_t bytes_per_rank,
                                 std::int64_t ranks) const {
  fti_.validate(ranks);
  const double node_bytes = bytes_per_node(bytes_per_rank);
  const std::int64_t nodes = fti_.nodes_for(ranks);
  const double local_write =
      storage_.local_latency + node_bytes / storage_.local_write_bw;
  const double coord = coordination(ranks);

  switch (level) {
    case Level::kL1:
      return coord + local_write;
    case Level::kL2: {
      // Partner copies traverse the network while everyone else does too:
      // effective bandwidth degrades with machine size (congestion).
      const double congestion =
          1.0 + storage_.congestion_per_node * static_cast<double>(nodes);
      const double transfer =
          fti_.l2_partners *
          (storage_.nic_latency + node_bytes / (storage_.nic_bw / congestion));
      return coord + local_write + transfer;
    }
    case Level::kL3: {
      // Reed-Solomon with m = group/2 parity shards: each node encodes its
      // share and exchanges shards within the group.
      const int parity = fti_.group_size / 2;
      const double encode =
          node_bytes * parity / storage_.rs_encode_rate;
      const double congestion =
          1.0 + storage_.congestion_per_node * static_cast<double>(nodes);
      const double exchange =
          (fti_.group_size - 1) *
          (storage_.nic_latency +
           (node_bytes / fti_.group_size) / (storage_.nic_bw / congestion));
      return coord + local_write + encode + exchange;
    }
    case Level::kL4: {
      // All nodes flush through the shared PFS: aggregate volume over
      // aggregate bandwidth — the only level whose time grows linearly
      // with machine size at fixed per-rank state.
      const double total_bytes = node_bytes * static_cast<double>(nodes);
      return coord + local_write + storage_.pfs_latency +
             total_bytes / storage_.pfs_bw;
    }
  }
  throw std::invalid_argument("unknown checkpoint level");
}

double CheckpointCostModel::restart_cost(Level level,
                                         std::uint64_t bytes_per_rank,
                                         std::int64_t ranks) const {
  fti_.validate(ranks);
  const double node_bytes = bytes_per_node(bytes_per_rank);
  const std::int64_t nodes = fti_.nodes_for(ranks);
  const double local_read =
      storage_.local_latency + node_bytes / storage_.local_write_bw;
  const double coord = coordination(ranks);
  switch (level) {
    case Level::kL1:
      return coord + local_read;
    case Level::kL2:
      // Fetch the partner copy for lost nodes, read locally elsewhere.
      return coord + local_read + storage_.nic_latency +
             node_bytes / storage_.nic_bw;
    case Level::kL3: {
      const int parity = fti_.group_size / 2;
      // Decode is the expensive direction (matrix inversion amortized,
      // k multiply-accumulate streams per reconstructed byte).
      const double decode =
          node_bytes * (fti_.group_size - parity) / storage_.rs_encode_rate;
      return coord + local_read + decode + storage_.nic_latency +
             node_bytes / storage_.nic_bw;
    }
    case Level::kL4: {
      const double total_bytes = node_bytes * static_cast<double>(nodes);
      return coord + storage_.pfs_latency + total_bytes / storage_.pfs_bw +
             local_read;
    }
  }
  throw std::invalid_argument("unknown checkpoint level");
}

}  // namespace ftbesst::ft
