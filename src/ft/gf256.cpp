#include "ft/gf256.hpp"

namespace ftbesst::ft {

const GF256::Tables& GF256::tables() noexcept {
  static const Tables t = [] {
    Tables out;
    // Generate powers of the primitive element 0x02 modulo 0x11d.
    unsigned x = 1;
    for (unsigned i = 0; i < 255; ++i) {
      out.exp[i] = static_cast<std::uint8_t>(x);
      out.log[x] = static_cast<std::uint8_t>(i);
      x <<= 1;
      if (x & 0x100) x ^= 0x11d;
    }
    // Duplicate the exp table so mul can skip the mod-255 reduction.
    for (unsigned i = 255; i < 512; ++i) out.exp[i] = out.exp[i - 255];
    out.log[0] = 0;  // log(0) is undefined; callers check for zero.
    return out;
  }();
  return t;
}

std::uint8_t GF256::mul(std::uint8_t a, std::uint8_t b) noexcept {
  if (a == 0 || b == 0) return 0;
  const Tables& t = tables();
  return t.exp[static_cast<unsigned>(t.log[a]) + t.log[b]];
}

std::uint8_t GF256::div(std::uint8_t a, std::uint8_t b) noexcept {
  if (a == 0 || b == 0) return 0;
  const Tables& t = tables();
  return t.exp[static_cast<unsigned>(t.log[a]) + 255 - t.log[b]];
}

std::uint8_t GF256::inv(std::uint8_t a) noexcept {
  if (a == 0) return 0;
  const Tables& t = tables();
  return t.exp[255 - t.log[a]];
}

std::uint8_t GF256::pow(std::uint8_t a, unsigned n) noexcept {
  if (n == 0) return 1;
  if (a == 0) return 0;
  const Tables& t = tables();
  return t.exp[(static_cast<unsigned>(t.log[a]) * n) % 255];
}

std::uint8_t GF256::exp(unsigned n) noexcept { return tables().exp[n % 255]; }

}  // namespace ftbesst::ft
