#include "ft/young_daly.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace ftbesst::ft {

namespace {
void check(double checkpoint_cost, double system_mtbf) {
  if (checkpoint_cost < 0.0)
    throw std::invalid_argument("checkpoint cost must be >= 0");
  if (system_mtbf <= 0.0)
    throw std::invalid_argument("system MTBF must be > 0");
}
}  // namespace

double young_interval(double checkpoint_cost, double system_mtbf) {
  check(checkpoint_cost, system_mtbf);
  return std::sqrt(2.0 * checkpoint_cost * system_mtbf);
}

double daly_interval(double checkpoint_cost, double system_mtbf) {
  check(checkpoint_cost, system_mtbf);
  if (checkpoint_cost >= 2.0 * system_mtbf) return system_mtbf;
  const double root = std::sqrt(2.0 * checkpoint_cost * system_mtbf);
  const double ratio = std::sqrt(checkpoint_cost / (2.0 * system_mtbf));
  return root * (1.0 + ratio / 3.0 +
                 (checkpoint_cost / (2.0 * system_mtbf)) / 9.0) -
         checkpoint_cost;
}

double expected_runtime_cr(double work, double interval,
                           double checkpoint_cost, double restart_cost,
                           double system_mtbf) {
  if (work < 0.0 || interval <= 0.0 || restart_cost < 0.0)
    throw std::invalid_argument("invalid C/R runtime parameters");
  check(checkpoint_cost, system_mtbf);
  const double overhead = 1.0 + checkpoint_cost / interval;
  const double waste = (interval / 2.0 + restart_cost) / system_mtbf;
  if (waste >= 1.0) return std::numeric_limits<double>::infinity();
  return work * overhead / (1.0 - waste);
}

double expected_runtime_no_ft(double work, double system_mtbf) {
  if (work < 0.0) throw std::invalid_argument("work must be >= 0");
  if (system_mtbf <= 0.0)
    throw std::invalid_argument("system MTBF must be > 0");
  return (std::exp(work / system_mtbf) - 1.0) * system_mtbf;
}

}  // namespace ftbesst::ft
