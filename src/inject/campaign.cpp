#include "inject/campaign.hpp"

#include <stdexcept>

#include "core/engine_des.hpp"
#include "obs/obs.hpp"
#include "util/rng.hpp"
#include "util/task_pool.hpp"

namespace ftbesst::inject {

CampaignResult run_campaign(const core::AppBEO& app, const core::ArchBEO& arch,
                            const CampaignOptions& options) {
  FTBESST_OBS_SPAN("inject.run_campaign");
  if (options.trials == 0)
    throw std::invalid_argument("need at least one campaign trial");
  static const obs::Counter campaigns = obs::counter("inject.campaigns");
  static const obs::Counter trial_count = obs::counter("inject.trials");
  campaigns.add();

  core::EngineOptions base = options.engine;
  base.inject_faults = true;

  // Per-trial seeds are derived up front (same discipline as run_ensemble)
  // so results are identical no matter how trials land on workers.
  util::Rng seeder(base.seed);
  std::vector<std::uint64_t> seeds(options.trials);
  for (std::size_t t = 0; t < options.trials; ++t)
    seeds[t] = seeder.split(t)();

  std::vector<core::RunResult> runs(options.trials);
  auto run_trial = [&](std::size_t t) {
    core::EngineOptions per_trial = base;
    per_trial.seed = seeds[t];
    runs[t] = options.use_des ? core::run_des(app, arch, per_trial)
                              : core::run_bsp(app, arch, per_trial);
    trial_count.add();
  };
  if (options.threads == 1 || options.trials == 1) {
    for (std::size_t t = 0; t < options.trials; ++t) run_trial(t);
  } else {
    util::TaskGroup group;
    for (std::size_t t = 0; t < options.trials; ++t)
      group.run([&run_trial, t] { run_trial(t); });
    group.wait();
  }

  CampaignResult out;
  out.totals.reserve(options.trials);
  for (std::size_t t = 0; t < options.trials; ++t) {
    const core::RunResult& r = runs[t];
    out.totals.push_back(r.total_seconds);
    out.mean_faults += static_cast<double>(r.faults);
    out.mean_rollbacks += static_cast<double>(r.rollbacks);
    out.mean_full_restarts += static_cast<double>(r.full_restarts);
    out.mean_lost_work += r.lost_work_seconds;
    for (std::size_t l = 0; l < 4; ++l)
      out.mean_recoveries_by_level[l] +=
          static_cast<double>(r.recoveries_by_level[l]);
    if (!r.completed) ++out.incomplete_trials;
    out.fault_log.append_trial(r.fault_log, static_cast<std::int64_t>(t));
  }
  const auto n = static_cast<double>(options.trials);
  out.mean_faults /= n;
  out.mean_rollbacks /= n;
  out.mean_full_restarts /= n;
  out.mean_lost_work /= n;
  for (double& x : out.mean_recoveries_by_level) x /= n;
  out.total = util::summarize(out.totals);
  out.p10 = util::quantile(out.totals, 0.10);
  out.p50 = util::quantile(out.totals, 0.50);
  out.p90 = util::quantile(out.totals, 0.90);
  return out;
}

}  // namespace ftbesst::inject
