#pragma once
// Fault-schedule materialization for the injection engine.
//
// A schedule is the complete, time-ordered list of fault events that will
// strike a machine over a simulation horizon. It is drawn *up front* from
// per-node splittable RNG streams — node n's fail-stop faults come from
// stream root.split(2n) and its silent corruptions from root.split(2n+1) —
// so the schedule is a pure function of (seed, processes, nodes, horizon):
// independent of thread count, event interleaving, and how far the run
// actually gets. Pre-materializing is what makes injected DES runs
// bit-identical across thread counts and exactly replayable from a dumped
// ft::FaultLog (FaultLog::to_trace feeds EngineOptions::fault_trace, which
// bypasses sampling entirely).
//
// Per-node sampling differs deliberately from the coarse engine's
// system-level renewal draw (FaultProcess::next_after): superposing
// independent per-node renewal processes is the physically faithful model,
// and for the exponential shape the superposition is exactly the Poisson
// system process the analytic Young/Daly layer assumes.

#include <cstdint>
#include <vector>

#include "ft/faults.hpp"
#include "inject/sdc.hpp"
#include "util/rng.hpp"

namespace ftbesst::inject {

/// Materialize all fault events in [0, horizon_seconds) for a machine of
/// `nodes` nodes. Either process may be null (that fault class is off).
/// Events are returned time-ordered with a deterministic tie-break
/// (time, node, kind). Throws std::invalid_argument on nodes < 1 or a
/// non-finite/negative horizon.
[[nodiscard]] std::vector<ft::FaultEvent> make_schedule(
    const ft::FaultProcess* crashes, const SdcProcess* sdc,
    std::int64_t nodes, double horizon_seconds, const util::Rng& root);

/// Validate an externally supplied schedule (a replay trace): times and
/// detection latencies must be finite and non-negative, times
/// non-decreasing, node ids within [0, nodes). Throws
/// std::invalid_argument on violation.
void validate_schedule(const std::vector<ft::FaultEvent>& schedule,
                       std::int64_t nodes);

}  // namespace ftbesst::inject
