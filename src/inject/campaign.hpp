#pragma once
// Monte-Carlo fault-injection campaign driver.
//
// A campaign replays the same application N times through the DES injection
// engine, varying only the fault schedule seed per trial — model durations
// stay deterministic unless the caller opts into full Monte-Carlo mode.
// This isolates the *fault-induced* spread of the makespan distribution
// (the quantity the Young/Daly closed form prices in expectation), which
// run_ensemble cannot do: it forces monte_carlo on and convolves timing
// noise into every trial.
//
// Per-trial seeds are derived from the campaign seed before any trial is
// scheduled, and trials run as independent tasks on the shared
// util::TaskPool, so campaign results are bit-identical for a fixed seed
// at any thread count.

#include <array>
#include <cstdint>
#include <vector>

#include "core/engine_bsp.hpp"
#include "ft/fault_log.hpp"
#include "util/stats.hpp"

namespace ftbesst::inject {

struct CampaignOptions {
  std::size_t trials = 32;
  /// 0 = shared task pool, 1 = inline on the calling thread (bit-identical
  /// either way).
  unsigned threads = 0;
  /// Engine options for every trial. inject_faults is forced on;
  /// monte_carlo is respected (off by default: fault-only variance).
  core::EngineOptions engine;
  /// Run trials through the DES injection engine (default) or the coarse
  /// bulk-synchronous engine.
  bool use_des = true;
};

struct CampaignResult {
  util::Summary total;         ///< makespan distribution over trials (s)
  std::vector<double> totals;  ///< per-trial makespans
  double p10 = 0.0, p50 = 0.0, p90 = 0.0;  ///< makespan quantiles (s)
  double mean_faults = 0.0;
  double mean_rollbacks = 0.0;
  double mean_full_restarts = 0.0;
  double mean_lost_work = 0.0;  ///< mean discarded execution per trial (s)
  /// Mean rollbacks that restored a level-L checkpoint, at index L-1.
  std::array<double, 4> mean_recoveries_by_level{};
  std::size_t incomplete_trials = 0;  ///< trials that hit the horizon
  /// Every trial's fault records, re-tagged with the trial index.
  /// Re-ingestable: FaultLog::to_trace(trial) + EngineOptions::fault_trace
  /// replays any single trial exactly.
  ft::FaultLog fault_log;
};

/// Run an injection campaign of `options.trials` trials. Throws
/// std::invalid_argument on zero trials (and propagates engine errors, e.g.
/// a missing fault process).
[[nodiscard]] CampaignResult run_campaign(const core::AppBEO& app,
                                          const core::ArchBEO& arch,
                                          const CampaignOptions& options);

}  // namespace ftbesst::inject
