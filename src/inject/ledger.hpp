#pragma once
// Per-application checkpoint ledger and recovery selection — the shared
// rollback brain of both execution engines (coarse BSP and DES).
//
// The ledger tracks, per FTI level, the most recent completed checkpoints
// (two retained: an async flush in flight must not evict the last usable
// snapshot). On a fault it selects the best recoverable record: the
// recoverability predicate in ft::fti decides which levels survive the
// failure set, then the most progressed (and, tie-breaking, deepest)
// checkpoint whose write had completed before the fault wins.
//
// Selection semantics are a field-exact port of the original run_bsp fault
// loop — the golden corpus byte-compares ensemble outputs, so any change
// here must keep crash/loss selection bit-identical.
//
// Silent-data-corruption freshness: a checkpoint taken *after* the
// corruption instant snapshots corrupted state and is poisoned. SDC faults
// therefore filter candidates by completion time against the corruption
// instant before the ordinary availability check (see ft::FailureKind).

#include <cstdint>
#include <map>
#include <vector>

#include "ft/fti.hpp"

namespace ftbesst::inject {

/// Rollback target: resume execution at `resume_pc` with `timesteps_done`
/// completed timesteps (wall clock never rolls back).
struct CheckpointRecord {
  std::size_t resume_pc = 0;
  int timesteps_done = 0;
  std::vector<double> params;  ///< checkpoint model params (for restart)
  /// Wall-clock time at which this checkpoint becomes usable for recovery
  /// (later than its critical-path completion for async flushes).
  double available_at = 0.0;
  /// Wall-clock time the critical-path write finished — the left edge of
  /// the lost-work window, and the SDC freshness timestamp (state is
  /// snapshotted by then; a record with completed_at after the corruption
  /// instant is poisoned).
  double completed_at = 0.0;
};

/// Result of a recovery selection. `record == nullptr` means no usable
/// checkpoint survived: restart the application from the beginning.
struct RecoverySelection {
  const CheckpointRecord* record = nullptr;
  ft::Level level = ft::Level::kL1;
};

class RecoveryLedger {
 public:
  /// Record a completed checkpoint at `level`. Keeps the newest two records
  /// per level.
  void record(ft::Level level, CheckpointRecord rec) {
    auto& records = available_[level];
    records.push_back(std::move(rec));
    if (records.size() > 2) records.erase(records.begin());
  }

  /// Drop every record (full restart: all prior state is discarded).
  void clear() { available_.clear(); }

  /// Drop records completed strictly after `time`. The DES engine calls
  /// this with the strike time when a fault is processed: records past the
  /// strike either never actually completed (the fail-stop fault rewound
  /// the timeline before their completion) or snapshot corrupted state
  /// (SDC), so neither may ever be selected. The coarse engine never needs
  /// it — it only records checkpoints that completed before the pending
  /// fault.
  void purge_after(double time) {
    for (auto& [level, records] : available_) {
      std::erase_if(records, [time](const CheckpointRecord& r) {
        return r.completed_at > time;
      });
    }
  }

  [[nodiscard]] bool empty() const noexcept { return available_.empty(); }

  /// Best (most progressed, then highest-level) recoverable checkpoint
  /// whose (possibly background) write had completed by `available_by`,
  /// restricted to records completed no later than `fresh_by` (pass
  /// `no_freshness_limit()` for crash/loss faults; the corruption instant
  /// for SDC). Recoverability of each level against `failures` comes from
  /// ft::recoverable.
  [[nodiscard]] RecoverySelection select(const ft::FtiConfig& config,
                                         std::int64_t ranks,
                                         const ft::FailureSet& failures,
                                         double available_by,
                                         double fresh_by) const;

  [[nodiscard]] static constexpr double no_freshness_limit() noexcept {
    return 1e300;
  }

 private:
  /// Recent completed checkpoints per level, newest last.
  std::map<ft::Level, std::vector<CheckpointRecord>> available_;
};

}  // namespace ftbesst::inject
