#include "inject/sdc.hpp"

#include <stdexcept>

namespace ftbesst::inject {

SdcProcess::SdcProcess(double node_mtbe_seconds, double mean_detect_seconds)
    : mtbe_(node_mtbe_seconds), mean_detect_(mean_detect_seconds) {
  if (!(mtbe_ > 0.0))
    throw std::invalid_argument("SDC node MTBE must be > 0");
  if (mean_detect_ < 0.0)
    throw std::invalid_argument("SDC detection latency must be >= 0");
}

std::vector<ft::FaultEvent> SdcProcess::sample_node(double horizon_seconds,
                                                    util::Rng& rng) const {
  std::vector<ft::FaultEvent> events;
  const double rate = 1.0 / mtbe_;
  double t = 0.0;
  for (;;) {
    t += rng.exponential(rate);
    if (t >= horizon_seconds) break;
    ft::FaultEvent ev;
    ev.time = t;
    ev.node = 0;
    ev.kind = ft::FailureKind::kSilentCorruption;
    ev.detect_after =
        mean_detect_ > 0.0 ? rng.exponential(1.0 / mean_detect_) : 0.0;
    events.push_back(ev);
  }
  return events;
}

}  // namespace ftbesst::inject
