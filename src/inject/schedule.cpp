#include "inject/schedule.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace ftbesst::inject {

std::vector<ft::FaultEvent> make_schedule(const ft::FaultProcess* crashes,
                                          const SdcProcess* sdc,
                                          std::int64_t nodes,
                                          double horizon_seconds,
                                          const util::Rng& root) {
  if (nodes < 1) throw std::invalid_argument("schedule needs nodes >= 1");
  if (!std::isfinite(horizon_seconds) || horizon_seconds < 0.0)
    throw std::invalid_argument("schedule horizon must be finite and >= 0");

  std::vector<ft::FaultEvent> schedule;
  for (std::int64_t n = 0; n < nodes; ++n) {
    if (crashes != nullptr) {
      util::Rng rng =
          root.split(2 * static_cast<std::uint64_t>(n));
      // FaultProcess::sample over a 1-node machine is exactly the per-node
      // renewal process (exp or mean-pinned Weibull interarrivals).
      for (ft::FaultEvent ev : crashes->sample(1, horizon_seconds, rng)) {
        ev.node = n;
        schedule.push_back(ev);
      }
    }
    if (sdc != nullptr) {
      util::Rng rng =
          root.split(2 * static_cast<std::uint64_t>(n) + 1);
      for (ft::FaultEvent ev : sdc->sample_node(horizon_seconds, rng)) {
        ev.node = n;
        schedule.push_back(ev);
      }
    }
  }
  std::sort(schedule.begin(), schedule.end(),
            [](const ft::FaultEvent& a, const ft::FaultEvent& b) {
              if (a.time != b.time) return a.time < b.time;
              if (a.node != b.node) return a.node < b.node;
              return static_cast<int>(a.kind) < static_cast<int>(b.kind);
            });
  return schedule;
}

void validate_schedule(const std::vector<ft::FaultEvent>& schedule,
                       std::int64_t nodes) {
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    const ft::FaultEvent& ev = schedule[i];
    if (!std::isfinite(ev.time) || ev.time < 0.0)
      throw std::invalid_argument("fault trace: bad time at entry " +
                                  std::to_string(i));
    if (!std::isfinite(ev.detect_after) || ev.detect_after < 0.0)
      throw std::invalid_argument(
          "fault trace: bad detection latency at entry " + std::to_string(i));
    if (ev.node < 0 || ev.node >= nodes)
      throw std::invalid_argument("fault trace: node id out of range at entry " +
                                  std::to_string(i));
    if (i > 0 && ev.time < schedule[i - 1].time)
      throw std::invalid_argument("fault trace must be time-ordered");
  }
}

}  // namespace ftbesst::inject
