#include "inject/ledger.hpp"

namespace ftbesst::inject {

RecoverySelection RecoveryLedger::select(const ft::FtiConfig& config,
                                         std::int64_t ranks,
                                         const ft::FailureSet& failures,
                                         double available_by,
                                         double fresh_by) const {
  RecoverySelection best;
  for (const auto& [level, records] : available_) {
    if (!ft::recoverable(level, config, ranks, failures)) continue;
    for (auto it = records.rbegin(); it != records.rend(); ++it) {
      const CheckpointRecord& record = *it;
      // Poisoned by the corruption instant: skip without consuming the
      // per-level pick (an older, pre-corruption record may still win).
      if (record.completed_at > fresh_by) continue;
      if (record.available_at > available_by) continue;
      if (!best.record ||
          record.timesteps_done > best.record->timesteps_done ||
          (record.timesteps_done == best.record->timesteps_done &&
           static_cast<int>(level) > static_cast<int>(best.level))) {
        best.record = &record;
        best.level = level;
      }
      break;  // records are ordered; the newest usable one wins
    }
  }
  return best;
}

}  // namespace ftbesst::inject
