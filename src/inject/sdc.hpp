#pragma once
// Silent-data-corruption (soft-error) process with a detection-latency
// model.
//
// Soft errors differ from fail-stop faults in two ways the injector must
// model (cf. the SDC campaign methodology of fault-injection benchmarking
// suites): (1) the corruption instant and the *detection* instant are
// separated by a latency — the application runs on corrupted state until a
// detector (checksum, ABFT residual check, assertion) notices; (2) any
// checkpoint written between corruption and detection snapshots the
// corrupted state and is poisoned (enforced by inject::RecoveryLedger's
// freshness filter). Recovery must roll back to a checkpoint completed
// before the corruption instant and replay from there, starting at the
// detection time.
//
// Interarrivals are exponential per node (soft-error rates scale with
// silicon area and are memoryless to first order); detection latency is
// exponential with a configurable mean, or exactly zero for an ideal
// instant detector.

#include <cstdint>
#include <vector>

#include "ft/faults.hpp"
#include "util/rng.hpp"

namespace ftbesst::inject {

class SdcProcess {
 public:
  /// `node_mtbe_seconds`: per-node mean time between silent errors.
  /// `mean_detect_seconds`: mean detection latency (exponential draw); 0
  /// models an instant detector. Throws std::invalid_argument on a
  /// non-positive MTBE or negative latency.
  explicit SdcProcess(double node_mtbe_seconds,
                      double mean_detect_seconds = 0.0);

  [[nodiscard]] double node_mtbe() const noexcept { return mtbe_; }
  [[nodiscard]] double mean_detect() const noexcept { return mean_detect_; }

  /// All corruption events on ONE node in [0, horizon_seconds), time-ordered,
  /// kind kSilentCorruption, node id 0 (the caller assigns the real id).
  /// Each event carries its drawn detect_after latency.
  [[nodiscard]] std::vector<ft::FaultEvent> sample_node(
      double horizon_seconds, util::Rng& rng) const;

 private:
  double mtbe_;
  double mean_detect_;
};

}  // namespace ftbesst::inject
