#pragma once
// Observability hooks for the injection engine, shared by both execution
// engines so coarse (run_bsp) and DES injected runs report under the same
// counter names:
//   inject.faults.{crash,loss,sdc}   faults that struck a running app
//   inject.rollbacks.l{1..4}         recoveries per restored FTI level
//   inject.full_restarts             unrecoverable faults
//   inject.lost_work_ns              discarded execution, nanoseconds

#include "ft/fti.hpp"
#include "obs/obs.hpp"

namespace ftbesst::inject {

/// Bump the per-kind fault counter for one struck fault.
inline void obs_note_fault(ft::FailureKind kind) {
  if (!obs::enabled()) return;
  static const obs::Counter crash = obs::counter("inject.faults.crash");
  static const obs::Counter loss = obs::counter("inject.faults.loss");
  static const obs::Counter sdc = obs::counter("inject.faults.sdc");
  switch (kind) {
    case ft::FailureKind::kProcessCrash: crash.add(); break;
    case ft::FailureKind::kNodeLoss: loss.add(); break;
    case ft::FailureKind::kSilentCorruption: sdc.add(); break;
  }
}

/// Record a resolved recovery: `level` 1..4 for a rollback to that FTI
/// level, 0 for a full restart; `lost_work_seconds` is the discarded
/// execution window.
inline void obs_note_recovery(int level, double lost_work_seconds) {
  if (!obs::enabled()) return;
  static const obs::Counter l1 = obs::counter("inject.rollbacks.l1");
  static const obs::Counter l2 = obs::counter("inject.rollbacks.l2");
  static const obs::Counter l3 = obs::counter("inject.rollbacks.l3");
  static const obs::Counter l4 = obs::counter("inject.rollbacks.l4");
  static const obs::Counter restarts = obs::counter("inject.full_restarts");
  static const obs::Counter lost = obs::counter("inject.lost_work_ns");
  switch (level) {
    case 1: l1.add(); break;
    case 2: l2.add(); break;
    case 3: l3.add(); break;
    case 4: l4.add(); break;
    default: restarts.add(); break;
  }
  if (lost_work_seconds > 0.0)
    lost.add(static_cast<std::uint64_t>(lost_work_seconds * 1e9));
}

}  // namespace ftbesst::inject
