#include "analytic/speedup.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "ft/young_daly.hpp"

namespace ftbesst::analytic {

namespace {
void check_alpha_n(double alpha, double n) {
  if (alpha < 0.0 || alpha > 1.0)
    throw std::invalid_argument("serial fraction must be in [0,1]");
  if (n < 1.0) throw std::invalid_argument("n must be >= 1");
}
}  // namespace

double amdahl_speedup(double alpha, double n) {
  check_alpha_n(alpha, n);
  return 1.0 / (alpha + (1.0 - alpha) / n);
}

double gustafson_speedup(double alpha, double n) {
  check_alpha_n(alpha, n);
  return alpha + (1.0 - alpha) * n;
}

double cr_expected_time(double work, double alpha, double n,
                        const FaultModel& fm) {
  check_alpha_n(alpha, n);
  if (work <= 0.0) throw std::invalid_argument("work must be positive");
  const double parallel_time = work * (alpha + (1.0 - alpha) / n);
  const double system_mtbf = fm.node_mtbf / n;
  const double interval =
      ft::young_interval(fm.checkpoint_cost, system_mtbf);
  return ft::expected_runtime_cr(parallel_time, interval, fm.checkpoint_cost,
                                 fm.restart_cost, system_mtbf);
}

double cr_speedup(double work, double alpha, double n, const FaultModel& fm) {
  const double t_n = cr_expected_time(work, alpha, n, fm);
  if (!std::isfinite(t_n)) return 0.0;
  return work / t_n;
}

double replication_speedup(double work, double alpha, double n,
                           const FaultModel& fm, double rework_window) {
  check_alpha_n(alpha, n);
  if (rework_window <= 0.0)
    throw std::invalid_argument("rework window must be positive");
  // n logical nodes backed by 2n physical nodes. A pair is interrupted only
  // if its second replica dies within `rework_window` of the first:
  //   rate_pair = 2 * lambda * (lambda * window), lambda = 1/mtbf
  // System rate = n * rate_pair.
  const double lambda = 1.0 / fm.node_mtbf;
  const double pair_rate = 2.0 * lambda * (lambda * rework_window);
  const double system_mtbf = 1.0 / (n * pair_rate);
  const double parallel_time = work * (alpha + (1.0 - alpha) / n);
  const double interval =
      ft::young_interval(fm.checkpoint_cost, system_mtbf);
  const double t = ft::expected_runtime_cr(
      parallel_time, interval, fm.checkpoint_cost, fm.restart_cost,
      system_mtbf);
  if (!std::isfinite(t)) return 0.0;
  return work / t;
}

double optimal_nodes_cr(double work, double alpha, const FaultModel& fm,
                        double max_n) {
  if (max_n < 1.0) throw std::invalid_argument("max_n must be >= 1");
  double best_n = 1.0;
  double best_speedup = cr_speedup(work, alpha, 1.0, fm);
  for (double n = 2.0; n <= max_n; n *= 2.0) {
    const double s = cr_speedup(work, alpha, n, fm);
    if (s > best_speedup) {
      best_speedup = s;
      best_n = n;
    }
  }
  return best_n;
}

double spare_exhaustion_probability(double n, double spares,
                                    double node_mtbf, double mttr) {
  if (n < 1.0 || node_mtbf <= 0.0 || mttr <= 0.0 || spares < 0.0)
    throw std::invalid_argument("invalid spare-pool parameters");
  // Failures outstanding during a repair window ~ Poisson(mean).
  const double mean = n * mttr / node_mtbf;
  // P[X > spares] = 1 - sum_{k<=spares} e^-m m^k / k!
  const auto limit = static_cast<int>(spares);
  double term = std::exp(-mean);
  double cdf = term;
  for (int k = 1; k <= limit; ++k) {
    term *= mean / static_cast<double>(k);
    cdf += term;
  }
  return std::max(0.0, 1.0 - cdf);
}

double spares_for_availability(double n, double node_mtbf, double mttr,
                               double target, double max_spares) {
  if (target <= 0.0 || target >= 1.0)
    throw std::invalid_argument("target probability must be in (0,1)");
  for (double s = 0.0; s <= max_spares; s += 1.0)
    if (spare_exhaustion_probability(n, s, node_mtbf, mttr) <= target)
      return s;
  return max_spares;
}

}  // namespace ftbesst::analytic
