#pragma once
// Analytical reliability-aware scaling baselines from the related work the
// paper positions itself against (Section II):
//
//  * Amdahl / Gustafson — the classic fault-free laws;
//  * Cavelan et al. [CLUSTER'16], Zheng & Lan — Amdahl/Gustafson modified
//    for exponential faults mitigated by coordinated checkpoint/restart.
//    Their key finding, reproduced by bench_ext_analytic: with faults the
//    speedup is no longer monotone in n; there is a reliability-optimal
//    node count beyond which adding nodes hurts;
//  * Hussain et al. [DSN'20] — dual replication: half the throughput, but
//    a pair only fails when both replicas fail close together, pushing the
//    speedup peak to much larger n;
//  * Jin et al. [ICPP'10] — optimal checkpoint interval selection folded
//    into the execution-time model.
//
// All functions take per-node MTBF; the system rate is n/mtbf.

#include <cstdint>

namespace ftbesst::analytic {

/// Classic Amdahl speedup for serial fraction `alpha` on `n` nodes.
[[nodiscard]] double amdahl_speedup(double alpha, double n);

/// Classic Gustafson scaled speedup.
[[nodiscard]] double gustafson_speedup(double alpha, double n);

struct FaultModel {
  double node_mtbf = 1e6;       ///< seconds
  double checkpoint_cost = 30;  ///< C, seconds
  double restart_cost = 60;     ///< R, seconds
};

/// Expected execution time of `work` seconds (single-node-equivalent work,
/// serial fraction alpha) on n nodes with coordinated C/R at the Young-
/// optimal interval for that n. Returns +inf in the thrashing regime.
[[nodiscard]] double cr_expected_time(double work, double alpha, double n,
                                      const FaultModel& fm);

/// Reliability-aware speedup under C/R: T(1, fault-free) / T(n, faults).
[[nodiscard]] double cr_speedup(double work, double alpha, double n,
                                const FaultModel& fm);

/// Reliability-aware speedup with dual replication (Hussain-style): 2n
/// nodes are used as n replicated pairs. Throughput halves; a failure only
/// interrupts execution when both replicas of a pair are lost within one
/// recovery window, so the effective MTBF becomes
///   M_pair_system ~ mtbf^2 / (2 * n * window).
[[nodiscard]] double replication_speedup(double work, double alpha, double n,
                                         const FaultModel& fm,
                                         double rework_window = 3600.0);

/// Node count (searched over powers of 2 up to `max_n`) that maximizes
/// cr_speedup — the "optimal process count" of Cavelan/Jin.
[[nodiscard]] double optimal_nodes_cr(double work, double alpha,
                                      const FaultModel& fm, double max_n);

/// Jin et al. [ICPP'10]-style spare-node analysis: with `spares` warm
/// spares, a failed compute node is replaced immediately while the spare
/// pool is non-empty; the job only takes a full outage when failures
/// outstrip the pool. Returns the probability that, over a repair window
/// `mttr`, the number of failed-and-not-yet-repaired nodes exceeds the
/// pool (Poisson tail with mean n*mttr/mtbf) — i.e. the fraction of time
/// the system runs degraded.
[[nodiscard]] double spare_exhaustion_probability(double n, double spares,
                                                  double node_mtbf,
                                                  double mttr);

/// Smallest spare count keeping exhaustion probability below `target`
/// (searched up to `max_spares`; returns max_spares if unreachable).
[[nodiscard]] double spares_for_availability(double n, double node_mtbf,
                                             double mttr, double target,
                                             double max_spares = 4096);

}  // namespace ftbesst::analytic
