#pragma once
// CMT-bone proxy-application model (the workload of the paper's Fig. 1
// Vulcan validation, from the original BE-SST study [Ramaswamy et al.,
// ICPP'18]). CMT-bone abstracts CMT-nek: per timestep, spectral-element
// compute over the rank-local elements plus a global dt reduction.

#include <cstdint>

#include "core/beo.hpp"

namespace ftbesst::apps {

struct CmtBoneConfig {
  int element_size = 5;           ///< spectral points per element edge
  int elements_per_rank = 64;     ///< rank-local element count
  std::int64_t ranks = 8;
  int timesteps = 100;
  /// Emit the per-timestep dt reduction as an explicit AllReduce
  /// instruction. Leave false when the calibrated timestep kernel already
  /// includes it (as the instrumented CMT-bone timings do) — an explicit
  /// instruction would double-count the collective.
  bool explicit_reduction = false;

  void validate() const;
};

/// Build the CMT-bone AppBEO. The timestep kernel's model parameters are
/// {element_size, elements_per_rank, ranks}.
[[nodiscard]] core::AppBEO build_cmtbone(const CmtBoneConfig& config);

}  // namespace ftbesst::apps
