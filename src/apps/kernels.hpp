#pragma once
// Canonical kernel names shared between AppBEO builders, testbeds,
// calibration campaigns, and ArchBEO bindings. A kernel name is the join
// key of the whole workflow: the instrumented code block, its calibration
// dataset, its fitted model, and the abstract instruction all carry it.

#include <string>

#include "ft/fti.hpp"

namespace ftbesst::apps {

inline constexpr const char* kLuleshTimestep = "lulesh_timestep";
inline constexpr const char* kCmtBoneTimestep = "cmtbone_timestep";

/// Checkpoint kernel name for an FTI level ("ckpt_l1" .. "ckpt_l4").
[[nodiscard]] inline std::string checkpoint_kernel(ft::Level level) {
  return "ckpt_l" + std::to_string(static_cast<int>(level));
}

}  // namespace ftbesst::apps
