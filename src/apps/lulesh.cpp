#include "apps/lulesh.hpp"

#include <cmath>
#include <stdexcept>

#include "apps/kernels.hpp"

namespace ftbesst::apps {

bool is_perfect_cube(std::int64_t n) {
  if (n < 1) return false;
  const auto root = static_cast<std::int64_t>(
      std::llround(std::cbrt(static_cast<double>(n))));
  for (std::int64_t r = std::max<std::int64_t>(1, root - 1); r <= root + 1;
       ++r)
    if (r * r * r == n) return true;
  return false;
}

std::int64_t cube_side(std::int64_t n) {
  if (!is_perfect_cube(n))
    throw std::invalid_argument(std::to_string(n) + " is not a perfect cube");
  const auto root = static_cast<std::int64_t>(
      std::llround(std::cbrt(static_cast<double>(n))));
  for (std::int64_t r = std::max<std::int64_t>(1, root - 1); r <= root + 1;
       ++r)
    if (r * r * r == n) return r;
  return root;
}

std::uint64_t lulesh_checkpoint_bytes(int epr) {
  if (epr < 1) throw std::invalid_argument("epr must be >= 1");
  constexpr std::uint64_t kFieldsPerElement = 45;
  constexpr std::uint64_t kBytesPerField = 8;
  const auto e = static_cast<std::uint64_t>(epr);
  return e * e * e * kFieldsPerElement * kBytesPerField;
}

std::uint64_t lulesh_halo_bytes(int epr) {
  if (epr < 1) throw std::invalid_argument("epr must be >= 1");
  constexpr std::uint64_t kFieldsPerFace = 3;  // nodal coordinates/velocity
  constexpr std::uint64_t kBytesPerField = 8;
  const auto e = static_cast<std::uint64_t>(epr);
  return e * e * kFieldsPerFace * kBytesPerField;
}

void LuleshConfig::validate() const {
  if (epr < 1) throw std::invalid_argument("epr must be >= 1");
  if (timesteps < 1) throw std::invalid_argument("timesteps must be >= 1");
  if (!is_perfect_cube(ranks))
    throw std::invalid_argument(
        "LULESH requires a perfect-cube number of ranks, got " +
        std::to_string(ranks));
  if (!plan.empty()) fti.validate(ranks);
}

namespace {

void append_checkpoints(core::AppBEO& app, const LuleshConfig& config,
                        const ft::CheckpointScheduler& scheduler, int step) {
  const std::vector<double> params{static_cast<double>(config.epr),
                                   static_cast<double>(config.ranks)};
  for (const ft::PlanEntry& entry : scheduler.due_entries_after(step))
    app.checkpoint(entry.level, checkpoint_kernel(entry.level), params,
                   entry.async);
}

}  // namespace

core::AppBEO build_lulesh_fti(const LuleshConfig& config) {
  config.validate();
  core::AppBEO app("lulesh_fti", config.ranks);
  app.set_checkpoint_bytes_per_rank(lulesh_checkpoint_bytes(config.epr));
  const ft::CheckpointScheduler scheduler(config.plan);
  const std::vector<double> params{static_cast<double>(config.epr),
                                   static_cast<double>(config.ranks)};
  for (int step = 1; step <= config.timesteps; ++step) {
    app.compute(kLuleshTimestep, params);
    app.end_timestep();
    append_checkpoints(app, config, scheduler, step);
  }
  return app;
}

core::AppBEO build_lulesh_explicit_comm(const LuleshConfig& config) {
  config.validate();
  core::AppBEO app("lulesh_explicit", config.ranks);
  app.set_checkpoint_bytes_per_rank(lulesh_checkpoint_bytes(config.epr));
  const ft::CheckpointScheduler scheduler(config.plan);
  const std::vector<double> params{static_cast<double>(config.epr),
                                   static_cast<double>(config.ranks)};
  // Interior ranks exchange across 6 faces; boundary ranks fewer — the
  // coarse collective model takes the dominant interior degree.
  const int degree = config.ranks > 1 ? 6 : 0;
  for (int step = 1; step <= config.timesteps; ++step) {
    app.compute(kLuleshTimestep, params);
    app.neighbor_exchange(degree, lulesh_halo_bytes(config.epr));
    // LULESH computes a global dt reduction each step (one double).
    app.allreduce(8);
    app.end_timestep();
    append_checkpoints(app, config, scheduler, step);
  }
  return app;
}

}  // namespace ftbesst::apps
