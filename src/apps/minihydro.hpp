#pragma once
// MiniHydro: a real, executable explicit compressible-flow kernel.
//
// Everything else in apps/ *models* workloads; this one *is* one — a small
// Sedov-blast-style finite-difference hydrodynamics timestep on a periodic
// n^3 grid (density, specific internal energy, velocity; ideal-gas EOS).
// Its role in the reproduction: the paper's Model Development phase begins
// by instrumenting and running real code on a real machine. With MiniHydro
// and LocalTestbed (testbed_local.hpp) the whole workflow can be driven by
// genuine wall-clock measurements taken on the build machine — calibrate on
// small grids, predict big ones, then actually run the big ones and score
// the prediction (examples/live_calibration.cpp).
//
// The numerics are deliberately simple but honest: flux-form density
// update (mass exactly conserved on the periodic grid), pressure-gradient
// acceleration, pdV energy exchange. Uniform states are exact fixed points.

#include <cstdint>
#include <vector>

namespace ftbesst::apps {

class MiniHydro {
 public:
  /// Periodic n x n x n grid, Sedov-like initialization: uniform cold gas
  /// with an energy spike in the central cell. n >= 4.
  explicit MiniHydro(int n);

  /// Advance one explicit timestep (dt in arbitrary time units; stability
  /// requires dt small relative to grid spacing / sound speed — 1e-3 is
  /// safe for the default setup).
  void step(double dt);

  [[nodiscard]] int n() const noexcept { return n_; }
  [[nodiscard]] std::int64_t cells() const noexcept {
    return static_cast<std::int64_t>(n_) * n_ * n_;
  }
  /// Conserved exactly by the flux-form update (periodic boundaries).
  [[nodiscard]] double total_mass() const;
  /// Internal + kinetic energy; bounded for stable dt.
  [[nodiscard]] double total_energy() const;
  [[nodiscard]] double max_velocity() const;
  [[nodiscard]] const std::vector<double>& density() const noexcept {
    return rho_;
  }

 private:
  [[nodiscard]] std::size_t idx(int i, int j, int k) const noexcept {
    return (static_cast<std::size_t>((k + n_) % n_) * n_ +
            static_cast<std::size_t>((j + n_) % n_)) *
               n_ +
           static_cast<std::size_t>((i + n_) % n_);
  }

  int n_;
  double h_;  // grid spacing
  std::vector<double> rho_, e_, u_, v_, w_;
  std::vector<double> p_, rho_next_, e_next_, u_next_, v_next_, w_next_;
};

}  // namespace ftbesst::apps
