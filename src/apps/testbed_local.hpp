#pragma once
// LocalTestbed: the build machine as a benchmarking target.
//
// Where QuartzTestbed synthesizes timings, LocalTestbed *measures* them:
// it runs the executable MiniHydro kernel and reports wall-clock samples —
// real calibration data from a real machine, noise and all. This closes the
// last gap between our reproduction and the paper's workflow: instrument
// real code, benchmark it, model it, predict beyond the benchmarked range,
// then check the prediction against an actual run
// (examples/live_calibration.cpp).

#include <span>
#include <string>
#include <vector>

#include "model/dataset.hpp"

namespace ftbesst::apps {

inline constexpr const char* kMiniHydroStep = "minihydro_step";

class LocalTestbed {
 public:
  /// Timing samples (seconds) for `samples` single timesteps of MiniHydro
  /// at grid size params = {n}. Each sample times one step() of a warmed-up
  /// instance. Kernel must be kMiniHydroStep.
  [[nodiscard]] std::vector<double> measure_kernel(
      const std::string& kernel, std::span<const double> params,
      int samples) const;

  /// Full calibration campaign over the given grid sizes.
  [[nodiscard]] model::Dataset run_campaign(const std::vector<int>& sizes,
                                            int samples_per_point) const;
};

}  // namespace ftbesst::apps
