#include "apps/testbed.hpp"

#include <cmath>
#include <functional>
#include <stdexcept>

#include "apps/kernels.hpp"
#include "apps/lulesh.hpp"
#include "apps/stencil3d.hpp"
#include "ft/fti.hpp"

namespace ftbesst::apps {

namespace {

ft::Level level_for_kernel(const std::string& kernel) {
  for (ft::Level level : {ft::Level::kL1, ft::Level::kL2, ft::Level::kL3,
                          ft::Level::kL4})
    if (kernel == checkpoint_kernel(level)) return level;
  throw std::invalid_argument("unknown checkpoint kernel: " + kernel);
}

/// Deterministic per-combination multiplier ~ lognormal(sigma), seeded from
/// the machine seed and the configuration coordinates.
double hashed_config_effect(std::uint64_t machine_seed, std::size_t key,
                            double sigma) {
  std::uint64_t sm = machine_seed ^ (0x9e3779b97f4a7c15ULL * (key + 1));
  util::Rng rng(util::splitmix64(sm));
  return std::exp(sigma * rng.normal());
}

}  // namespace

QuartzTestbed::QuartzTestbed(QuartzTruthParams params, ft::FtiConfig fti,
                             std::uint64_t machine_seed)
    : params_(params),
      fti_(fti),
      ckpt_truth_(params.storage, fti),
      machine_seed_(machine_seed) {}

double QuartzTestbed::true_timestep(int epr, std::int64_t ranks) const {
  if (epr < 1 || ranks < 1)
    throw std::invalid_argument("epr and ranks must be >= 1");
  const double e = epr;
  const double volume = params_.ts_elem * e * e * e;
  const double net =
      ranks > 1 ? 1.0 + params_.ts_net_growth *
                            std::log2(static_cast<double>(ranks))
                : 1.0;
  const double surface = params_.ts_surface * e * e * net;
  return params_.ts_base + volume + surface;
}

double QuartzTestbed::true_checkpoint(ft::Level level, int epr,
                                      std::int64_t ranks) const {
  const std::uint64_t bytes = lulesh_checkpoint_bytes(epr);
  const double clean = ckpt_truth_.cost(level, bytes, ranks);
  // Hidden coordination/interference: grows with parallelism and slightly
  // super-linearly with data volume (file-system and fabric interference);
  // network-touching levels pay progressively more.
  const double level_factor =
      level == ft::Level::kL1 ? 1.0 : 1.0 + 1.5 * (static_cast<int>(level) - 1);
  const double node_mb =
      static_cast<double>(bytes) * fti_.node_size / 1.0e6;
  const double coord = params_.ckpt_coord_coeff * level_factor *
                       std::pow(static_cast<double>(ranks), 0.9) *
                       std::pow(std::max(node_mb, 0.05), 1.2);
  return clean + coord;
}

double QuartzTestbed::true_stencil_sweep(int nx) const {
  if (nx < 1) throw std::invalid_argument("nx must be >= 1");
  const double n = nx;
  return params_.st_base + params_.st_cell * n * n * n;
}

double QuartzTestbed::config_effect(const std::string& kernel, int epr,
                                    std::int64_t ranks, double sigma) const {
  const std::size_t key =
      std::hash<std::string>{}(kernel) ^
      (static_cast<std::size_t>(epr) * 1000003u) ^
      (static_cast<std::size_t>(ranks) * 29u);
  return hashed_config_effect(machine_seed_, key, sigma);
}

std::vector<double> QuartzTestbed::measure_kernel(
    const std::string& kernel, std::span<const double> params, int samples,
    util::Rng& rng) const {
  if (params.size() != 2)
    throw std::invalid_argument("Quartz kernels take {epr, ranks}");
  if (samples < 1) throw std::invalid_argument("samples must be >= 1");
  const int epr = static_cast<int>(params[0]);
  const auto ranks = static_cast<std::int64_t>(params[1]);

  double median;
  double noise_sigma;
  double config_sigma;
  if (kernel == kLuleshTimestep) {
    median = true_timestep(epr, ranks);
    noise_sigma = params_.ts_noise_sigma;
    config_sigma = params_.ts_config_sigma;
  } else if (kernel == kStencilSweep) {
    median = true_stencil_sweep(/*nx=*/epr);
    noise_sigma = params_.ts_noise_sigma;
    config_sigma = params_.ts_config_sigma;
  } else {
    median = true_checkpoint(level_for_kernel(kernel), epr, ranks);
    noise_sigma = params_.ckpt_noise_sigma;
    config_sigma = params_.ckpt_config_sigma;
  }
  median *= config_effect(kernel, epr, ranks, config_sigma);

  std::vector<double> out(static_cast<std::size_t>(samples));
  for (double& x : out) x = rng.lognormal_median(median, noise_sigma);
  return out;
}

QuartzTestbed::MeasuredRun QuartzTestbed::run_application(
    int epr, std::int64_t ranks, int timesteps,
    const std::vector<ft::PlanEntry>& plan, util::Rng& rng) const {
  if (timesteps < 1) throw std::invalid_argument("timesteps must be >= 1");
  const ft::CheckpointScheduler scheduler(plan);
  MeasuredRun run;
  run.timestep_end_times.reserve(static_cast<std::size_t>(timesteps));
  double clock = 0.0;
  const double ts_median =
      true_timestep(epr, ranks) *
      config_effect(kLuleshTimestep, epr, ranks, params_.ts_config_sigma);
  for (int step = 1; step <= timesteps; ++step) {
    clock += rng.lognormal_median(ts_median, params_.ts_noise_sigma);
    run.timestep_end_times.push_back(clock);
    for (ft::Level level : scheduler.due_after(step)) {
      const double ck_median =
          true_checkpoint(level, epr, ranks) *
          config_effect(checkpoint_kernel(level), epr, ranks,
                        params_.ckpt_config_sigma);
      clock += rng.lognormal_median(ck_median, params_.ckpt_noise_sigma);
    }
  }
  run.total_seconds = clock;
  return run;
}

VulcanTestbed::VulcanTestbed(VulcanTruthParams params,
                             std::uint64_t machine_seed)
    : params_(params), machine_seed_(machine_seed) {}

double VulcanTestbed::true_timestep(int element_size, int elements_per_rank,
                                    std::int64_t ranks) const {
  if (element_size < 2 || elements_per_rank < 1 || ranks < 1)
    throw std::invalid_argument("invalid CMT-bone parameters");
  const double pts = std::pow(static_cast<double>(element_size), 3);
  const double compute = params_.ts_point * pts * elements_per_rank;
  const double coll =
      ranks > 1 ? params_.ts_coll_latency *
                      std::log2(static_cast<double>(ranks))
                : 0.0;
  return params_.ts_base + compute + coll;
}

double VulcanTestbed::config_effect(const std::string& kernel,
                                    std::span<const double> params,
                                    double sigma) const {
  std::size_t key = std::hash<std::string>{}(kernel);
  for (double p : params)
    key ^= std::hash<double>{}(p) + 0x9e3779b9u + (key << 6) + (key >> 2);
  return hashed_config_effect(machine_seed_, key, sigma);
}

std::vector<double> VulcanTestbed::measure_kernel(
    const std::string& kernel, std::span<const double> params, int samples,
    util::Rng& rng) const {
  if (kernel != kCmtBoneTimestep)
    throw std::invalid_argument("Vulcan testbed only runs CMT-bone");
  if (params.size() != 3)
    throw std::invalid_argument(
        "cmtbone_timestep takes {element_size, elements_per_rank, ranks}");
  if (samples < 1) throw std::invalid_argument("samples must be >= 1");
  const double median =
      true_timestep(static_cast<int>(params[0]), static_cast<int>(params[1]),
                    static_cast<std::int64_t>(params[2])) *
      config_effect(kernel, params, params_.ts_config_sigma);
  std::vector<double> out(static_cast<std::size_t>(samples));
  for (double& x : out) x = rng.lognormal_median(median, params_.ts_noise_sigma);
  return out;
}

VulcanTestbed::MeasuredRun VulcanTestbed::run_application(
    int element_size, int elements_per_rank, std::int64_t ranks,
    int timesteps, util::Rng& rng) const {
  if (timesteps < 1) throw std::invalid_argument("timesteps must be >= 1");
  MeasuredRun run;
  run.timestep_end_times.reserve(static_cast<std::size_t>(timesteps));
  const std::vector<double> params{static_cast<double>(element_size),
                                   static_cast<double>(elements_per_rank),
                                   static_cast<double>(ranks)};
  const double median =
      true_timestep(element_size, elements_per_rank, ranks) *
      config_effect(kCmtBoneTimestep, params, params_.ts_config_sigma);
  double clock = 0.0;
  for (int step = 0; step < timesteps; ++step) {
    clock += rng.lognormal_median(median, params_.ts_noise_sigma);
    run.timestep_end_times.push_back(clock);
  }
  run.total_seconds = clock;
  return run;
}

std::map<std::string, model::Dataset> run_campaign(
    const QuartzTestbed& testbed, const CampaignSpec& spec,
    const std::vector<std::string>& kernels) {
  if (kernels.empty()) throw std::invalid_argument("no kernels to calibrate");
  util::Rng rng(spec.seed);
  std::map<std::string, model::Dataset> out;
  for (const std::string& kernel : kernels) {
    model::Dataset data({"epr", "ranks"});
    for (int epr : spec.eprs) {
      for (std::int64_t ranks : spec.ranks) {
        const std::vector<double> point{static_cast<double>(epr),
                                        static_cast<double>(ranks)};
        data.add_row(point, testbed.measure_kernel(
                                kernel, point, spec.samples_per_point, rng));
      }
    }
    out.emplace(kernel, std::move(data));
  }
  return out;
}

}  // namespace ftbesst::apps
