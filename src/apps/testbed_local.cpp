#include "apps/testbed_local.hpp"

#include <chrono>
#include <stdexcept>

#include "apps/minihydro.hpp"

namespace ftbesst::apps {

std::vector<double> LocalTestbed::measure_kernel(
    const std::string& kernel, std::span<const double> params,
    int samples) const {
  if (kernel != kMiniHydroStep)
    throw std::invalid_argument("LocalTestbed only runs " +
                                std::string(kMiniHydroStep));
  if (params.size() != 1)
    throw std::invalid_argument("minihydro_step takes {n}");
  if (samples < 1) throw std::invalid_argument("samples must be >= 1");
  const int n = static_cast<int>(params[0]);

  MiniHydro solver(n);
  // Warm-up: fault in the working set and let the blast develop so the
  // timed steps exercise representative (non-trivial) state.
  for (int s = 0; s < 2; ++s) solver.step(1e-3);

  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(samples));
  using clock = std::chrono::steady_clock;
  for (int s = 0; s < samples; ++s) {
    const auto begin = clock::now();
    solver.step(1e-3);
    const auto end = clock::now();
    out.push_back(std::chrono::duration<double>(end - begin).count());
  }
  return out;
}

model::Dataset LocalTestbed::run_campaign(const std::vector<int>& sizes,
                                          int samples_per_point) const {
  if (sizes.empty()) throw std::invalid_argument("no grid sizes");
  model::Dataset data({"n"});
  for (int n : sizes) {
    const std::vector<double> point{static_cast<double>(n)};
    data.add_row(point,
                 measure_kernel(kMiniHydroStep, point, samples_per_point));
  }
  return data;
}

}  // namespace ftbesst::apps
