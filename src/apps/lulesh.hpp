#pragma once
// LULESH_FTI proxy-application model (the paper's case-study workload).
//
// LULESH decomposes a cubic domain into one cubic subdomain per rank, so
// the rank count must be a perfect cube; the problem size parameter `epr`
// is the per-rank subdomain edge length (the paper sweeps 5..25). The FTI
// integration (after Kermarquer's LULESH_FTI) checkpoints the protected
// simulation state on a fixed timestep period. The builder emits the
// FT-aware iterative-solver structure of the paper's Fig. 3:
//
//   for each timestep: [timestep kernel] ; if due: [checkpoint(level)]

#include <cstdint>
#include <vector>

#include "core/beo.hpp"
#include "ft/fti.hpp"

namespace ftbesst::apps {

/// True when n is a perfect cube (1, 8, 27, 64, ...).
[[nodiscard]] bool is_perfect_cube(std::int64_t n);
/// Integer cube root of a perfect cube.
[[nodiscard]] std::int64_t cube_side(std::int64_t n);

/// Protected state per rank: LULESH keeps ~45 field arrays of doubles over
/// epr^3 elements (nodal + element-centered), which is what FTI writes.
[[nodiscard]] std::uint64_t lulesh_checkpoint_bytes(int epr);

/// Halo exchange volume per neighbour face: epr^2 elements x a few fields.
[[nodiscard]] std::uint64_t lulesh_halo_bytes(int epr);

struct LuleshConfig {
  int epr = 10;
  std::int64_t ranks = 8;
  int timesteps = 200;
  /// Active checkpoint levels with their periods ("No FT" = empty).
  std::vector<ft::PlanEntry> plan;
  ft::FtiConfig fti;

  /// Enforces the perfect-cube rank rule and (when checkpointing) FTI's
  /// rank-multiple constraint. Throws std::invalid_argument on violation.
  void validate() const;
};

/// Build the LULESH_FTI AppBEO. The timestep kernel is modeled at
/// whole-timestep granularity (as instrumented in the case study: the
/// kernel's calibration data already includes its internal halo exchange),
/// and checkpoints are separate coordinated instructions whose model
/// parameters are {epr, ranks}.
[[nodiscard]] core::AppBEO build_lulesh_fti(const LuleshConfig& config);

/// Variant exposing LULESH's communication structure explicitly (compute +
/// 6-neighbour halo exchange per timestep) for DES-level studies where the
/// network model, not the aggregate kernel, should produce comm time.
[[nodiscard]] core::AppBEO build_lulesh_explicit_comm(
    const LuleshConfig& config);

}  // namespace ftbesst::apps
