#pragma once
// Stencil3D proxy application — a second workload family for algorithmic
// DSE. Unlike the LULESH case study (whose instrumented timestep kernel
// absorbs its communication), Stencil3D is built with *explicit*
// communication instructions: per sweep, a 7-point-stencil compute kernel
// over the rank-local block, a 6-face halo exchange, and a residual
// allreduce every `residual_period` sweeps. The compute kernel is
// calibrated compute-only; communication time comes from the architecture's
// network model — exercising the plug-and-play split the BE-SST workflow
// advertises (swap the interconnect, keep the app).

#include <cstdint>

#include "core/beo.hpp"
#include "ft/fti.hpp"

namespace ftbesst::apps {

inline constexpr const char* kStencilSweep = "stencil3d_sweep";

struct Stencil3dConfig {
  int nx = 32;              ///< rank-local block edge (nx^3 cells)
  std::int64_t ranks = 8;   ///< must be a perfect cube (cubic decomposition)
  int sweeps = 100;
  int residual_period = 10; ///< allreduce every N sweeps
  /// Optional FT plan (checkpoints between sweeps), FTI-constrained.
  std::vector<ft::PlanEntry> plan;
  ft::FtiConfig fti;

  void validate() const;

  /// Strong-scaling constructor: a FIXED global grid of global_nx^3 cells
  /// divided over `ranks` (a perfect cube whose side divides global_nx);
  /// nx becomes global_nx / cbrt(ranks). More ranks -> smaller blocks ->
  /// worse surface-to-volume — the classic strong-scaling DSE question.
  [[nodiscard]] static Stencil3dConfig strong_scaling(int global_nx,
                                                      std::int64_t ranks,
                                                      int sweeps = 100);
};

/// Halo bytes exchanged per face per sweep: one ghost layer of doubles.
[[nodiscard]] std::uint64_t stencil3d_halo_bytes(int nx);
/// Checkpoint volume per rank: the solution + RHS grids.
[[nodiscard]] std::uint64_t stencil3d_checkpoint_bytes(int nx);

/// Build the Stencil3D AppBEO. Compute kernel parameters: {nx, ranks}.
[[nodiscard]] core::AppBEO build_stencil3d(const Stencil3dConfig& config);

}  // namespace ftbesst::apps
