#pragma once
// Synthetic ground-truth machines ("testbeds").
//
// The paper benchmarks LULESH_FTI on LLNL's Quartz (and, in prior work,
// CMT-bone on Vulcan) to obtain calibration data and measured full-system
// runs. We have neither machine, so the testbed plays the machine's role:
// hidden analytic cost functions with three realism layers the modeling
// workflow has to cope with, exactly as it copes with a real machine:
//
//   1. multiplicative log-normal *run-to-run noise* on every sample
//      (machine noise — averaged down by repeated sampling);
//   2. a fixed per-(kernel, parameter-combination) *configuration effect*
//      (rank placement, file-system state...): systematic, reproducible,
//      invisible to smooth closed-form models — this is what keeps
//      validation MAPE in the paper's 5-20% band rather than ~0%;
//   3. cost terms slightly richer than the regression feature space
//      (congestion-scaled surface exchange inside the timestep kernel,
//      coordination overheads inside the checkpoint kernels).
//
// The BE-SST workflow must never read the hidden truth; it interacts with
// the testbed only through measure_kernel() (benchmarking) and
// run_application() (measured full-system runs for validation).

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "ft/checkpoint_cost.hpp"
#include "ft/fti.hpp"
#include "model/dataset.hpp"
#include "util/rng.hpp"

namespace ftbesst::apps {

struct QuartzTruthParams {
  // --- LULESH timestep kernel truth ---
  double ts_base = 2.0e-4;       ///< fixed per-timestep cost (s)
  double ts_elem = 3.5e-6;       ///< s per element (epr^3 volume term)
  double ts_surface = 2.2e-5;    ///< s per surface element (epr^2 exchange)
  double ts_net_growth = 0.12;   ///< surface-term growth per log2(ranks)
  double ts_noise_sigma = 0.05;  ///< run-to-run log-noise
  double ts_config_sigma = 0.05; ///< per-combination systematic effect

  // --- Stencil3D sweep kernel truth (compute-only: its communication is
  //     explicit in the AppBEO and comes from the network model) ---
  double st_base = 1.0e-4;
  double st_cell = 5.0e-8;  ///< s per cell (nx^3)

  // --- FTI checkpoint kernel truth (built on the analytic composition) ---
  ft::StorageParams storage;
  /// Hidden coordination/interference coefficient: the term
  /// coeff * ranks^0.9 * sqrt(MB/node) * level_factor that makes
  /// coordinated-checkpoint cost grow with parallelism and data volume
  /// beyond the clean storage composition (FTI metadata/synchronization).
  double ckpt_coord_coeff = 1.5e-3;
  double ckpt_noise_sigma = 0.10;
  double ckpt_config_sigma = 0.13;

  QuartzTruthParams() {
    // Quartz-era node-local storage and per-node fabric share (tuned so the
    // case-study shapes — Figs. 5-9 — land in the paper's bands).
    storage.local_write_bw = 2.5e8;
    storage.local_latency = 4e-3;
    storage.nic_bw = 1.5e9;
    storage.congestion_per_node = 2e-3;
  }
};

class QuartzTestbed {
 public:
  explicit QuartzTestbed(QuartzTruthParams params = {},
                         ft::FtiConfig fti = {},
                         std::uint64_t machine_seed = 0x9a27);

  [[nodiscard]] const ft::FtiConfig& fti() const noexcept { return fti_; }
  [[nodiscard]] const QuartzTruthParams& params() const noexcept {
    return params_;
  }

  /// Hidden truth (median cost, before noise). Exposed for testing the
  /// testbed itself; the modeling workflow must not call these.
  [[nodiscard]] double true_timestep(int epr, std::int64_t ranks) const;
  [[nodiscard]] double true_checkpoint(ft::Level level, int epr,
                                       std::int64_t ranks) const;
  [[nodiscard]] double true_stencil_sweep(int nx) const;

  /// "Run the instrumented binary": returns `samples` timing measurements
  /// of `kernel` at {epr, ranks}. Kernels: "lulesh_timestep",
  /// "stencil3d_sweep" (params {nx, ranks}), "ckpt_l1" .. "ckpt_l4".
  [[nodiscard]] std::vector<double> measure_kernel(
      const std::string& kernel, std::span<const double> params, int samples,
      util::Rng& rng) const;

  /// A measured full application run (what the paper plots as
  /// "benchmarked" in Figs. 7-8): per-timestep cumulative wall-clock for
  /// LULESH_FTI with the given checkpoint plan.
  struct MeasuredRun {
    std::vector<double> timestep_end_times;
    double total_seconds = 0.0;
  };
  [[nodiscard]] MeasuredRun run_application(
      int epr, std::int64_t ranks, int timesteps,
      const std::vector<ft::PlanEntry>& plan, util::Rng& rng) const;

 private:
  [[nodiscard]] double config_effect(const std::string& kernel, int epr,
                                     std::int64_t ranks,
                                     double sigma) const;

  QuartzTruthParams params_;
  ft::FtiConfig fti_;
  ft::CheckpointCostModel ckpt_truth_;
  std::uint64_t machine_seed_;
};

struct VulcanTruthParams {
  double ts_point = 9.0e-8;       ///< s per spectral grid point per element
  double ts_base = 5.0e-5;
  double ts_coll_latency = 8.0e-6;  ///< per-log2(ranks) reduction cost
  double ts_noise_sigma = 0.06;
  double ts_config_sigma = 0.05;
};

/// Vulcan-like (BlueGene/Q, 5-D torus) machine running CMT-bone — the
/// ground truth behind the Fig. 1 style validation/prediction scatter.
class VulcanTestbed {
 public:
  explicit VulcanTestbed(VulcanTruthParams params = {},
                         std::uint64_t machine_seed = 0x51cb);

  [[nodiscard]] double true_timestep(int element_size, int elements_per_rank,
                                     std::int64_t ranks) const;
  [[nodiscard]] std::vector<double> measure_kernel(
      const std::string& kernel, std::span<const double> params, int samples,
      util::Rng& rng) const;

  /// A measured full CMT-bone run (no FT): per-timestep cumulative
  /// wall-clock, the Fig. 1 full-application counterpart.
  struct MeasuredRun {
    std::vector<double> timestep_end_times;
    double total_seconds = 0.0;
  };
  [[nodiscard]] MeasuredRun run_application(int element_size,
                                            int elements_per_rank,
                                            std::int64_t ranks, int timesteps,
                                            util::Rng& rng) const;

 private:
  [[nodiscard]] double config_effect(const std::string& kernel,
                                     std::span<const double> params,
                                     double sigma) const;
  VulcanTruthParams params_;
  std::uint64_t machine_seed_;
};

/// Benchmarking campaign spec: the parameter grid of the paper's Table II.
struct CampaignSpec {
  std::vector<int> eprs{5, 10, 15, 20, 25};
  std::vector<std::int64_t> ranks{8, 64, 216, 512, 1000};
  int samples_per_point = 10;
  std::uint64_t seed = 0xca11;
};

/// Run the instrumentation campaign on the testbed for the given kernels,
/// producing one calibration Dataset per kernel (param names {epr, ranks}).
[[nodiscard]] std::map<std::string, model::Dataset> run_campaign(
    const QuartzTestbed& testbed, const CampaignSpec& spec,
    const std::vector<std::string>& kernels);

}  // namespace ftbesst::apps
