#include "apps/stencil3d.hpp"

#include <stdexcept>

#include "apps/kernels.hpp"
#include "apps/lulesh.hpp"  // is_perfect_cube

namespace ftbesst::apps {

void Stencil3dConfig::validate() const {
  if (nx < 2) throw std::invalid_argument("nx must be >= 2");
  if (sweeps < 1) throw std::invalid_argument("sweeps must be >= 1");
  if (residual_period < 1)
    throw std::invalid_argument("residual_period must be >= 1");
  if (!is_perfect_cube(ranks))
    throw std::invalid_argument(
        "Stencil3D requires a perfect-cube number of ranks");
  if (!plan.empty()) fti.validate(ranks);
}

Stencil3dConfig Stencil3dConfig::strong_scaling(int global_nx,
                                                std::int64_t ranks,
                                                int sweeps) {
  if (!is_perfect_cube(ranks))
    throw std::invalid_argument(
        "strong scaling requires a perfect-cube rank count");
  const std::int64_t side = cube_side(ranks);
  if (global_nx < 2 || global_nx % side != 0)
    throw std::invalid_argument(
        "global grid edge must be a positive multiple of cbrt(ranks)");
  Stencil3dConfig cfg;
  cfg.nx = static_cast<int>(global_nx / side);
  if (cfg.nx < 2)
    throw std::invalid_argument("decomposition leaves blocks thinner than 2");
  cfg.ranks = ranks;
  cfg.sweeps = sweeps;
  return cfg;
}

std::uint64_t stencil3d_halo_bytes(int nx) {
  if (nx < 1) throw std::invalid_argument("nx must be >= 1");
  const auto n = static_cast<std::uint64_t>(nx);
  return n * n * 8;  // one face of doubles
}

std::uint64_t stencil3d_checkpoint_bytes(int nx) {
  if (nx < 1) throw std::invalid_argument("nx must be >= 1");
  const auto n = static_cast<std::uint64_t>(nx);
  return 2 * n * n * n * 8;  // solution + RHS
}

core::AppBEO build_stencil3d(const Stencil3dConfig& config) {
  config.validate();
  core::AppBEO app("stencil3d", config.ranks);
  app.set_checkpoint_bytes_per_rank(stencil3d_checkpoint_bytes(config.nx));
  const ft::CheckpointScheduler scheduler(config.plan);
  const std::vector<double> params{static_cast<double>(config.nx),
                                   static_cast<double>(config.ranks)};
  const int degree = config.ranks > 1 ? 6 : 0;
  for (int sweep = 1; sweep <= config.sweeps; ++sweep) {
    app.compute(kStencilSweep, params);
    app.neighbor_exchange(degree, stencil3d_halo_bytes(config.nx));
    if (sweep % config.residual_period == 0) app.allreduce(8);
    app.end_timestep();
    for (const ft::PlanEntry& entry : scheduler.due_entries_after(sweep))
      app.checkpoint(entry.level, checkpoint_kernel(entry.level), params,
                     entry.async);
  }
  return app;
}

}  // namespace ftbesst::apps
