#include "apps/cmtbone.hpp"

#include <stdexcept>

#include "apps/kernels.hpp"

namespace ftbesst::apps {

void CmtBoneConfig::validate() const {
  if (element_size < 2)
    throw std::invalid_argument("element_size must be >= 2");
  if (elements_per_rank < 1)
    throw std::invalid_argument("elements_per_rank must be >= 1");
  if (ranks < 1) throw std::invalid_argument("ranks must be >= 1");
  if (timesteps < 1) throw std::invalid_argument("timesteps must be >= 1");
}

core::AppBEO build_cmtbone(const CmtBoneConfig& config) {
  config.validate();
  core::AppBEO app("cmtbone", config.ranks);
  const std::vector<double> params{
      static_cast<double>(config.element_size),
      static_cast<double>(config.elements_per_rank),
      static_cast<double>(config.ranks)};
  for (int step = 1; step <= config.timesteps; ++step) {
    app.compute(kCmtBoneTimestep, params);
    if (config.explicit_reduction) app.allreduce(8);  // global dt
    app.end_timestep();
  }
  return app;
}

}  // namespace ftbesst::apps
