#include "apps/minihydro.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ftbesst::apps {

namespace {
constexpr double kGamma = 1.4;    // ideal diatomic gas
constexpr double kRho0 = 1.0;     // ambient density
constexpr double kE0 = 1e-3;      // ambient specific internal energy
constexpr double kBlast = 10.0;   // energy spike in the central cell
}  // namespace

MiniHydro::MiniHydro(int n) : n_(n), h_(1.0 / n) {
  if (n < 4) throw std::invalid_argument("MiniHydro needs n >= 4");
  const auto total = static_cast<std::size_t>(cells());
  rho_.assign(total, kRho0);
  e_.assign(total, kE0);
  u_.assign(total, 0.0);
  v_.assign(total, 0.0);
  w_.assign(total, 0.0);
  p_.assign(total, 0.0);
  rho_next_ = rho_;
  e_next_ = e_;
  u_next_ = u_;
  v_next_ = v_;
  w_next_ = w_;
  e_[idx(n_ / 2, n_ / 2, n_ / 2)] = kBlast;
}

void MiniHydro::step(double dt) {
  if (dt <= 0.0) throw std::invalid_argument("dt must be positive");
  const double inv2h = 1.0 / (2.0 * h_);

  // Equation of state: p = (gamma - 1) rho e.
  const auto total = rho_.size();
  for (std::size_t c = 0; c < total; ++c)
    p_[c] = (kGamma - 1.0) * rho_[c] * e_[c];

  for (int k = 0; k < n_; ++k) {
    for (int j = 0; j < n_; ++j) {
      for (int i = 0; i < n_; ++i) {
        const std::size_t c = idx(i, j, k);
        const std::size_t xm = idx(i - 1, j, k), xp = idx(i + 1, j, k);
        const std::size_t ym = idx(i, j - 1, k), yp = idx(i, j + 1, k);
        const std::size_t zm = idx(i, j, k - 1), zp = idx(i, j, k + 1);

        // Momentum: du/dt = -grad(p)/rho (central differences).
        const double inv_rho = 1.0 / std::max(rho_[c], 1e-12);
        u_next_[c] = u_[c] - dt * (p_[xp] - p_[xm]) * inv2h * inv_rho;
        v_next_[c] = v_[c] - dt * (p_[yp] - p_[ym]) * inv2h * inv_rho;
        w_next_[c] = w_[c] - dt * (p_[zp] - p_[zm]) * inv2h * inv_rho;

        // Mass: flux form, d(rho)/dt = -div(rho * vel). The central-
        // difference flux telescopes over the periodic grid, so the total
        // mass is conserved to round-off.
        const double div_flux =
            (rho_[xp] * u_[xp] - rho_[xm] * u_[xm]) * inv2h +
            (rho_[yp] * v_[yp] - rho_[ym] * v_[ym]) * inv2h +
            (rho_[zp] * w_[zp] - rho_[zm] * w_[zm]) * inv2h;
        rho_next_[c] = std::max(1e-9, rho_[c] - dt * div_flux);

        // Internal energy: pdV work, de/dt = -(p/rho) div(vel).
        const double div_v = (u_[xp] - u_[xm]) * inv2h +
                             (v_[yp] - v_[ym]) * inv2h +
                             (w_[zp] - w_[zm]) * inv2h;
        e_next_[c] = std::max(0.0, e_[c] - dt * p_[c] * inv_rho * div_v);
      }
    }
  }
  rho_.swap(rho_next_);
  e_.swap(e_next_);
  u_.swap(u_next_);
  v_.swap(v_next_);
  w_.swap(w_next_);
}

double MiniHydro::total_mass() const {
  double acc = 0.0;
  for (double r : rho_) acc += r;
  return acc * h_ * h_ * h_;
}

double MiniHydro::total_energy() const {
  double acc = 0.0;
  for (std::size_t c = 0; c < rho_.size(); ++c) {
    const double kinetic =
        0.5 * (u_[c] * u_[c] + v_[c] * v_[c] + w_[c] * w_[c]);
    acc += rho_[c] * (e_[c] + kinetic);
  }
  return acc * h_ * h_ * h_;
}

double MiniHydro::max_velocity() const {
  double best = 0.0;
  for (std::size_t c = 0; c < u_.size(); ++c)
    best = std::max(best, std::sqrt(u_[c] * u_[c] + v_[c] * v_[c] +
                                    w_[c] * w_[c]));
  return best;
}

}  // namespace ftbesst::apps
