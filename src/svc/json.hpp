#pragma once
// Minimal JSON value type for the prediction-service wire protocol.
//
// Two properties matter more than generality here:
//
//   1. *Canonical dumps.* Objects store their members in a std::map, so
//      dump() always emits keys in sorted order, with no whitespace, and
//      numbers are formatted with std::to_chars — the shortest decimal
//      that round-trips the exact binary64 value. parse(dump(v)) == v and
//      dump(parse(dump(v))) == dump(v), which is what lets the service
//      content-address requests: the canonical dump of a request (minus
//      volatile fields) IS its cache key, independent of how the client
//      spelled numbers, ordered keys, or spaced the text.
//
//   2. *Hostile-input safety.* parse() is fed bytes straight off a socket;
//      it throws std::invalid_argument (never crashes, never recurses
//      unboundedly — nesting is capped) on malformed input.
//
// Supported: null, booleans, finite doubles, strings (with escape and
// \uXXXX handling, non-surrogate BMP only), arrays, objects. NaN/Infinity
// are rejected on both parse and dump, matching strict JSON.

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace ftbesst::svc {

class Json;
using JsonArray = std::vector<Json>;
using JsonObject = std::map<std::string, Json>;

class Json {
 public:
  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}
  Json(bool b) : value_(b) {}
  Json(double d);  // throws std::invalid_argument on non-finite values
  Json(int i) : value_(static_cast<double>(i)) {}
  Json(std::int64_t i) : value_(static_cast<double>(i)) {}
  Json(std::uint64_t i) : value_(static_cast<double>(i)) {}
  Json(const char* s) : value_(std::string(s)) {}
  Json(std::string s) : value_(std::move(s)) {}
  Json(JsonArray a) : value_(std::move(a)) {}
  Json(JsonObject o) : value_(std::move(o)) {}

  /// Parse strict JSON; throws std::invalid_argument with a byte offset on
  /// malformed input. Nesting beyond `max_depth` is rejected.
  [[nodiscard]] static Json parse(std::string_view text, int max_depth = 64);

  /// Canonical serialization: sorted object keys, no whitespace, shortest
  /// round-trip number form.
  [[nodiscard]] std::string dump() const;
  void dump_to(std::string& out) const;

  [[nodiscard]] bool is_null() const noexcept {
    return std::holds_alternative<std::nullptr_t>(value_);
  }
  [[nodiscard]] bool is_bool() const noexcept {
    return std::holds_alternative<bool>(value_);
  }
  [[nodiscard]] bool is_number() const noexcept {
    return std::holds_alternative<double>(value_);
  }
  [[nodiscard]] bool is_string() const noexcept {
    return std::holds_alternative<std::string>(value_);
  }
  [[nodiscard]] bool is_array() const noexcept {
    return std::holds_alternative<JsonArray>(value_);
  }
  [[nodiscard]] bool is_object() const noexcept {
    return std::holds_alternative<JsonObject>(value_);
  }

  /// Checked accessors; throw std::invalid_argument on a type mismatch
  /// (client requests are untrusted, so "wrong type" must be a clean error).
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const JsonArray& as_array() const;
  [[nodiscard]] const JsonObject& as_object() const;
  [[nodiscard]] JsonArray& as_array();
  [[nodiscard]] JsonObject& as_object();

  /// Object member lookup; returns nullptr when absent or not an object.
  [[nodiscard]] const Json* find(std::string_view key) const;

  // Convenience typed getters for objects, with fallbacks for optional
  // request fields. The `_or` forms throw only on a type mismatch.
  [[nodiscard]] double number_or(std::string_view key, double fallback) const;
  [[nodiscard]] std::int64_t int_or(std::string_view key,
                                    std::int64_t fallback) const;
  [[nodiscard]] std::string string_or(std::string_view key,
                                      std::string_view fallback) const;
  [[nodiscard]] bool bool_or(std::string_view key, bool fallback) const;

  friend bool operator==(const Json& a, const Json& b) {
    return a.value_ == b.value_;
  }

 private:
  std::variant<std::nullptr_t, bool, double, std::string, JsonArray,
               JsonObject>
      value_;
};

}  // namespace ftbesst::svc
