#include "svc/journal.hpp"

#include <utility>

namespace ftbesst::svc {

WarmJournal::WarmJournal(std::size_t max_entries, std::size_t max_bytes)
    : max_entries_(max_entries == 0 ? 1 : max_entries),
      max_bytes_(max_bytes) {}

void WarmJournal::record(std::string_view key, std::string_view result_bytes) {
  // An entry larger than the whole budget can never be replayed; don't let
  // it flush everything else on its way through.
  if (key.size() + result_bytes.size() > max_bytes_) return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (const auto it = index_.find(key); it != index_.end()) {
    auto node = it->second;
    bytes_ -= node->key.size() + node->result.size();
    node->result.assign(result_bytes);
    bytes_ += node->key.size() + node->result.size();
    mru_.splice(mru_.begin(), mru_, node);
    return;
  }
  mru_.push_front(Entry{std::string(key), std::string(result_bytes)});
  index_.emplace(std::string_view(mru_.front().key), mru_.begin());
  bytes_ += key.size() + result_bytes.size();
  evict_over_budget();
}

void WarmJournal::evict_over_budget() {
  while (mru_.size() > max_entries_ || bytes_ > max_bytes_) {
    const Entry& victim = mru_.back();
    bytes_ -= victim.key.size() + victim.result.size();
    index_.erase(std::string_view(victim.key));
    mru_.pop_back();
    ++evictions_;
  }
}

std::vector<WarmJournal::Entry> WarmJournal::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {mru_.begin(), mru_.end()};
}

std::size_t WarmJournal::entries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return mru_.size();
}

std::size_t WarmJournal::bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return bytes_;
}

std::uint64_t WarmJournal::evictions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return evictions_;
}

}  // namespace ftbesst::svc
