#pragma once
// Model registry and request execution for the prediction service.
//
// A Registry is the expensive part of an FT-BESST invocation, paid exactly
// once at daemon startup: an ArchBEO with every kernel's performance model
// bound in (either reloaded from `model/serialize` artifacts or calibrated
// + fitted on the bundled Quartz-like testbed), ready to serve unlimited
// predict/simulate/inject/dse queries. It is immutable after construction and
// therefore safe to share across every request-handler task; requests that
// need mutated architecture state (fault injection) run against a private
// copy.
//
// handle_request() maps a parsed JSON request onto the existing engines:
//
//   {"op":"predict",  "kernel":K, "params":[..]}
//   {"op":"simulate", "app":"lulesh"|"stencil3d", "epr"/"nx":N, "ranks":R,
//    "timesteps":T, "plan":"L1:40,..", "trials":N, "seed":S,
//    "monte_carlo":B, "mtbf_hours":H, "downtime":D}
//   {"op":"inject", "app":.., "epr"/"nx":N, "ranks":R, "timesteps":T,
//    "plan":"..", "trials":N, "seed":S, "mtbf_hours":H (> 0, required),
//    "downtime":D, "use_des":0|1} — in-simulation fault-injection campaign
//    (src/inject): N trials varying only the fault schedule, makespan
//    distribution + per-level recovery statistics.
//   {"op":"dse", "app":.., "scenarios":[{"name":..,"plan":".."}..],
//    "points":[[epr,ranks],..] | "eprs":[..] x "ranks":[..],
//    "timesteps":T, "trials":N, "seed":S, ...,
//    "top_k":K, "objective":"mean"|"median"|"p90"|"min"|"max"} — with
//    top_k > 0 the response carries only the best-K cells sorted by the
//    chosen ensemble statistic (ties broken by grid order) instead of the
//    full grid.
//   {"op":"search", same workload/scenario/point fields as dse,
//    "budget":U | "budget_fraction":F (default 0.10 of the exhaustive
//    cells x trials cost), "method":"auto"|"gp"|"bandit",
//    "mode":"single"|"pareto", "batch":B, "init":I, "top_k":K} — guided
//    search (src/search) instead of the exhaustive sweep. When executed
//    through the server, prior single-cell dse results warm-start the
//    surrogate and every cell the search prices at full fidelity is
//    stored back as the byte-identical single-cell dse response.
//
// It returns the result Json; malformed requests throw
// std::invalid_argument with a message safe to send back to the client.
// Results are deterministic functions of the request (run_ensemble/run_dse
// are bit-identical for a fixed seed regardless of thread count), which is
// the contract the content-addressed result cache depends on.

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>

#include "core/arch.hpp"
#include "core/workflow.hpp"
#include "ft/checkpoint_cost.hpp"
#include "ft/fti.hpp"
#include "model/perf_model.hpp"
#include "svc/json.hpp"

namespace ftbesst::svc {

struct RegistryOptions {
  /// Directory of persisted models ("<kernel>.model", the `ftbesst fit`
  /// output). Empty = calibrate and fit on the bundled testbed at startup.
  std::string models_dir;

  // Calibrate-mode campaign controls (ignored when models_dir is set).
  int samples = 5;
  std::uint64_t seed = 2021;

  // Quartz-like architecture description.
  ft::FtiConfig fti{};
  int leaves = 94;
  int nodes_per_leaf = 32;
  int spines = 24;
  int ranks_per_node = 36;
  double bandwidth = 12.5e9;
};

class Registry {
 public:
  /// Build from options: load persisted models or run the calibration
  /// campaign + model development once. Throws std::invalid_argument when
  /// models_dir lacks the timestep model.
  [[nodiscard]] static Registry open(const RegistryOptions& options);

  /// Wrap an already-bound architecture (tests and benches construct cheap
  /// analytic models directly instead of fitting).
  explicit Registry(std::shared_ptr<const core::ArchBEO> arch);

  /// The cheap deterministic registry used by the svc tests, the tier
  /// soak/chaos harness, and bench_ext_tier: a small fat-tree with constant
  /// kernel models, so byte-identity comparisons across processes never
  /// depend on a calibration run.
  [[nodiscard]] static Registry analytic();

  /// Persist every bound serving kernel to `dir/<kernel>.model` (the same
  /// artifact layout RegistryOptions::models_dir loads). This is the tier's
  /// calibrate-once warm start: the router process calibrates (or loads),
  /// saves here, and spawned workers reload instead of re-fitting. Creates
  /// `dir` if needed; throws std::runtime_error when a file cannot be
  /// written. Returns the number of model files written.
  std::size_t save_models(const std::string& dir) const;

  [[nodiscard]] const core::ArchBEO& arch() const noexcept { return *arch_; }

  /// Per-kernel validation MAPE reports from calibrate mode (empty when
  /// models were loaded from disk).
  [[nodiscard]] const std::vector<core::KernelModelReport>& reports()
      const noexcept {
    return reports_;
  }

 private:
  std::shared_ptr<const core::ArchBEO> arch_;
  std::vector<core::KernelModelReport> reports_;
};

/// Restart-time model for one (app, checkpoint level). The engine calls a
/// restart model with the recovering checkpoint's own {size, ranks} params
/// (the values baked into each checkpoint instruction), so evaluating the
/// checkpoint-cost model there — instead of binding a constant computed
/// from one configuration — makes a single prepared architecture correct
/// for every point of a DSE sweep: checkpoint bytes scale with problem
/// size, and a constant taken from the first point would misprice restarts
/// for every other point.
class RestartCostModel final : public model::PerfModel {
 public:
  /// `app` is "lulesh" (size = elements per rank) or "stencil3d" (size =
  /// grid edge), matching the calibration parameter convention.
  RestartCostModel(std::string app, ft::Level level,
                   ft::CheckpointCostModel cost);
  [[nodiscard]] double predict(std::span<const double> params) const override;
  [[nodiscard]] std::string describe() const override;

 private:
  std::string app_;
  ft::Level level_;
  ft::CheckpointCostModel cost_;
};

/// Optional result-cache access for ops that can exploit prior results
/// (the search op's warm start). Keys are canonical_key strings; values
/// are serialized result payloads exactly as the cache stores them. Both
/// hooks may be empty — handle_request then computes everything cold.
struct CacheHooks {
  std::function<std::shared_ptr<const std::string>(const std::string&)> get;
  std::function<void(const std::string&,
                     std::shared_ptr<const std::string>)>
      put;
};

/// Execute one cacheable request (predict/simulate/inject/dse/search)
/// against the registry and return the result Json. Throws
/// std::invalid_argument on malformed requests (unknown op, bad plan text,
/// non-cube ranks, unbound kernels, ...) — the server turns these into
/// clean error replies. `hooks` lets the search op read prior single-cell
/// dse results out of the server's cache (warm start, uncharged
/// observations) and write its own full-fidelity evaluations back as
/// byte-identical single-cell dse responses; warm starts never change
/// what the search reports, only what it has to pay for.
[[nodiscard]] Json handle_request(const Registry& registry,
                                  const Json& request,
                                  const CacheHooks& hooks = {});

/// The request's content-address: the canonical dump of the request object
/// with volatile, non-semantic fields ("deadline_ms", "id") removed.
/// Requests that differ only in spelling (key order, whitespace, number
/// formatting like 1e1 vs 10) map to the same key.
[[nodiscard]] std::string canonical_key(const Json& request);

}  // namespace ftbesst::svc
