#include "svc/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <system_error>
#include <utility>

namespace ftbesst::svc {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

void arm_timeouts(int fd, double timeout_seconds) {
  if (timeout_seconds <= 0.0) return;
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout_seconds);
  tv.tv_usec = static_cast<suseconds_t>(
      (timeout_seconds - std::floor(timeout_seconds)) * 1e6);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

}  // namespace

Client Client::connect_unix(const std::string& path, double timeout_seconds) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path))
    throw std::invalid_argument("unix socket path too long: " + path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket(AF_UNIX)");
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("connect(unix socket)");
  }
  arm_timeouts(fd, timeout_seconds);
  return Client(fd);
}

Client Client::connect_tcp(int port, double timeout_seconds) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket(AF_INET)");
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("connect(127.0.0.1 tcp)");
  }
  arm_timeouts(fd, timeout_seconds);
  return Client(fd);
}

Client::Client(Client&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

ClientResponse Client::call(const Json& request,
                            std::uint32_t max_frame_bytes) {
  return call_raw(request.dump(), max_frame_bytes);
}

std::string Client::exchange(std::string_view payload,
                             std::uint32_t max_frame_bytes) {
  write_frame(fd_, payload, max_frame_bytes);
  auto reply = read_frame(fd_, max_frame_bytes);
  if (!reply)
    throw std::runtime_error("server closed the connection without a reply");
  return std::move(*reply);
}

ClientResponse Client::call_raw(std::string_view payload,
                                std::uint32_t max_frame_bytes) {
  ClientResponse response;
  response.raw = exchange(payload, max_frame_bytes);
  const Json envelope = Json::parse(response.raw);
  response.ok = envelope.bool_or("ok", false);
  response.cached = envelope.bool_or("cached", false);
  if (response.ok) {
    if (const Json* result = envelope.find("result")) {
      response.result = *result;
      // Envelopes are canonical JSON, so the exact result bytes are
      // recoverable from the fixed success-envelope prefix.
      if (const auto bytes = extract_result_bytes(response.raw))
        response.result_bytes = std::string(*bytes);
    }
  } else {
    response.code = envelope.string_or("code", "");
    response.error = envelope.string_or("error", "");
  }
  return response;
}

}  // namespace ftbesst::svc
