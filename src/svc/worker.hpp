#pragma once
// One shard of the scaled serving tier.
//
// A Worker is a Server composed for tier duty: it serves on its own unix
// socket, owns the shard of the result cache that the router's consistent
// hashing steers at it, and answers the tier-internal `warm` op so a
// respawned instance can be re-warmed from the router's journal. The
// router (svc/router.hpp) spawns workers as separate processes via the
// `ftbesst worker` subcommand — process isolation is the point: one crash
// degrades one hash range, not the tier — but a Worker can equally be
// embedded in-process (tests do this to exercise routing without fork).

#include <sys/types.h>

#include <memory>
#include <string>
#include <vector>

#include "svc/server.hpp"

namespace ftbesst::svc {

struct WorkerOptions {
  std::string socket_path;
  /// Surfaced in the worker's stats op (e.g. "worker-3").
  std::string name;
  std::size_t queue_capacity = 64;
  double default_deadline_ms = 0.0;
  /// Workers default the slowloris guard on: the only legitimate client is
  /// the router, which always writes whole frames.
  double read_deadline_ms = 30000.0;
  CacheConfig cache;
  std::uint32_t max_frame_bytes = kMaxFrameBytes;
};

class Worker {
 public:
  Worker(std::shared_ptr<const Registry> registry, WorkerOptions options);

  void start() { server_.start(); }
  void wait() { server_.wait(); }
  void run() { server_.run(); }
  void shutdown() { server_.shutdown(); }

  [[nodiscard]] Server& server() noexcept { return server_; }
  [[nodiscard]] const Server& server() const noexcept { return server_; }

 private:
  Server server_;
};

/// fork+exec `argv` (PATH-resolved) with the current environment plus
/// `extra_env` ("KEY=VALUE" entries override inherited keys). Returns the
/// child pid; throws std::system_error on spawn failure. Never
/// fork-without-exec: the router is multithreaded (and may run under
/// TSan), so children must exec immediately.
[[nodiscard]] pid_t spawn_process(const std::vector<std::string>& argv,
                                  const std::vector<std::string>& extra_env);

}  // namespace ftbesst::svc
