#pragma once
// Front router for the horizontally scaled serving tier.
//
//            clients
//               |
//   +-----------v-----------+     unix sockets      +----------------+
//   |  Router               |---- <sock>.w0 ------->| Worker shard 0 |
//   |   R reader threads    |---- <sock>.w1 ------->| Worker shard 1 |
//   |   (shared listeners)  |---- ...        ------>|      ...       |
//   |   proxy thread pool   |---- <sock>.wN-1 ----->| Worker shard N |
//   |   supervisor + journal|                       +----------------+
//   +-----------------------+
//
// The router accepts client connections on a shared set of listening fds
// polled by R reader threads (multi-reader accept: every reader polls the
// same non-blocking listeners and keeps the connections it wins). Each
// complete frame is admitted against one shared capacity bound — the same
// shed-never-stall overload discipline as the single-process server — and
// handed to a dedicated proxy thread pool. Cacheable ops (predict,
// simulate, inject, dse, search) are consistent-hashed by their canonical
// request key (svc/chash.hpp) to one worker shard and forwarded verbatim
// over the existing wire codec; the reply bytes come back untouched, so
// tier responses are byte-identical to a single process's. A router-level
// SingleFlight on the canonical key coalesces concurrent identical
// requests into one proxied round trip.
//
// Supervision: a health thread pings every worker; a dead worker (crash,
// kill -9) has its hash range marked *degraded* — requests for those keys
// are shed with a clean {"code":"overload"} (clients retry; the rest of
// the ring is untouched) — and is respawned via `ftbesst worker`, whose
// Registry warm-starts from saved model files. Before the new worker
// rejoins, the router replays its journal of recently cached responses
// (svc/journal.hpp) into the worker's cache through the tier-internal
// `warm` op: warm-cache handoff, measured as post-respawn hit rate.
//
// The `rolling_restart` wire op (or `ftbesst serve --rolling-restart`)
// restarts workers one at a time: degrade the shard (new keys shed),
// SIGTERM the worker (it drains in-flight requests and answers them),
// respawn, re-warm from the journal, mark healthy, move on. In-flight
// requests racing a drain get the worker's "shutting_down" answer, which
// the router rewrites to "overload" — clients only ever see clean
// ok/overload outcomes, never a failure.

#include <sys/types.h>

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "svc/cache.hpp"
#include "svc/chash.hpp"
#include "svc/conn.hpp"
#include "svc/journal.hpp"
#include "svc/wire.hpp"

namespace ftbesst::svc {

struct WorkerSpec {
  /// Unix socket the worker serves on (the shard address).
  std::string socket_path;
  /// Command line to (re)spawn the worker process; empty = externally
  /// managed (the router health-checks and re-warms it but never spawns —
  /// in-process Workers in tests use this).
  std::vector<std::string> spawn_argv;
  /// Extra "KEY=VALUE" environment entries for spawned workers.
  std::vector<std::string> spawn_env;
};

struct RouterOptions {
  std::string unix_socket_path;
  /// Localhost TCP port: -1 = none, 0 = ephemeral (read via tcp_port()).
  int tcp_port = -1;
  /// Reader threads sharing the listening fds (per-core accept).
  std::size_t readers = 2;
  /// Dedicated proxy threads; each blocks on one worker round trip at a
  /// time, so this bounds tier-wide proxy concurrency.
  std::size_t proxy_threads = 16;
  /// Admission bound across queued + executing proxy jobs.
  std::size_t queue_capacity = 256;
  double default_deadline_ms = 0.0;
  /// Slowloris guard on client connections (0 = off).
  double read_deadline_ms = 30000.0;
  /// Socket timeout on proxied worker round trips.
  double worker_timeout_s = 600.0;
  /// Supervisor health-check cadence.
  double health_interval_ms = 200.0;
  /// A respawned worker must answer a ping within this budget.
  double ready_timeout_s = 120.0;
  /// Rolling restart: drain grace before SIGKILL.
  double worker_grace_s = 15.0;
  std::size_t vnodes = 128;
  std::size_t journal_max_entries = 1024;
  std::size_t journal_max_bytes = 8u << 20;
  std::uint32_t max_frame_bytes = kMaxFrameBytes;
  std::vector<WorkerSpec> workers;
};

class Router {
 public:
  explicit Router(RouterOptions options);
  ~Router();
  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Bind listeners, start readers/proxies/supervisor. Spawnable workers
  /// are brought up asynchronously by the supervisor; use wait_healthy()
  /// to block until the full ring is serving.
  void start();
  void wait();
  void run();
  /// Async-signal-safe graceful drain (also stops spawned workers).
  void shutdown();

  /// Block until every worker is healthy or the timeout expires; returns
  /// whether the ring is fully healthy.
  bool wait_healthy(double timeout_s);

  /// Restart spawned workers one at a time with warm-cache handoff.
  /// Returns the number of workers restarted. Serialized; callable from
  /// the `rolling_restart` wire op or the embedder.
  std::uint64_t rolling_restart();

  [[nodiscard]] int tcp_port() const noexcept { return bound_tcp_port_; }
  [[nodiscard]] std::size_t worker_count() const noexcept;
  [[nodiscard]] bool worker_healthy(std::size_t index) const;
  /// Pid of the spawned worker process (-1 if externally managed / down).
  [[nodiscard]] pid_t worker_pid(std::size_t index) const;
  /// Ring lookup for a canonical key (exposed for the purity/remap tests).
  [[nodiscard]] std::size_t worker_for_key(std::string_view canonical) const;

  /// Route SIGTERM/SIGINT to router->shutdown(). Pass nullptr to restore.
  static void install_signal_handlers(Router* router);

  struct Stats {
    std::uint64_t accepted_connections = 0;
    std::uint64_t requests = 0;
    std::uint64_t completed = 0;
    std::uint64_t rejected_overload = 0;
    std::uint64_t rejected_shutdown = 0;
    std::uint64_t shed_degraded = 0;   ///< keys shed to a degraded shard
    std::uint64_t bad_requests = 0;
    std::uint64_t coalesced = 0;       ///< single-flight followers
    std::uint64_t routed = 0;          ///< proxied worker round trips
    std::uint64_t retries = 0;         ///< transparent proxy retries
    std::uint64_t respawns = 0;        ///< worker processes (re)spawned
    std::uint64_t rolling_restarts = 0;
    std::uint64_t journal_replayed = 0;///< entries replayed into workers
    std::uint64_t read_timeouts = 0;
  };
  [[nodiscard]] Stats stats() const;
  [[nodiscard]] const WarmJournal& journal() const noexcept {
    return journal_;
  }

 private:
  struct Slot;
  struct ProxyJob {
    std::shared_ptr<Conn> conn;
    std::string frame;
    std::uint64_t arrival_ns = 0;
  };

  void start_impl(bool& unix_bound);
  void reader_main(std::size_t index);
  void proxy_main();
  void supervise();
  void closer_main();
  void admit(const std::shared_ptr<Conn>& conn, std::string&& frame);
  void execute(ProxyJob job);
  [[nodiscard]] std::string forward_keyed(const std::string& key,
                                          const std::string& frame);
  [[nodiscard]] std::string forward_any(const std::string& frame);
  [[nodiscard]] std::string proxy_round_trip(std::size_t index,
                                             const std::string& frame,
                                             bool journal_ok,
                                             const std::string& key);
  void mark_degraded(std::size_t index);
  void revive(std::size_t index);
  bool bring_up(Slot& slot, std::size_t index);  ///< under lifecycle lock
  bool wait_ready(Slot& slot);
  bool ping_worker(const Slot& slot);
  std::size_t warm_worker(Slot& slot, std::size_t index);
  void stop_workers();
  [[nodiscard]] std::string stats_json();
  [[nodiscard]] bool draining() const noexcept {
    return draining_.load(std::memory_order_acquire);
  }

  RouterOptions options_;
  HashRing ring_;
  WarmJournal journal_;
  SingleFlight single_flight_;
  std::vector<std::unique_ptr<Slot>> slots_;

  int unix_listener_fd_ = -1;
  int tcp_listener_fd_ = -1;
  int bound_tcp_port_ = -1;
  int wake_pipe_[2] = {-1, -1};

  std::vector<std::thread> reader_threads_;
  std::vector<std::thread> proxy_threads_;
  std::thread supervisor_thread_;
  std::thread closer_thread_;

  std::atomic<bool> started_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> stopping_{false};  ///< teardown reached: no more revives
  std::atomic<bool> stopped_{false};
  std::mutex stop_mutex_;
  std::condition_variable stop_cv_;

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<ProxyJob> queue_;
  bool proxy_stop_ = false;

  std::mutex supervisor_mutex_;
  std::condition_variable supervisor_cv_;
  bool supervisor_stop_ = false;

  std::mutex rolling_mutex_;

  std::atomic<std::size_t> in_flight_{0};
  std::atomic<std::uint64_t> round_robin_{0};

  std::atomic<std::uint64_t> accepted_connections_{0};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> rejected_overload_{0};
  std::atomic<std::uint64_t> rejected_shutdown_{0};
  std::atomic<std::uint64_t> shed_degraded_{0};
  std::atomic<std::uint64_t> bad_requests_{0};
  std::atomic<std::uint64_t> coalesced_{0};
  std::atomic<std::uint64_t> routed_{0};
  std::atomic<std::uint64_t> retries_{0};
  std::atomic<std::uint64_t> respawns_{0};
  std::atomic<std::uint64_t> rolling_restarts_{0};
  std::atomic<std::uint64_t> journal_replayed_{0};
  std::atomic<std::uint64_t> read_timeouts_{0};
};

}  // namespace ftbesst::svc
