#pragma once
// Listening-socket plumbing shared by Server and Router.
//
// Both bind helpers return a non-blocking, close-on-exec listening fd that
// the caller owns. bind_unix carries the daemon's socket-stealing policy:
// a leftover socket file is only replaced when nothing answers on it.

#include <string>

namespace ftbesst::svc {

void set_nonblocking(int fd);
void set_cloexec(int fd);
[[noreturn]] void throw_errno(const char* what);

/// Bind + listen on a unix-domain socket. A stale socket file (nothing
/// answering a connect() probe) is unlinked and replaced; a path a live
/// daemon still answers on throws EADDRINUSE instead of stealing it —
/// unlinking a live daemon's path would silently black-hole its future
/// clients. Sets *bound once the path is bound (the caller must unlink it
/// on teardown and on post-bind startup failure).
[[nodiscard]] int bind_unix(const std::string& path, bool* bound);

/// Bind + listen on 127.0.0.1:`port` (0 = ephemeral). The actual port is
/// stored in *bound_port.
[[nodiscard]] int bind_tcp(int port, int* bound_port);

}  // namespace ftbesst::svc
