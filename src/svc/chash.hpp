#pragma once
// Consistent hashing for the scaled serving tier.
//
// The router hashes each request's *canonical key* — the same
// canonicalization the result cache uses (svc/registry.hpp
// canonical_key) — onto a ring of virtual nodes, so:
//
//   * routing is a pure function of the canonical key: byte-identical
//     requests always land on the same worker, which is what makes each
//     worker's result cache an actual shard (and SingleFlight coalescing
//     at the router correct);
//   * adding or removing one worker only remaps the keys whose ring
//     points move — ~K/N of K keys, not all of them — so a resize or a
//     respawn does not flush every shard.
//
// Each worker owns `vnodes` points placed by hashing "worker-<i>#<r>";
// a key is served by the worker owning the first point clockwise of the
// key's hash. Point placement is deterministic, so every router instance
// (and every test) derives the identical ring from (workers, vnodes).

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace ftbesst::svc {

/// FNV-1a 64 over the bytes, finished with a splitmix64-style avalanche —
/// plain FNV's high bits are too regular to place ring points evenly.
[[nodiscard]] std::uint64_t ring_hash(std::string_view bytes) noexcept;

class HashRing {
 public:
  /// A ring over workers [0, workers) with `vnodes` points each.
  HashRing(std::size_t workers, std::size_t vnodes = 128);

  /// The worker index owning `key` (first ring point clockwise of the
  /// key's hash).
  [[nodiscard]] std::size_t lookup(std::string_view key) const noexcept;

  [[nodiscard]] std::size_t workers() const noexcept { return workers_; }
  [[nodiscard]] std::size_t vnodes() const noexcept { return vnodes_; }

 private:
  struct Point {
    std::uint64_t hash;
    std::uint32_t worker;
  };
  std::size_t workers_;
  std::size_t vnodes_;
  std::vector<Point> points_;  ///< sorted by hash
};

}  // namespace ftbesst::svc
