#include "svc/server.hpp"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <stdexcept>
#include <system_error>
#include <utility>

#include "model/expr_simd.hpp"
#include "obs/obs.hpp"
#include "svc/listen.hpp"

namespace ftbesst::svc {

namespace {

struct ServerMetrics {
  obs::Counter requests = obs::counter("svc.requests");
  obs::Counter completed = obs::counter("svc.completed");
  obs::Counter rejected_overload = obs::counter("svc.rejected.overload");
  obs::Counter rejected_deadline = obs::counter("svc.rejected.deadline");
  obs::Counter rejected_shutdown = obs::counter("svc.rejected.shutdown");
  obs::Counter bad_requests = obs::counter("svc.bad_requests");
  obs::Counter coalesced = obs::counter("svc.coalesced");
  obs::Counter read_timeouts = obs::counter("svc.read_timeouts");
  obs::Counter warmed = obs::counter("svc.worker.warmed");
  obs::Histogram request_seconds = obs::histogram(
      "svc.request_seconds",
      {1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0, 5.0, 30.0, 300.0});
};

ServerMetrics& metrics() {
  static ServerMetrics m;
  return m;
}

// Signal plumbing: the handler may only touch async-signal-safe state, so
// it calls Server::shutdown(), which is restricted to an atomic store plus
// one write() to the self-pipe.
std::atomic<Server*> g_signal_target{nullptr};

void handle_stop_signal(int) {
  if (Server* server = g_signal_target.load(std::memory_order_acquire))
    server->shutdown();
}

}  // namespace

Server::Server(std::shared_ptr<const Registry> registry, ServerOptions options)
    : registry_(std::move(registry)),
      options_(std::move(options)),
      cache_(options_.cache) {
  if (!registry_) throw std::invalid_argument("Server requires a registry");
  if (options_.unix_socket_path.empty() && options_.tcp_port < 0)
    throw std::invalid_argument("Server needs a unix socket path or tcp port");
  if (options_.queue_capacity == 0) options_.queue_capacity = 1;
}

Server::~Server() {
  if (g_signal_target.load(std::memory_order_acquire) == this)
    install_signal_handlers(nullptr);
  if (started_.load(std::memory_order_acquire)) {
    shutdown();
    wait();
  }
  for (int fd : wake_pipe_)
    if (fd >= 0) ::close(fd);
}

void Server::install_signal_handlers(Server* server) {
  g_signal_target.store(server, std::memory_order_release);
  struct sigaction action {};
  if (server) {
    action.sa_handler = handle_stop_signal;
    sigemptyset(&action.sa_mask);
    action.sa_flags = 0;  // no SA_RESTART: poll() must wake
  } else {
    action.sa_handler = SIG_DFL;
  }
  ::sigaction(SIGTERM, &action, nullptr);
  ::sigaction(SIGINT, &action, nullptr);
}

void Server::start() {
  if (started_.exchange(true, std::memory_order_acq_rel))
    throw std::logic_error("Server::start() called twice");

  // Dead peers must surface as EPIPE from write(), not kill the process.
  ::signal(SIGPIPE, SIG_IGN);

  bool unix_bound = false;
  try {
    start_impl(unix_bound);
  } catch (...) {
    // A startup failure (busy port, bad path) must leave the object inert:
    // no loop thread ever ran, so wait()/~Server() must not block on
    // stop_cv_, and every fd acquired so far must be released.
    for (Listener* listener : {&unix_listener_, &tcp_listener_}) {
      if (listener->fd >= 0) ::close(listener->fd);
      listener->fd = -1;
    }
    if (unix_bound) ::unlink(options_.unix_socket_path.c_str());
    for (int& fd : wake_pipe_) {
      if (fd >= 0) ::close(fd);
      fd = -1;
    }
    bound_tcp_port_ = -1;
    started_.store(false, std::memory_order_release);
    throw;
  }
}

void Server::start_impl(bool& unix_bound) {
  if (::pipe(wake_pipe_) != 0) throw_errno("pipe");
  for (int fd : wake_pipe_) {
    set_nonblocking(fd);
    set_cloexec(fd);
  }

  if (!options_.unix_socket_path.empty())
    unix_listener_.fd = bind_unix(options_.unix_socket_path, &unix_bound);
  if (options_.tcp_port >= 0)
    tcp_listener_.fd = bind_tcp(options_.tcp_port, &bound_tcp_port_);

  loop_thread_ = std::thread([this] { event_loop(); });
}

void Server::wait() {
  {
    std::unique_lock<std::mutex> lock(stop_mutex_);
    stop_cv_.wait(lock,
                  [this] { return stopped_.load(std::memory_order_acquire); });
  }
  if (loop_thread_.joinable()) loop_thread_.join();
}

void Server::run() {
  start();
  wait();
}

void Server::shutdown() {
  // Async-signal-safe on purpose: an atomic store plus one pipe write. The
  // event loop notices `draining_` and does all the actual teardown.
  draining_.store(true, std::memory_order_release);
  const int fd = wake_pipe_[1];
  if (fd >= 0) {
    const char byte = 's';
    [[maybe_unused]] ssize_t n = ::write(fd, &byte, 1);
  }
}

void Server::event_loop() {
  bool listeners_closed = false;
  const auto close_listeners = [this, &listeners_closed] {
    if (listeners_closed) return;
    listeners_closed = true;
    for (Listener* l : {&unix_listener_, &tcp_listener_}) {
      if (l->fd >= 0) ::close(l->fd);
      l->fd = -1;
    }
    if (!options_.unix_socket_path.empty())
      ::unlink(options_.unix_socket_path.c_str());
  };

  ReadLoop::Hooks hooks;
  hooks.on_accept = [this](const std::shared_ptr<Conn>&) {
    accepted_connections_.fetch_add(1, std::memory_order_relaxed);
  };
  hooks.on_frame = [this](const std::shared_ptr<Conn>& conn,
                          std::string&& frame) {
    admit(conn, std::move(frame));
  };
  hooks.on_frame_error = [this](const std::shared_ptr<Conn>& conn,
                                const char* what) {
    reject_inline(conn, "bad_request", what);
    conn->close_socket();
  };
  hooks.on_read_timeout = [this](const std::shared_ptr<Conn>& conn) {
    read_timeouts_.fetch_add(1, std::memory_order_relaxed);
    metrics().read_timeouts.add();
    reject_inline(conn, "read_timeout",
                  "no complete frame within the read deadline");
    conn->close_socket();
  };
  hooks.tick = [this, &close_listeners](ReadLoop& loop) {
    if (!draining()) return false;
    loop.stop_accepting();
    close_listeners();
    if (in_flight_.load(std::memory_order_acquire) != 0) return false;
    tasks_.wait();  // joins the last tasks past their final decrement
    return true;
  };

  {
    ReadLoop loop(
        ReadLoopOptions{options_.max_frame_bytes, options_.read_deadline_ms,
                        50},
        std::move(hooks));
    std::vector<int> listeners;
    if (unix_listener_.fd >= 0) listeners.push_back(unix_listener_.fd);
    if (tcp_listener_.fd >= 0) listeners.push_back(tcp_listener_.fd);
    loop.run(listeners, wake_pipe_[0]);
  }

  close_listeners();

  {
    std::lock_guard<std::mutex> lock(stop_mutex_);
    stopped_.store(true, std::memory_order_release);
  }
  stop_cv_.notify_all();
}

void Server::admit(const std::shared_ptr<Conn>& conn, std::string frame) {
  if (draining()) {
    rejected_shutdown_.fetch_add(1, std::memory_order_relaxed);
    metrics().rejected_shutdown.add();
    reject_inline(conn, "shutting_down", "server is draining");
    return;
  }
  if (in_flight_.load(std::memory_order_acquire) >= options_.queue_capacity) {
    rejected_overload_.fetch_add(1, std::memory_order_relaxed);
    metrics().rejected_overload.add();
    reject_inline(conn, "overload",
                  "request queue full (capacity " +
                      std::to_string(options_.queue_capacity) +
                      "); retry later");
    return;
  }
  // Only this thread increments, so the capacity bound is exact; workers
  // merely decrement.
  in_flight_.fetch_add(1, std::memory_order_acq_rel);
  requests_.fetch_add(1, std::memory_order_relaxed);
  metrics().requests.add();
  const std::uint64_t arrival_ns = obs::now_ns();
  tasks_.run([this, conn, frame = std::move(frame), arrival_ns]() mutable {
    execute(conn, std::move(frame), arrival_ns);
  });
}

std::string Server::warm_cache(const Json& request) {
  // Tier-internal bulk load: the router replays its journal of recently
  // cached {canonical key -> result bytes} pairs into a respawned worker's
  // shard so the first post-restart requests hit warm. Entries embed the
  // result payload as a JSON string; the escape round-trip is lossless, so
  // warmed hits stay byte-identical to the original cold computation.
  const Json* entries = request.find("entries");
  if (!entries || !entries->is_array())
    throw std::invalid_argument("warm needs an \"entries\" array");
  std::uint64_t loaded = 0;
  for (const Json& entry : entries->as_array()) {
    if (!entry.is_object())
      throw std::invalid_argument("warm entries must be objects");
    const std::string key = entry.string_or("key", "");
    const Json* result = entry.find("result");
    if (key.empty() || !result || !result->is_string())
      throw std::invalid_argument(
          "warm entries need \"key\" and string \"result\"");
    cache_.put(key, std::make_shared<const std::string>(result->as_string()));
    ++loaded;
  }
  warmed_.fetch_add(loaded, std::memory_order_relaxed);
  metrics().warmed.add(loaded);
  JsonObject result;
  result.emplace("warmed", Json(loaded));
  return ok_payload(false, Json(std::move(result)).dump());
}

void Server::execute(const std::shared_ptr<Conn>& conn, std::string frame,
                     std::uint64_t arrival_ns) {
  // Everything below must reach the decrement: drain-completion counts on
  // it, and the reply (or the attempt) has happened by then.
  try {
    Json request;
    try {
      request = Json::parse(frame);
      if (!request.is_object())
        throw std::invalid_argument("request must be a JSON object");
    } catch (const std::exception& e) {
      bad_requests_.fetch_add(1, std::memory_order_relaxed);
      metrics().bad_requests.add();
      conn->send_frame(error_payload("bad_request", e.what()),
                       options_.max_frame_bytes);
      in_flight_.fetch_sub(1, std::memory_order_acq_rel);
      return;
    }

    const double deadline_ms =
        request.number_or("deadline_ms", options_.default_deadline_ms);
    if (deadline_ms > 0.0) {
      const double waited_ms =
          static_cast<double>(obs::now_ns() - arrival_ns) * 1e-6;
      if (waited_ms > deadline_ms) {
        rejected_deadline_.fetch_add(1, std::memory_order_relaxed);
        metrics().rejected_deadline.add();
        conn->send_frame(
            error_payload("deadline",
                          "deadline of " + std::to_string(deadline_ms) +
                              " ms expired while queued (waited " +
                              std::to_string(waited_ms) + " ms)"),
            options_.max_frame_bytes);
        in_flight_.fetch_sub(1, std::memory_order_acq_rel);
        return;
      }
    }

    const std::string op = request.string_or("op", "");
    std::string payload;
    if (op == "ping") {
      JsonObject pong;
      pong.emplace("pong", Json(true));
      payload = ok_payload(false, Json(std::move(pong)).dump());
    } else if (op == "stats") {
      payload = ok_payload(false, stats_json());
    } else if (op == "shutdown") {
      JsonObject result;
      result.emplace("draining", Json(true));
      payload = ok_payload(false, Json(std::move(result)).dump());
      conn->send_frame(payload, options_.max_frame_bytes);
      completed_.fetch_add(1, std::memory_order_relaxed);
      metrics().completed.add();
      in_flight_.fetch_sub(1, std::memory_order_acq_rel);
      shutdown();
      return;
    } else if (op == "sleep") {
      // Debug/test op: holds a queue slot for a controlled duration so
      // overload and deadline behaviour are deterministically testable.
      // Never cached.
      const double ms =
          std::min(10000.0, std::max(0.0, request.number_or("ms", 0.0)));
      std::this_thread::sleep_for(
          std::chrono::microseconds(static_cast<std::int64_t>(ms * 1000.0)));
      JsonObject result;
      result.emplace("slept_ms", Json(ms));
      payload = ok_payload(false, Json(std::move(result)).dump());
    } else if (op == "warm") {
      try {
        payload = warm_cache(request);
      } catch (const std::invalid_argument& e) {
        bad_requests_.fetch_add(1, std::memory_order_relaxed);
        metrics().bad_requests.add();
        conn->send_frame(error_payload("bad_request", e.what()),
                         options_.max_frame_bytes);
        in_flight_.fetch_sub(1, std::memory_order_acq_rel);
        return;
      }
    } else if (op == "predict" || op == "simulate" || op == "inject" ||
               op == "dse" || op == "search") {
      try {
        const std::string key = canonical_key(request);
        if (auto hit = cache_.get(key)) {
          payload = ok_payload(true, *hit);
        } else {
          bool leader = false;
          auto value = single_flight_.run(
              key,
              [this, &request, &key, &op]() -> SingleFlight::Result {
                // The search op reads prior single-cell dse entries out of
                // the result cache (warm start) and writes its own
                // full-fidelity evaluations back through the same hooks.
                CacheHooks hooks;
                if (op == "search") {
                  hooks.get = [this](const std::string& k) {
                    return cache_.get(k);
                  };
                  hooks.put = [this](const std::string& k,
                                     std::shared_ptr<const std::string> v) {
                    cache_.put(k, std::move(v));
                  };
                }
                const Json result_json =
                    handle_request(*registry_, request, hooks);
                if (op == "search") {
                  searches_.fetch_add(1, std::memory_order_relaxed);
                  search_warm_hits_.fetch_add(
                      static_cast<std::uint64_t>(
                          result_json.number_or("warm_hits", 0.0)),
                      std::memory_order_relaxed);
                  search_evaluations_.fetch_add(
                      static_cast<std::uint64_t>(
                          result_json.number_or("evaluations", 0.0)),
                      std::memory_order_relaxed);
                }
                auto result =
                    std::make_shared<const std::string>(result_json.dump());
                cache_.put(key, result);
                return result;
              },
              &leader);
          if (!leader) {
            coalesced_.fetch_add(1, std::memory_order_relaxed);
            metrics().coalesced.add();
          }
          payload = ok_payload(false, *value);
        }
      } catch (const std::invalid_argument& e) {
        bad_requests_.fetch_add(1, std::memory_order_relaxed);
        metrics().bad_requests.add();
        conn->send_frame(error_payload("bad_request", e.what()),
                         options_.max_frame_bytes);
        in_flight_.fetch_sub(1, std::memory_order_acq_rel);
        return;
      }
    } else {
      bad_requests_.fetch_add(1, std::memory_order_relaxed);
      metrics().bad_requests.add();
      conn->send_frame(
          error_payload("bad_request",
                        op.empty()
                            ? std::string("missing \"op\" field")
                            : "unknown op '" + op +
                                  "' (valid: ping, stats, predict, simulate, "
                                  "inject, dse, search, sleep, warm, "
                                  "shutdown)"),
          options_.max_frame_bytes);
      in_flight_.fetch_sub(1, std::memory_order_acq_rel);
      return;
    }

    conn->send_frame(payload, options_.max_frame_bytes);
    completed_.fetch_add(1, std::memory_order_relaxed);
    metrics().completed.add();
    metrics().request_seconds.observe(
        static_cast<double>(obs::now_ns() - arrival_ns) * 1e-9);
  } catch (const std::exception& e) {
    // Engine/system failure: still answer so the client is not left
    // hanging, and keep the daemon alive.
    conn->send_frame(error_payload("internal", e.what()),
                     options_.max_frame_bytes);
  } catch (...) {
    conn->send_frame(error_payload("internal", "unknown error"),
                     options_.max_frame_bytes);
  }
  in_flight_.fetch_sub(1, std::memory_order_acq_rel);
}

void Server::reject_inline(const std::shared_ptr<Conn>& conn,
                           std::string_view code, std::string_view message) {
  // Runs on the event loop, which must never block: one non-blocking send
  // attempt; a too-slow client is dropped instead of wedging the loop.
  conn->try_send_frame(error_payload(code, message));
}

std::string Server::stats_json() const {
  const Stats s = stats();
  JsonObject cache;
  cache.emplace("hits", Json(s.cache.hits));
  cache.emplace("misses", Json(s.cache.misses));
  cache.emplace("evictions", Json(s.cache.evictions));
  cache.emplace("entries", Json(s.cache.entries));
  cache.emplace("bytes", Json(s.cache.bytes));
  JsonObject obj;
  obj.emplace("name", Json(options_.name));
  obj.emplace("accepted_connections", Json(s.accepted_connections));
  obj.emplace("requests", Json(s.requests));
  obj.emplace("completed", Json(s.completed));
  obj.emplace("rejected_overload", Json(s.rejected_overload));
  obj.emplace("rejected_deadline", Json(s.rejected_deadline));
  obj.emplace("rejected_shutdown", Json(s.rejected_shutdown));
  obj.emplace("bad_requests", Json(s.bad_requests));
  obj.emplace("coalesced", Json(s.coalesced));
  obj.emplace("read_timeouts", Json(s.read_timeouts));
  obj.emplace("warmed", Json(s.warmed));
  obj.emplace("searches", Json(s.searches));
  obj.emplace("search_warm_hits", Json(s.search_warm_hits));
  obj.emplace("search_evaluations", Json(s.search_evaluations));
  obj.emplace("in_flight", Json(in_flight_.load(std::memory_order_relaxed)));
  obj.emplace("queue_capacity", Json(options_.queue_capacity));
  // Which ExprProgram backend prices predict/dse batches in this process
  // (FTBESST_SIMD resolution), so clients can attribute throughput and
  // verify parity runs against the right configuration.
  obj.emplace("eval_backend",
              Json(std::string(model::to_string(model::active_backend()))));
  obj.emplace("avx2_supported", Json(model::avx2_supported()));
  obj.emplace("cache", Json(std::move(cache)));
  return Json(std::move(obj)).dump();
}

Server::Stats Server::stats() const {
  Stats s;
  s.accepted_connections =
      accepted_connections_.load(std::memory_order_relaxed);
  s.requests = requests_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.rejected_overload = rejected_overload_.load(std::memory_order_relaxed);
  s.rejected_deadline = rejected_deadline_.load(std::memory_order_relaxed);
  s.rejected_shutdown = rejected_shutdown_.load(std::memory_order_relaxed);
  s.bad_requests = bad_requests_.load(std::memory_order_relaxed);
  s.coalesced = coalesced_.load(std::memory_order_relaxed);
  s.read_timeouts = read_timeouts_.load(std::memory_order_relaxed);
  s.warmed = warmed_.load(std::memory_order_relaxed);
  s.searches = searches_.load(std::memory_order_relaxed);
  s.search_warm_hits = search_warm_hits_.load(std::memory_order_relaxed);
  s.search_evaluations =
      search_evaluations_.load(std::memory_order_relaxed);
  s.cache = cache_.stats();
  return s;
}

}  // namespace ftbesst::svc
