#include "svc/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <stdexcept>
#include <system_error>
#include <utility>

#include "model/expr_simd.hpp"
#include "obs/obs.hpp"

namespace ftbesst::svc {

namespace {

struct ServerMetrics {
  obs::Counter requests = obs::counter("svc.requests");
  obs::Counter completed = obs::counter("svc.completed");
  obs::Counter rejected_overload = obs::counter("svc.rejected.overload");
  obs::Counter rejected_deadline = obs::counter("svc.rejected.deadline");
  obs::Counter rejected_shutdown = obs::counter("svc.rejected.shutdown");
  obs::Counter bad_requests = obs::counter("svc.bad_requests");
  obs::Counter coalesced = obs::counter("svc.coalesced");
  obs::Histogram request_seconds = obs::histogram(
      "svc.request_seconds",
      {1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0, 5.0, 30.0, 300.0});
};

ServerMetrics& metrics() {
  static ServerMetrics m;
  return m;
}

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0)
    throw_errno("fcntl(O_NONBLOCK)");
}

void set_cloexec(int fd) {
  const int flags = ::fcntl(fd, F_GETFD, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFD, flags | FD_CLOEXEC);
}

std::string error_payload(std::string_view code, std::string_view message) {
  JsonObject obj;
  obj.emplace("ok", Json(false));
  obj.emplace("code", Json(std::string(code)));
  obj.emplace("error", Json(std::string(message)));
  return Json(std::move(obj)).dump();
}

// The result payload is already serialized JSON; splicing it in as raw text
// keeps a cache hit's result bytes identical to the cold computation's.
std::string ok_payload(bool cached, std::string_view result_json) {
  std::string out;
  out.reserve(result_json.size() + 40);
  out += cached ? "{\"cached\":true,\"ok\":true,\"result\":"
                : "{\"cached\":false,\"ok\":true,\"result\":";
  out += result_json;
  out += '}';
  return out;
}

// Signal plumbing: the handler may only touch async-signal-safe state, so
// it calls Server::shutdown(), which is restricted to an atomic store plus
// one write() to the self-pipe.
std::atomic<Server*> g_signal_target{nullptr};

void handle_stop_signal(int) {
  if (Server* server = g_signal_target.load(std::memory_order_acquire))
    server->shutdown();
}

}  // namespace

struct Server::Connection {
  explicit Connection(int fd_in) : fd(fd_in) {}
  ~Connection() {
    if (fd >= 0) ::close(fd);
  }
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  /// Break the socket without freeing the fd number: tasks may still hold a
  /// reference and attempt a write, which must fail with EPIPE/ENOTCONN
  /// rather than land on a recycled descriptor. close() happens in the
  /// destructor, once the last shared_ptr drops.
  void close_socket() noexcept {
    if (open.exchange(false, std::memory_order_acq_rel))
      ::shutdown(fd, SHUT_RDWR);
  }

  const int fd;
  std::string buffer;       ///< event-loop-owned read accumulator
  std::mutex write_mutex;   ///< serializes response frames
  std::atomic<bool> open{true};
};

Server::Server(std::shared_ptr<const Registry> registry, ServerOptions options)
    : registry_(std::move(registry)),
      options_(std::move(options)),
      cache_(options_.cache) {
  if (!registry_) throw std::invalid_argument("Server requires a registry");
  if (options_.unix_socket_path.empty() && options_.tcp_port < 0)
    throw std::invalid_argument("Server needs a unix socket path or tcp port");
  if (options_.queue_capacity == 0) options_.queue_capacity = 1;
}

Server::~Server() {
  if (g_signal_target.load(std::memory_order_acquire) == this)
    install_signal_handlers(nullptr);
  if (started_.load(std::memory_order_acquire)) {
    shutdown();
    wait();
  }
  for (int fd : wake_pipe_)
    if (fd >= 0) ::close(fd);
}

void Server::install_signal_handlers(Server* server) {
  g_signal_target.store(server, std::memory_order_release);
  struct sigaction action {};
  if (server) {
    action.sa_handler = handle_stop_signal;
    sigemptyset(&action.sa_mask);
    action.sa_flags = 0;  // no SA_RESTART: poll() must wake
  } else {
    action.sa_handler = SIG_DFL;
  }
  ::sigaction(SIGTERM, &action, nullptr);
  ::sigaction(SIGINT, &action, nullptr);
}

void Server::start() {
  if (started_.exchange(true, std::memory_order_acq_rel))
    throw std::logic_error("Server::start() called twice");

  // Dead peers must surface as EPIPE from write(), not kill the process.
  ::signal(SIGPIPE, SIG_IGN);

  bool unix_bound = false;
  try {
    start_impl(unix_bound);
  } catch (...) {
    // A startup failure (busy port, bad path) must leave the object inert:
    // no loop thread ever ran, so wait()/~Server() must not block on
    // stop_cv_, and every fd acquired so far must be released.
    for (Listener* listener : {&unix_listener_, &tcp_listener_}) {
      if (listener->fd >= 0) ::close(listener->fd);
      listener->fd = -1;
    }
    if (unix_bound) ::unlink(options_.unix_socket_path.c_str());
    for (int& fd : wake_pipe_) {
      if (fd >= 0) ::close(fd);
      fd = -1;
    }
    bound_tcp_port_ = -1;
    started_.store(false, std::memory_order_release);
    throw;
  }
}

void Server::start_impl(bool& unix_bound) {
  if (::pipe(wake_pipe_) != 0) throw_errno("pipe");
  for (int fd : wake_pipe_) {
    set_nonblocking(fd);
    set_cloexec(fd);
  }

  if (!options_.unix_socket_path.empty()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options_.unix_socket_path.size() >= sizeof(addr.sun_path))
      throw std::invalid_argument("unix socket path too long: " +
                                  options_.unix_socket_path);
    std::memcpy(addr.sun_path, options_.unix_socket_path.c_str(),
                options_.unix_socket_path.size() + 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) throw_errno("socket(AF_UNIX)");
    set_cloexec(fd);
    // A leftover socket file is only removed when nothing answers on it
    // (stale from a crash). A live daemon accepts the connect() probe, and
    // unlinking its path would silently black-hole its future clients.
    const int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (probe >= 0) {
      const bool alive = ::connect(probe,
                                   reinterpret_cast<const sockaddr*>(&addr),
                                   sizeof(addr)) == 0;
      ::close(probe);
      if (alive) {
        ::close(fd);
        throw std::system_error(EADDRINUSE, std::generic_category(),
                                "unix socket in use by a running server: " +
                                    options_.unix_socket_path);
      }
    }
    ::unlink(options_.unix_socket_path.c_str());  // stale or absent
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      ::close(fd);
      throw_errno("bind(unix socket)");
    }
    unix_bound = true;
    if (::listen(fd, 128) != 0) {
      ::close(fd);
      throw_errno("listen(unix socket)");
    }
    unix_listener_.fd = fd;  // owned by the catch-cleanup from here on
    set_nonblocking(fd);
  }

  if (options_.tcp_port >= 0) {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(options_.tcp_port));
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) throw_errno("socket(AF_INET)");
    set_cloexec(fd);
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      ::close(fd);
      throw_errno("bind(127.0.0.1 tcp)");
    }
    if (::listen(fd, 128) != 0) {
      ::close(fd);
      throw_errno("listen(tcp)");
    }
    tcp_listener_.fd = fd;  // owned by the catch-cleanup from here on
    sockaddr_in bound{};
    socklen_t bound_len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) !=
        0)
      throw_errno("getsockname");
    bound_tcp_port_ = ntohs(bound.sin_port);
    set_nonblocking(fd);
  }

  loop_thread_ = std::thread([this] { event_loop(); });
}

void Server::wait() {
  {
    std::unique_lock<std::mutex> lock(stop_mutex_);
    stop_cv_.wait(lock,
                  [this] { return stopped_.load(std::memory_order_acquire); });
  }
  if (loop_thread_.joinable()) loop_thread_.join();
}

void Server::run() {
  start();
  wait();
}

void Server::shutdown() {
  // Async-signal-safe on purpose: an atomic store plus one pipe write. The
  // event loop notices `draining_` and does all the actual teardown.
  draining_.store(true, std::memory_order_release);
  const int fd = wake_pipe_[1];
  if (fd >= 0) {
    const char byte = 's';
    [[maybe_unused]] ssize_t n = ::write(fd, &byte, 1);
  }
}

void Server::accept_on(Listener& listener) {
  while (true) {
    const int fd = ::accept(listener.fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
      return;  // transient accept errors (ECONNABORTED, EMFILE): keep serving
    }
    set_cloexec(fd);
    // Connection fds stay *blocking*: the event loop issues exactly one
    // read() per POLLIN (never blocks with data pending) and pool tasks
    // want blocking write_full semantics for large responses.
    connections_.push_back(std::make_shared<Connection>(fd));
    accepted_connections_.fetch_add(1, std::memory_order_relaxed);
  }
}

void Server::event_loop() {
  bool listeners_closed = false;
  std::vector<pollfd> fds;
  const auto close_listeners = [this, &listeners_closed] {
    if (listeners_closed) return;
    listeners_closed = true;
    for (Listener* l : {&unix_listener_, &tcp_listener_}) {
      if (l->fd >= 0) ::close(l->fd);
      l->fd = -1;
    }
    if (!options_.unix_socket_path.empty())
      ::unlink(options_.unix_socket_path.c_str());
  };

  while (true) {
    if (draining()) {
      close_listeners();
      if (in_flight_.load(std::memory_order_acquire) == 0) {
        tasks_.wait();  // joins the last tasks past their final decrement
        break;
      }
    }

    fds.clear();
    fds.push_back({wake_pipe_[0], POLLIN, 0});
    std::ptrdiff_t unix_idx = -1, tcp_idx = -1;
    if (!listeners_closed) {
      if (unix_listener_.fd >= 0) {
        unix_idx = static_cast<std::ptrdiff_t>(fds.size());
        fds.push_back({unix_listener_.fd, POLLIN, 0});
      }
      if (tcp_listener_.fd >= 0) {
        tcp_idx = static_cast<std::ptrdiff_t>(fds.size());
        fds.push_back({tcp_listener_.fd, POLLIN, 0});
      }
    }
    const std::size_t conn_base = fds.size();
    for (const auto& conn : connections_)
      fds.push_back({conn->fd, POLLIN, 0});

    // 50ms cap so drain-completion and stray wakeups are always noticed.
    const int rc = ::poll(fds.data(), static_cast<nfds_t>(fds.size()), 50);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;  // unrecoverable poll failure: drain and stop
    }

    if (fds[0].revents & POLLIN) {
      char buf[64];
      while (::read(wake_pipe_[0], buf, sizeof buf) > 0) {
      }
    }

    if (unix_idx >= 0 && (fds[static_cast<std::size_t>(unix_idx)].revents &
                          POLLIN))
      accept_on(unix_listener_);
    if (tcp_idx >= 0 &&
        (fds[static_cast<std::size_t>(tcp_idx)].revents & POLLIN))
      accept_on(tcp_listener_);

    // accept_on() appends to connections_, so only the first fds.size() -
    // conn_base entries have poll results; new arrivals wait a tick.
    const std::size_t polled = fds.size() - conn_base;
    for (std::size_t i = 0; i < polled && i < connections_.size(); ++i) {
      const short revents = fds[conn_base + i].revents;
      if (revents & (POLLIN | POLLHUP | POLLERR))
        handle_readable(connections_[i]);
    }

    std::erase_if(connections_, [](const std::shared_ptr<Connection>& conn) {
      return !conn->open.load(std::memory_order_acquire);
    });
  }

  for (const auto& conn : connections_) conn->close_socket();
  connections_.clear();
  close_listeners();

  {
    std::lock_guard<std::mutex> lock(stop_mutex_);
    stopped_.store(true, std::memory_order_release);
  }
  stop_cv_.notify_all();
}

void Server::handle_readable(const std::shared_ptr<Connection>& conn) {
  char buf[64 * 1024];
  const ssize_t n = ::read(conn->fd, buf, sizeof buf);
  if (n == 0) {  // peer closed
    conn->close_socket();
    return;
  }
  if (n < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
    conn->close_socket();
    return;
  }
  conn->buffer.append(buf, static_cast<std::size_t>(n));

  std::string frame;
  while (true) {
    try {
      if (!extract_frame(conn->buffer, frame, options_.max_frame_bytes)) break;
    } catch (const std::exception& e) {
      // Oversized frame announcement: the stream is unrecoverable (we
      // cannot resynchronize), so answer once and drop the connection.
      reject_inline(conn, "bad_request", e.what());
      conn->close_socket();
      return;
    }
    admit(conn, std::move(frame));
    if (!conn->open.load(std::memory_order_acquire)) return;
  }
}

void Server::admit(const std::shared_ptr<Connection>& conn,
                   std::string frame) {
  if (draining()) {
    rejected_shutdown_.fetch_add(1, std::memory_order_relaxed);
    metrics().rejected_shutdown.add();
    reject_inline(conn, "shutting_down", "server is draining");
    return;
  }
  if (in_flight_.load(std::memory_order_acquire) >= options_.queue_capacity) {
    rejected_overload_.fetch_add(1, std::memory_order_relaxed);
    metrics().rejected_overload.add();
    reject_inline(conn, "overload",
                  "request queue full (capacity " +
                      std::to_string(options_.queue_capacity) +
                      "); retry later");
    return;
  }
  // Only this thread increments, so the capacity bound is exact; workers
  // merely decrement.
  in_flight_.fetch_add(1, std::memory_order_acq_rel);
  requests_.fetch_add(1, std::memory_order_relaxed);
  metrics().requests.add();
  const std::uint64_t arrival_ns = obs::now_ns();
  tasks_.run([this, conn, frame = std::move(frame), arrival_ns]() mutable {
    execute(conn, std::move(frame), arrival_ns);
  });
}

void Server::execute(const std::shared_ptr<Connection>& conn,
                     std::string frame, std::uint64_t arrival_ns) {
  // Everything below must reach the decrement: drain-completion counts on
  // it, and the reply (or the attempt) has happened by then.
  try {
    Json request;
    try {
      request = Json::parse(frame);
      if (!request.is_object())
        throw std::invalid_argument("request must be a JSON object");
    } catch (const std::exception& e) {
      bad_requests_.fetch_add(1, std::memory_order_relaxed);
      metrics().bad_requests.add();
      reply(conn, error_payload("bad_request", e.what()));
      in_flight_.fetch_sub(1, std::memory_order_acq_rel);
      return;
    }

    const double deadline_ms =
        request.number_or("deadline_ms", options_.default_deadline_ms);
    if (deadline_ms > 0.0) {
      const double waited_ms =
          static_cast<double>(obs::now_ns() - arrival_ns) * 1e-6;
      if (waited_ms > deadline_ms) {
        rejected_deadline_.fetch_add(1, std::memory_order_relaxed);
        metrics().rejected_deadline.add();
        reply(conn, error_payload(
                        "deadline",
                        "deadline of " + std::to_string(deadline_ms) +
                            " ms expired while queued (waited " +
                            std::to_string(waited_ms) + " ms)"));
        in_flight_.fetch_sub(1, std::memory_order_acq_rel);
        return;
      }
    }

    const std::string op = request.string_or("op", "");
    std::string payload;
    if (op == "ping") {
      JsonObject pong;
      pong.emplace("pong", Json(true));
      payload = ok_payload(false, Json(std::move(pong)).dump());
    } else if (op == "stats") {
      payload = ok_payload(false, stats_json());
    } else if (op == "shutdown") {
      JsonObject result;
      result.emplace("draining", Json(true));
      payload = ok_payload(false, Json(std::move(result)).dump());
      reply(conn, payload);
      completed_.fetch_add(1, std::memory_order_relaxed);
      metrics().completed.add();
      in_flight_.fetch_sub(1, std::memory_order_acq_rel);
      shutdown();
      return;
    } else if (op == "sleep") {
      // Debug/test op: holds a queue slot for a controlled duration so
      // overload and deadline behaviour are deterministically testable.
      // Never cached.
      const double ms =
          std::min(10000.0, std::max(0.0, request.number_or("ms", 0.0)));
      std::this_thread::sleep_for(
          std::chrono::microseconds(static_cast<std::int64_t>(ms * 1000.0)));
      JsonObject result;
      result.emplace("slept_ms", Json(ms));
      payload = ok_payload(false, Json(std::move(result)).dump());
    } else if (op == "predict" || op == "simulate" || op == "inject" ||
               op == "dse" || op == "search") {
      try {
        const std::string key = canonical_key(request);
        if (auto hit = cache_.get(key)) {
          payload = ok_payload(true, *hit);
        } else {
          bool leader = false;
          auto value = single_flight_.run(
              key,
              [this, &request, &key, &op]() -> SingleFlight::Result {
                // The search op reads prior single-cell dse entries out of
                // the result cache (warm start) and writes its own
                // full-fidelity evaluations back through the same hooks.
                CacheHooks hooks;
                if (op == "search") {
                  hooks.get = [this](const std::string& k) {
                    return cache_.get(k);
                  };
                  hooks.put = [this](const std::string& k,
                                     std::shared_ptr<const std::string> v) {
                    cache_.put(k, std::move(v));
                  };
                }
                const Json result_json =
                    handle_request(*registry_, request, hooks);
                if (op == "search") {
                  searches_.fetch_add(1, std::memory_order_relaxed);
                  search_warm_hits_.fetch_add(
                      static_cast<std::uint64_t>(
                          result_json.number_or("warm_hits", 0.0)),
                      std::memory_order_relaxed);
                  search_evaluations_.fetch_add(
                      static_cast<std::uint64_t>(
                          result_json.number_or("evaluations", 0.0)),
                      std::memory_order_relaxed);
                }
                auto result =
                    std::make_shared<const std::string>(result_json.dump());
                cache_.put(key, result);
                return result;
              },
              &leader);
          if (!leader) {
            coalesced_.fetch_add(1, std::memory_order_relaxed);
            metrics().coalesced.add();
          }
          payload = ok_payload(false, *value);
        }
      } catch (const std::invalid_argument& e) {
        bad_requests_.fetch_add(1, std::memory_order_relaxed);
        metrics().bad_requests.add();
        reply(conn, error_payload("bad_request", e.what()));
        in_flight_.fetch_sub(1, std::memory_order_acq_rel);
        return;
      }
    } else {
      bad_requests_.fetch_add(1, std::memory_order_relaxed);
      metrics().bad_requests.add();
      reply(conn, error_payload(
                      "bad_request",
                      op.empty()
                          ? std::string("missing \"op\" field")
                          : "unknown op '" + op +
                                "' (valid: ping, stats, predict, simulate, "
                                "inject, dse, search, sleep, shutdown)"));
      in_flight_.fetch_sub(1, std::memory_order_acq_rel);
      return;
    }

    reply(conn, payload);
    completed_.fetch_add(1, std::memory_order_relaxed);
    metrics().completed.add();
    metrics().request_seconds.observe(
        static_cast<double>(obs::now_ns() - arrival_ns) * 1e-9);
  } catch (const std::exception& e) {
    // Engine/system failure: still answer so the client is not left
    // hanging, and keep the daemon alive.
    reply(conn, error_payload("internal", e.what()));
  } catch (...) {
    reply(conn, error_payload("internal", "unknown error"));
  }
  in_flight_.fetch_sub(1, std::memory_order_acq_rel);
}

void Server::reply(const std::shared_ptr<Connection>& conn,
                   std::string_view payload) {
  std::lock_guard<std::mutex> lock(conn->write_mutex);
  if (!conn->open.load(std::memory_order_acquire)) return;
  try {
    write_frame(conn->fd, payload, options_.max_frame_bytes);
  } catch (const std::exception&) {
    conn->close_socket();  // peer gone mid-write; event loop sweeps it
  }
}

void Server::reject_inline(const std::shared_ptr<Connection>& conn,
                           std::string_view code, std::string_view message) {
  // Runs on the event loop, which must never block: one non-blocking send
  // attempt. A client too stalled to take a 100-byte rejection (or whose
  // connection is busy with a large in-progress response) gets dropped —
  // shedding the slow consumer instead of the whole accept path.
  const std::string payload = error_payload(code, message);
  std::unique_lock<std::mutex> lock(conn->write_mutex, std::try_to_lock);
  if (!lock.owns_lock()) {
    conn->close_socket();
    return;
  }
  if (!conn->open.load(std::memory_order_acquire)) return;
  unsigned char header[4];
  encode_length(static_cast<std::uint32_t>(payload.size()), header);
  std::string frame(reinterpret_cast<const char*>(header), 4);
  frame += payload;
  const ssize_t n =
      ::send(conn->fd, frame.data(), frame.size(), MSG_DONTWAIT | MSG_NOSIGNAL);
  if (n != static_cast<ssize_t>(frame.size())) conn->close_socket();
}

std::string Server::stats_json() const {
  const Stats s = stats();
  JsonObject cache;
  cache.emplace("hits", Json(s.cache.hits));
  cache.emplace("misses", Json(s.cache.misses));
  cache.emplace("evictions", Json(s.cache.evictions));
  cache.emplace("entries", Json(s.cache.entries));
  cache.emplace("bytes", Json(s.cache.bytes));
  JsonObject obj;
  obj.emplace("accepted_connections", Json(s.accepted_connections));
  obj.emplace("requests", Json(s.requests));
  obj.emplace("completed", Json(s.completed));
  obj.emplace("rejected_overload", Json(s.rejected_overload));
  obj.emplace("rejected_deadline", Json(s.rejected_deadline));
  obj.emplace("rejected_shutdown", Json(s.rejected_shutdown));
  obj.emplace("bad_requests", Json(s.bad_requests));
  obj.emplace("coalesced", Json(s.coalesced));
  obj.emplace("searches", Json(s.searches));
  obj.emplace("search_warm_hits", Json(s.search_warm_hits));
  obj.emplace("search_evaluations", Json(s.search_evaluations));
  obj.emplace("in_flight", Json(in_flight_.load(std::memory_order_relaxed)));
  obj.emplace("queue_capacity", Json(options_.queue_capacity));
  // Which ExprProgram backend prices predict/dse batches in this process
  // (FTBESST_SIMD resolution), so clients can attribute throughput and
  // verify parity runs against the right configuration.
  obj.emplace("eval_backend",
              Json(std::string(model::to_string(model::active_backend()))));
  obj.emplace("avx2_supported", Json(model::avx2_supported()));
  obj.emplace("cache", Json(std::move(cache)));
  return Json(std::move(obj)).dump();
}

Server::Stats Server::stats() const {
  Stats s;
  s.accepted_connections =
      accepted_connections_.load(std::memory_order_relaxed);
  s.requests = requests_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.rejected_overload = rejected_overload_.load(std::memory_order_relaxed);
  s.rejected_deadline = rejected_deadline_.load(std::memory_order_relaxed);
  s.rejected_shutdown = rejected_shutdown_.load(std::memory_order_relaxed);
  s.bad_requests = bad_requests_.load(std::memory_order_relaxed);
  s.coalesced = coalesced_.load(std::memory_order_relaxed);
  s.searches = searches_.load(std::memory_order_relaxed);
  s.search_warm_hits = search_warm_hits_.load(std::memory_order_relaxed);
  s.search_evaluations =
      search_evaluations_.load(std::memory_order_relaxed);
  s.cache = cache_.stats();
  return s;
}

}  // namespace ftbesst::svc
