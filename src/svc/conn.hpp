#pragma once
// Shared connection + poll-loop machinery for the serving tier.
//
// `Conn` is one accepted client connection: a *blocking* fd plus the
// event-loop-owned read accumulator and the write mutex that serializes
// response frames. `ReadLoop` is the poll loop that owns every socket
// read for a set of listeners and their accepted connections — it peels
// complete length-prefixed frames off each connection and hands them to a
// callback, enforcing an optional per-connection read deadline so a
// slowloris client holding a half-written frame can never wedge the loop.
//
// Both the single-process `Server` and each `Router` reader thread are
// instances of this loop; only the frame handler differs (execute locally
// vs. proxy to a worker shard).

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "svc/wire.hpp"

namespace ftbesst::svc {

struct Conn {
  explicit Conn(int fd_in) : fd(fd_in) {}
  ~Conn();
  Conn(const Conn&) = delete;
  Conn& operator=(const Conn&) = delete;

  /// Break the socket without freeing the fd number: tasks may still hold a
  /// reference and attempt a write, which must fail with EPIPE/ENOTCONN
  /// rather than land on a recycled descriptor. close() happens in the
  /// destructor, once the last shared_ptr drops.
  void close_socket() noexcept;

  /// Blocking framed send, serialized by `write_mutex`. Closes the socket
  /// on any write error (peer gone mid-write; the loop sweeps it later).
  void send_frame(std::string_view payload, std::uint32_t max_bytes);

  /// Non-blocking single-attempt framed send for loop-thread rejections: a
  /// client too stalled to take a ~100-byte reply (or whose connection is
  /// busy with a large in-progress response) gets dropped — shedding the
  /// slow consumer instead of the whole accept path.
  void try_send_frame(std::string_view payload);

  const int fd;
  std::string buffer;       ///< loop-owned read accumulator
  /// Monotonic ns timestamp of the first byte of a still-incomplete frame;
  /// 0 when the buffer holds no partial frame. Loop-owned.
  std::uint64_t partial_since_ns = 0;
  std::mutex write_mutex;   ///< serializes response frames
  std::atomic<bool> open{true};
};

struct ReadLoopOptions {
  std::uint32_t max_frame_bytes = kMaxFrameBytes;
  /// Per-connection read deadline: a connection whose buffer has held an
  /// incomplete frame for longer than this is answered (via the
  /// on_read_timeout hook) and closed. 0 disables the sweep.
  double read_deadline_ms = 0.0;
  /// Poll timeout cap, so tick() always runs at this cadence even when no
  /// fd fires (drain completion, deadline sweeps, stray wakeups).
  int poll_ms = 50;
};

class ReadLoop {
 public:
  struct Hooks {
    /// A complete frame arrived. Required.
    std::function<void(const std::shared_ptr<Conn>&, std::string&&)> on_frame;
    /// Oversized frame announcement: the stream cannot be resynchronized.
    /// The hook should answer once and close; the default just closes.
    std::function<void(const std::shared_ptr<Conn>&, const char*)>
        on_frame_error;
    /// Partial frame exceeded the read deadline. Same contract as
    /// on_frame_error; the default just closes.
    std::function<void(const std::shared_ptr<Conn>&)> on_read_timeout;
    /// A connection was accepted (loop thread; count, don't block).
    std::function<void(const std::shared_ptr<Conn>&)> on_accept;
    /// Runs once per wakeup after all events are handled; return true to
    /// exit the loop (which then closes every remaining connection).
    /// Required — this is where drain logic lives.
    std::function<bool(ReadLoop&)> tick;
  };

  ReadLoop(ReadLoopOptions options, Hooks hooks);

  /// Poll `listener_fds` (non-blocking, shared with sibling loops) plus
  /// every accepted connection until tick() returns true. `wake_fd`, when
  /// >= 0, is a read end whose readability wakes the loop early; bytes are
  /// drained. Listener fds are *not* closed by the loop.
  void run(const std::vector<int>& listener_fds, int wake_fd = -1);

  /// Drop the listeners from the poll set (call from a hook, before the
  /// owner closes the fds — a closed fd in the poll set is POLLNVAL).
  void stop_accepting() noexcept {
    accepting_.store(false, std::memory_order_release);
  }

  [[nodiscard]] std::uint64_t accepted() const noexcept {
    return accepted_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t read_timeouts() const noexcept {
    return read_timeouts_.load(std::memory_order_relaxed);
  }

 private:
  void accept_on(int fd);
  void handle_readable(const std::shared_ptr<Conn>& conn);
  void sweep_deadlines();

  ReadLoopOptions options_;
  Hooks hooks_;
  std::atomic<bool> accepting_{true};
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> read_timeouts_{0};
  std::vector<std::shared_ptr<Conn>> conns_;  ///< loop-thread-owned
};

}  // namespace ftbesst::svc
