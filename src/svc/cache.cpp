#include "svc/cache.hpp"

#include <stdexcept>

#include "obs/clock.hpp"
#include "obs/obs.hpp"

namespace ftbesst::svc {

namespace {

struct CacheMetrics {
  obs::Counter hits = obs::counter("svc.cache.hits");
  obs::Counter misses = obs::counter("svc.cache.misses");
  obs::Counter evictions = obs::counter("svc.cache.evictions");
  obs::Gauge bytes = obs::gauge("svc.cache.bytes");
  obs::Gauge entries = obs::gauge("svc.cache.entries");
};

CacheMetrics& metrics() {
  static CacheMetrics m;
  return m;
}

}  // namespace

std::uint64_t ResultCache::hash_key(std::string_view key) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

ResultCache::ResultCache(CacheConfig config) : config_(config) {
  if (config_.shards == 0) config_.shards = 1;
  per_shard_budget_ = config_.max_bytes / config_.shards;
  if (per_shard_budget_ == 0) per_shard_budget_ = 1;
  shards_.reserve(config_.shards);
  for (std::size_t i = 0; i < config_.shards; ++i)
    shards_.push_back(std::make_unique<Shard>());
  metrics();  // register the obs names before any hot-path handle use
}

ResultCache::Shard& ResultCache::shard_for(std::string_view key) {
  return *shards_[hash_key(key) % shards_.size()];
}

void ResultCache::drop_entry(Shard& shard, std::list<Entry>::iterator it) {
  shard.bytes -= it->bytes;
  bytes_.fetch_sub(it->bytes, std::memory_order_relaxed);
  entries_.fetch_sub(1, std::memory_order_relaxed);
  shard.index.erase(std::string_view(it->key));
  shard.lru.erase(it);
}

std::shared_ptr<const std::string> ResultCache::get(std::string_view key) {
  Shard& shard = shard_for(key);
  std::shared_ptr<const std::string> value;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      const auto entry = it->second;
      if (entry->expires_ns != 0 && obs::now_ns() >= entry->expires_ns) {
        drop_entry(shard, entry);
        evictions_.fetch_add(1, std::memory_order_relaxed);
        metrics().evictions.add();
      } else {
        shard.lru.splice(shard.lru.begin(), shard.lru, entry);
        value = entry->value;
      }
    }
  }
  if (value) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    metrics().hits.add();
  } else {
    misses_.fetch_add(1, std::memory_order_relaxed);
    metrics().misses.add();
  }
  return value;
}

void ResultCache::evict_over_budget(Shard& shard) {
  while (shard.bytes > per_shard_budget_ && !shard.lru.empty()) {
    drop_entry(shard, std::prev(shard.lru.end()));
    evictions_.fetch_add(1, std::memory_order_relaxed);
    metrics().evictions.add();
  }
}

void ResultCache::put(std::string_view key,
                      std::shared_ptr<const std::string> value) {
  if (!value) throw std::invalid_argument("ResultCache::put: null value");
  Entry entry;
  entry.key.assign(key);
  entry.bytes = key.size() + value->size() + sizeof(Entry);
  entry.value = std::move(value);
  if (config_.ttl_seconds > 0.0)
    entry.expires_ns =
        obs::now_ns() +
        static_cast<std::uint64_t>(config_.ttl_seconds * 1e9);

  Shard& shard = shard_for(key);
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.index.find(key);
    if (it != shard.index.end()) drop_entry(shard, it->second);
    shard.lru.push_front(std::move(entry));
    shard.index.emplace(std::string_view(shard.lru.front().key),
                        shard.lru.begin());
    shard.bytes += shard.lru.front().bytes;
    bytes_.fetch_add(shard.lru.front().bytes, std::memory_order_relaxed);
    entries_.fetch_add(1, std::memory_order_relaxed);
    evict_over_budget(shard);
  }
  metrics().bytes.set(static_cast<double>(bytes_.load()));
  metrics().entries.set(static_cast<double>(entries_.load()));
}

CacheStats ResultCache::stats() const {
  CacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.entries = entries_.load(std::memory_order_relaxed);
  s.bytes = bytes_.load(std::memory_order_relaxed);
  return s;
}

void ResultCache::clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    while (!shard->lru.empty()) drop_entry(*shard, shard->lru.begin());
  }
}

SingleFlight::Result SingleFlight::run(
    const std::string& key, const std::function<Result()>& compute,
    bool* leader) {
  std::promise<Result> promise;
  std::shared_future<Result> future;
  bool is_leader = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = inflight_.find(key);
    if (it == inflight_.end()) {
      is_leader = true;
      future = promise.get_future().share();
      inflight_.emplace(key, future);
    } else {
      future = it->second;
    }
  }
  if (leader) *leader = is_leader;
  if (!is_leader) return future.get();  // rethrows the leader's exception

  // Leader: compute, publish, and retire the in-flight slot. Followers that
  // arrive after the erase see a plain cache hit instead.
  try {
    Result result = compute();
    promise.set_value(result);
    std::lock_guard<std::mutex> lock(mutex_);
    inflight_.erase(key);
    return result;
  } catch (...) {
    promise.set_exception(std::current_exception());
    {
      std::lock_guard<std::mutex> lock(mutex_);
      inflight_.erase(key);
    }
    throw;
  }
}

}  // namespace ftbesst::svc
