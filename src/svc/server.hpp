#pragma once
// The long-running FT-BESST prediction daemon.
//
// Request flow (see docs/ARCHITECTURE.md "Serving layer"):
//
//   accept -> event loop (poll) -> frame decode -> ADMISSION -> TaskPool
//     -> deadline check -> cache lookup -> [single-flight compute] -> reply
//
// One event-loop thread (a svc::ReadLoop) owns every socket read: it
// accepts connections on a Unix-domain listener and/or a localhost TCP
// listener, buffers bytes per connection, and peels off complete
// length-prefixed frames. Admission is where backpressure lives: at most
// `queue_capacity` requests may be queued-or-executing at once; a frame
// arriving beyond that is answered immediately with an explicit overload
// rejection (shed, never stall) and the connection stays healthy. Admitted
// requests become tasks on the shared util::TaskPool — the same pool the
// engines fan trials onto, so a request that runs a DSE sweep composes
// with its own nested parallelism instead of oversubscribing the machine.
//
// Responses are written by the pool task that computed them, serialized
// per-connection by a write mutex (the event loop only writes rejection
// replies, using a non-blocking attempt so a stalled client can never
// wedge the accept path — if the reject reply would block, the connection
// is dropped instead). An optional per-connection read deadline closes
// slowloris connections that park a half-written frame on the loop.
//
// Lifecycle: shutdown() (from the `shutdown` op, SIGTERM/SIGINT via
// install_signal_handlers, or the embedding test) closes the listeners,
// rejects new frames with code "shutting_down", drains in-flight requests,
// answers them, then run() returns. The signal handler itself only writes
// one byte to a self-pipe — every non-async-signal-safe action happens on
// the event loop.
//
// Wire envelope (all replies):
//   {"cached":<bool>,"ok":true,"result":<result-json>}
//   {"code":"<machine code>","error":"<message>","ok":false}
// The result bytes of a cache hit are byte-identical to the cold
// computation's — the cache stores the serialized result payload itself.
//
// In the scaled tier (svc/router.hpp) a Server instance is one worker
// shard: the router consistent-hashes canonical request keys across N of
// these, and the tier-internal `warm` op bulk-loads journaled
// {key -> result} pairs into the shard's cache after a respawn.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "svc/cache.hpp"
#include "svc/conn.hpp"
#include "svc/registry.hpp"
#include "svc/wire.hpp"
#include "util/task_pool.hpp"

namespace ftbesst::svc {

struct ServerOptions {
  /// Unix-domain socket path (empty = no unix listener). A stale socket
  /// file (nothing answering) is replaced on bind; a path a live server
  /// still answers on makes start() throw EADDRINUSE instead of stealing
  /// it. Unlinked on shutdown.
  std::string unix_socket_path;
  /// Localhost TCP port: -1 = no TCP listener, 0 = pick an ephemeral port
  /// (read it back with tcp_port()). Binds 127.0.0.1 only.
  int tcp_port = -1;
  /// Admission bound: maximum requests queued or executing. Beyond this,
  /// new requests get {"code":"overload"} immediately.
  std::size_t queue_capacity = 64;
  /// Default per-request deadline in ms applied when the request carries no
  /// "deadline_ms" field; 0 = none. A request whose deadline has already
  /// passed when a worker picks it up is answered {"code":"deadline"}
  /// without computing.
  double default_deadline_ms = 0.0;
  /// Per-connection read deadline in ms: a connection that holds a partial
  /// frame this long is answered {"code":"read_timeout"} and closed, so a
  /// slowloris client cannot pin loop state forever. 0 = off.
  double read_deadline_ms = 0.0;
  /// Instance name surfaced in the stats op ("worker-3"); empty for the
  /// standalone daemon.
  std::string name;
  CacheConfig cache;
  std::uint32_t max_frame_bytes = kMaxFrameBytes;
};

class Server {
 public:
  Server(std::shared_ptr<const Registry> registry, ServerOptions options);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind listeners and start the event loop thread. Throws
  /// std::system_error if a listener cannot be bound.
  void start();
  /// Block until the server has fully drained and stopped.
  void wait();
  /// start() + wait() — the CLI entry point.
  void run();
  /// Begin graceful drain; idempotent, safe from any thread and from the
  /// `shutdown` request handler.
  void shutdown();

  /// Actual TCP port after start() (useful with tcp_port = 0).
  [[nodiscard]] int tcp_port() const noexcept { return bound_tcp_port_; }

  /// Route SIGTERM/SIGINT to server->shutdown() via a self-pipe. Pass
  /// nullptr to restore the default disposition. Only one server at a time
  /// can be the signal target.
  static void install_signal_handlers(Server* server);

  struct Stats {
    std::uint64_t accepted_connections = 0;
    std::uint64_t requests = 0;           ///< admitted
    std::uint64_t completed = 0;
    std::uint64_t rejected_overload = 0;
    std::uint64_t rejected_deadline = 0;
    std::uint64_t rejected_shutdown = 0;
    std::uint64_t bad_requests = 0;       ///< parse/validation failures
    std::uint64_t coalesced = 0;          ///< single-flight followers
    std::uint64_t read_timeouts = 0;      ///< slowloris connections dropped
    std::uint64_t warmed = 0;             ///< cache entries loaded via `warm`
    std::uint64_t searches = 0;           ///< cold search-op computations
    std::uint64_t search_warm_hits = 0;   ///< cells warm-started from cache
    std::uint64_t search_evaluations = 0; ///< cells searches priced cold
    CacheStats cache;
  };
  [[nodiscard]] Stats stats() const;

  [[nodiscard]] const ResultCache& cache() const noexcept { return cache_; }

 private:
  struct Listener {
    int fd = -1;
  };

  /// start() body: binds listeners and launches the loop thread. On
  /// failure start() releases every fd acquired so far and resets
  /// started_, so the object stays inert (wait()/~Server() return
  /// immediately) and start() may be retried.
  void start_impl(bool& unix_bound);
  void event_loop();
  void admit(const std::shared_ptr<Conn>& conn, std::string frame);
  void execute(const std::shared_ptr<Conn>& conn, std::string frame,
               std::uint64_t arrival_ns);
  void reject_inline(const std::shared_ptr<Conn>& conn, std::string_view code,
                     std::string_view message);
  [[nodiscard]] std::string warm_cache(const Json& request);
  [[nodiscard]] std::string stats_json() const;
  [[nodiscard]] bool draining() const noexcept {
    return draining_.load(std::memory_order_acquire);
  }

  std::shared_ptr<const Registry> registry_;
  ServerOptions options_;
  ResultCache cache_;
  SingleFlight single_flight_;

  Listener unix_listener_;
  Listener tcp_listener_;
  int bound_tcp_port_ = -1;
  int wake_pipe_[2] = {-1, -1};  ///< self-pipe: shutdown()/signal -> poll

  std::thread loop_thread_;
  std::atomic<bool> started_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> stopped_{false};
  std::mutex stop_mutex_;
  std::condition_variable stop_cv_;

  std::atomic<std::size_t> in_flight_{0};
  util::TaskGroup tasks_;

  // Stats counters (relaxed atomics; exact totals once drained).
  std::atomic<std::uint64_t> accepted_connections_{0};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> rejected_overload_{0};
  std::atomic<std::uint64_t> rejected_deadline_{0};
  std::atomic<std::uint64_t> rejected_shutdown_{0};
  std::atomic<std::uint64_t> bad_requests_{0};
  std::atomic<std::uint64_t> coalesced_{0};
  std::atomic<std::uint64_t> read_timeouts_{0};
  std::atomic<std::uint64_t> warmed_{0};
  std::atomic<std::uint64_t> searches_{0};
  std::atomic<std::uint64_t> search_warm_hits_{0};
  std::atomic<std::uint64_t> search_evaluations_{0};
};

}  // namespace ftbesst::svc
