#include "svc/listen.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <system_error>

namespace ftbesst::svc {

void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0)
    throw_errno("fcntl(O_NONBLOCK)");
}

void set_cloexec(int fd) {
  const int flags = ::fcntl(fd, F_GETFD, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFD, flags | FD_CLOEXEC);
}

int bind_unix(const std::string& path, bool* bound) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path))
    throw std::invalid_argument("unix socket path too long: " + path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket(AF_UNIX)");
  set_cloexec(fd);
  const int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (probe >= 0) {
    const bool alive =
        ::connect(probe, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0;
    ::close(probe);
    if (alive) {
      ::close(fd);
      throw std::system_error(
          EADDRINUSE, std::generic_category(),
          "unix socket in use by a running server: " + path);
    }
  }
  ::unlink(path.c_str());  // stale or absent
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    throw_errno("bind(unix socket)");
  }
  if (bound) *bound = true;
  if (::listen(fd, 128) != 0) {
    ::close(fd);
    throw_errno("listen(unix socket)");
  }
  try {
    set_nonblocking(fd);
  } catch (...) {
    ::close(fd);
    throw;
  }
  return fd;
}

int bind_tcp(int port, int* bound_port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket(AF_INET)");
  set_cloexec(fd);
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    throw_errno("bind(127.0.0.1 tcp)");
  }
  if (::listen(fd, 128) != 0) {
    ::close(fd);
    throw_errno("listen(tcp)");
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) !=
      0) {
    ::close(fd);
    throw_errno("getsockname");
  }
  if (bound_port) *bound_port = ntohs(bound.sin_port);
  try {
    set_nonblocking(fd);
  } catch (...) {
    ::close(fd);
    throw;
  }
  return fd;
}

}  // namespace ftbesst::svc
