#include "svc/router.hpp"

#include <csignal>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <stdexcept>
#include <system_error>
#include <utility>

#include "obs/obs.hpp"
#include "svc/client.hpp"
#include "svc/json.hpp"
#include "svc/listen.hpp"
#include "svc/registry.hpp"
#include "svc/worker.hpp"

namespace ftbesst::svc {

namespace {

struct RouterMetrics {
  obs::Counter requests = obs::counter("svc.router.requests");
  obs::Counter completed = obs::counter("svc.router.completed");
  obs::Counter rejected_overload =
      obs::counter("svc.router.rejected.overload");
  obs::Counter rejected_shutdown =
      obs::counter("svc.router.rejected.shutdown");
  obs::Counter shed_degraded = obs::counter("svc.router.shed.degraded");
  obs::Counter bad_requests = obs::counter("svc.router.bad_requests");
  obs::Counter coalesced = obs::counter("svc.router.coalesced");
  obs::Counter routed = obs::counter("svc.router.routed");
  obs::Counter retries = obs::counter("svc.router.retries");
  obs::Counter respawns = obs::counter("svc.router.respawns");
  obs::Counter journal_replayed =
      obs::counter("svc.router.journal.replayed");
  obs::Histogram proxy_seconds = obs::histogram(
      "svc.router.proxy_seconds",
      {1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0, 5.0, 30.0, 300.0});
};

RouterMetrics& metrics() {
  static RouterMetrics m;
  return m;
}

std::atomic<Router*> g_router_signal_target{nullptr};

void handle_router_stop_signal(int) {
  if (Router* router =
          g_router_signal_target.load(std::memory_order_acquire))
    router->shutdown();
}

constexpr std::size_t kMaxPooledLinks = 16;

bool wait_exit(pid_t pid, double grace_s) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(grace_s);
  while (true) {
    int status = 0;
    const pid_t got = ::waitpid(pid, &status, WNOHANG);
    if (got == pid || (got < 0 && errno == ECHILD)) return true;
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

}  // namespace

struct Router::Slot {
  explicit Slot(WorkerSpec spec_in) : spec(std::move(spec_in)) {}

  const WorkerSpec spec;
  std::atomic<bool> healthy{false};
  std::atomic<bool> restarting{false};
  std::atomic<pid_t> pid{-1};

  /// Serializes spawn/ready/warm transitions (supervisor vs. rolling
  /// restart); never held while serving.
  std::mutex lifecycle_mutex;

  std::mutex pool_mutex;
  std::vector<Client> idle;  ///< pooled proxy connections

  void drop_pool() {
    std::lock_guard<std::mutex> lock(pool_mutex);
    idle.clear();
  }
};

Router::Router(RouterOptions options)
    : options_(std::move(options)),
      ring_(std::max<std::size_t>(options_.workers.size(), 1),
            options_.vnodes),
      journal_(options_.journal_max_entries, options_.journal_max_bytes) {
  if (options_.workers.empty())
    throw std::invalid_argument("Router needs at least one worker");
  if (options_.unix_socket_path.empty() && options_.tcp_port < 0)
    throw std::invalid_argument("Router needs a unix socket path or tcp port");
  if (options_.readers == 0) options_.readers = 1;
  if (options_.proxy_threads == 0) options_.proxy_threads = 1;
  if (options_.queue_capacity == 0) options_.queue_capacity = 1;
  for (const WorkerSpec& spec : options_.workers) {
    if (spec.socket_path.empty())
      throw std::invalid_argument("WorkerSpec needs a socket path");
    if (spec.socket_path == options_.unix_socket_path)
      throw std::invalid_argument(
          "worker socket collides with the router socket: " +
          spec.socket_path);
  }
  slots_.reserve(options_.workers.size());
  for (const WorkerSpec& spec : options_.workers)
    slots_.push_back(std::make_unique<Slot>(spec));
}

Router::~Router() {
  if (g_router_signal_target.load(std::memory_order_acquire) == this)
    install_signal_handlers(nullptr);
  if (started_.load(std::memory_order_acquire)) {
    shutdown();
    wait();
  }
  for (int fd : wake_pipe_)
    if (fd >= 0) ::close(fd);
}

void Router::install_signal_handlers(Router* router) {
  g_router_signal_target.store(router, std::memory_order_release);
  struct sigaction action {};
  if (router) {
    action.sa_handler = handle_router_stop_signal;
    sigemptyset(&action.sa_mask);
    action.sa_flags = 0;  // no SA_RESTART: poll() must wake
  } else {
    action.sa_handler = SIG_DFL;
  }
  ::sigaction(SIGTERM, &action, nullptr);
  ::sigaction(SIGINT, &action, nullptr);
}

void Router::start() {
  if (started_.exchange(true, std::memory_order_acq_rel))
    throw std::logic_error("Router::start() called twice");
  ::signal(SIGPIPE, SIG_IGN);

  bool unix_bound = false;
  try {
    start_impl(unix_bound);
  } catch (...) {
    for (int* fd : {&unix_listener_fd_, &tcp_listener_fd_}) {
      if (*fd >= 0) ::close(*fd);
      *fd = -1;
    }
    if (unix_bound) ::unlink(options_.unix_socket_path.c_str());
    for (int& fd : wake_pipe_) {
      if (fd >= 0) ::close(fd);
      fd = -1;
    }
    bound_tcp_port_ = -1;
    started_.store(false, std::memory_order_release);
    throw;
  }
}

void Router::start_impl(bool& unix_bound) {
  if (::pipe(wake_pipe_) != 0) throw_errno("pipe");
  for (int fd : wake_pipe_) {
    set_nonblocking(fd);
    set_cloexec(fd);
  }
  if (!options_.unix_socket_path.empty())
    unix_listener_fd_ = bind_unix(options_.unix_socket_path, &unix_bound);
  if (options_.tcp_port >= 0)
    tcp_listener_fd_ = bind_tcp(options_.tcp_port, &bound_tcp_port_);

  // Threads last: once any thread runs, teardown goes through shutdown()
  // rather than the catch-cleanup above.
  proxy_threads_.reserve(options_.proxy_threads);
  for (std::size_t i = 0; i < options_.proxy_threads; ++i)
    proxy_threads_.emplace_back([this] { proxy_main(); });
  supervisor_thread_ = std::thread([this] { supervise(); });
  reader_threads_.reserve(options_.readers);
  for (std::size_t i = 0; i < options_.readers; ++i)
    reader_threads_.emplace_back([this, i] { reader_main(i); });
  closer_thread_ = std::thread([this] { closer_main(); });
}

void Router::wait() {
  {
    std::unique_lock<std::mutex> lock(stop_mutex_);
    stop_cv_.wait(lock,
                  [this] { return stopped_.load(std::memory_order_acquire); });
  }
  if (closer_thread_.joinable()) closer_thread_.join();
}

void Router::run() {
  start();
  wait();
}

void Router::shutdown() {
  // Async-signal-safe: an atomic store plus one pipe write; the closer
  // thread performs every non-signal-safe teardown step.
  draining_.store(true, std::memory_order_release);
  const int fd = wake_pipe_[1];
  if (fd >= 0) {
    const char byte = 's';
    [[maybe_unused]] ssize_t n = ::write(fd, &byte, 1);
  }
}

bool Router::wait_healthy(double timeout_s) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_s);
  while (true) {
    bool all = true;
    for (const auto& slot : slots_)
      if (!slot->healthy.load(std::memory_order_acquire)) {
        all = false;
        break;
      }
    if (all) return true;
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

std::size_t Router::worker_count() const noexcept { return slots_.size(); }

bool Router::worker_healthy(std::size_t index) const {
  return slots_.at(index)->healthy.load(std::memory_order_acquire);
}

pid_t Router::worker_pid(std::size_t index) const {
  return slots_.at(index)->pid.load(std::memory_order_acquire);
}

std::size_t Router::worker_for_key(std::string_view canonical) const {
  return ring_.lookup(canonical);
}

// ---------------------------------------------------------------------------
// Reader side

void Router::reader_main(std::size_t index) {
  ReadLoop::Hooks hooks;
  hooks.on_accept = [this](const std::shared_ptr<Conn>&) {
    accepted_connections_.fetch_add(1, std::memory_order_relaxed);
  };
  hooks.on_frame = [this](const std::shared_ptr<Conn>& conn,
                          std::string&& frame) {
    admit(conn, std::move(frame));
  };
  hooks.on_frame_error = [this](const std::shared_ptr<Conn>& conn,
                                const char* what) {
    bad_requests_.fetch_add(1, std::memory_order_relaxed);
    metrics().bad_requests.add();
    conn->try_send_frame(error_payload("bad_request", what));
    conn->close_socket();
  };
  hooks.on_read_timeout = [this](const std::shared_ptr<Conn>& conn) {
    read_timeouts_.fetch_add(1, std::memory_order_relaxed);
    conn->try_send_frame(error_payload(
        "read_timeout", "no complete frame within the read deadline"));
    conn->close_socket();
  };
  hooks.tick = [this](ReadLoop& loop) {
    if (!draining()) return false;
    loop.stop_accepting();
    // Exit once admitted work is fully drained; queued jobs count in
    // in_flight_, so 0 means the proxy pool is idle too.
    return in_flight_.load(std::memory_order_acquire) == 0;
  };

  ReadLoop loop(
      ReadLoopOptions{options_.max_frame_bytes, options_.read_deadline_ms, 50},
      std::move(hooks));
  std::vector<int> listeners;
  if (unix_listener_fd_ >= 0) listeners.push_back(unix_listener_fd_);
  if (tcp_listener_fd_ >= 0) listeners.push_back(tcp_listener_fd_);
  // Reader 0 polls the wake pipe; siblings notice drain via the poll cap.
  loop.run(listeners, index == 0 ? wake_pipe_[0] : -1);
}

void Router::admit(const std::shared_ptr<Conn>& conn, std::string&& frame) {
  if (draining()) {
    rejected_shutdown_.fetch_add(1, std::memory_order_relaxed);
    metrics().rejected_shutdown.add();
    conn->try_send_frame(error_payload("shutting_down", "tier is draining"));
    return;
  }
  // Multiple readers admit concurrently: increment first, roll back when
  // over — the bound may transiently overshoot by (readers - 1), never
  // undershoot.
  if (in_flight_.fetch_add(1, std::memory_order_acq_rel) >=
      options_.queue_capacity) {
    in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    rejected_overload_.fetch_add(1, std::memory_order_relaxed);
    metrics().rejected_overload.add();
    conn->try_send_frame(
        error_payload("overload", "request queue full (capacity " +
                                      std::to_string(options_.queue_capacity) +
                                      "); retry later"));
    return;
  }
  requests_.fetch_add(1, std::memory_order_relaxed);
  metrics().requests.add();
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    queue_.push_back(ProxyJob{conn, std::move(frame), obs::now_ns()});
  }
  queue_cv_.notify_one();
}

// ---------------------------------------------------------------------------
// Proxy side

void Router::proxy_main() {
  while (true) {
    ProxyJob job;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock,
                     [this] { return proxy_stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // proxy_stop_ and fully drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    execute(std::move(job));
  }
}

void Router::execute(ProxyJob job) {
  // Mirror of Server::execute's contract: every path answers the client
  // and reaches the in_flight_ decrement.
  const auto finish = [this](const std::shared_ptr<Conn>& conn,
                             std::string_view payload) {
    conn->send_frame(payload, options_.max_frame_bytes);
    completed_.fetch_add(1, std::memory_order_relaxed);
    metrics().completed.add();
  };
  try {
    Json request;
    try {
      request = Json::parse(job.frame);
      if (!request.is_object())
        throw std::invalid_argument("request must be a JSON object");
    } catch (const std::exception& e) {
      bad_requests_.fetch_add(1, std::memory_order_relaxed);
      metrics().bad_requests.add();
      job.conn->send_frame(error_payload("bad_request", e.what()),
                           options_.max_frame_bytes);
      in_flight_.fetch_sub(1, std::memory_order_acq_rel);
      return;
    }

    const double deadline_ms =
        request.number_or("deadline_ms", options_.default_deadline_ms);
    if (deadline_ms > 0.0) {
      const double waited_ms =
          static_cast<double>(obs::now_ns() - job.arrival_ns) * 1e-6;
      if (waited_ms > deadline_ms) {
        job.conn->send_frame(
            error_payload("deadline",
                          "deadline of " + std::to_string(deadline_ms) +
                              " ms expired while queued (waited " +
                              std::to_string(waited_ms) + " ms)"),
            options_.max_frame_bytes);
        in_flight_.fetch_sub(1, std::memory_order_acq_rel);
        return;
      }
    }

    const std::string op = request.string_or("op", "");
    if (op == "ping") {
      JsonObject pong;
      pong.emplace("pong", Json(true));
      finish(job.conn, ok_payload(false, Json(std::move(pong)).dump()));
    } else if (op == "stats") {
      finish(job.conn, ok_payload(false, stats_json()));
    } else if (op == "shutdown") {
      JsonObject result;
      result.emplace("draining", Json(true));
      finish(job.conn, ok_payload(false, Json(std::move(result)).dump()));
      in_flight_.fetch_sub(1, std::memory_order_acq_rel);
      shutdown();
      return;
    } else if (op == "rolling_restart") {
      const std::uint64_t before =
          journal_replayed_.load(std::memory_order_relaxed);
      const std::uint64_t restarted = rolling_restart();
      JsonObject result;
      result.emplace("restarted", Json(restarted));
      result.emplace(
          "replayed",
          Json(journal_replayed_.load(std::memory_order_relaxed) - before));
      finish(job.conn, ok_payload(false, Json(std::move(result)).dump()));
    } else if (op == "warm") {
      bad_requests_.fetch_add(1, std::memory_order_relaxed);
      metrics().bad_requests.add();
      job.conn->send_frame(
          error_payload("bad_request",
                        "warm is tier-internal (router -> worker only)"),
          options_.max_frame_bytes);
    } else if (op == "sleep") {
      finish(job.conn, forward_any(job.frame));
    } else if (op == "predict" || op == "simulate" || op == "inject" ||
               op == "dse" || op == "search") {
      std::string key;
      try {
        key = canonical_key(request);
      } catch (const std::exception& e) {
        bad_requests_.fetch_add(1, std::memory_order_relaxed);
        metrics().bad_requests.add();
        job.conn->send_frame(error_payload("bad_request", e.what()),
                             options_.max_frame_bytes);
        in_flight_.fetch_sub(1, std::memory_order_acq_rel);
        return;
      }
      finish(job.conn, forward_keyed(key, job.frame));
      metrics().proxy_seconds.observe(
          static_cast<double>(obs::now_ns() - job.arrival_ns) * 1e-9);
    } else {
      bad_requests_.fetch_add(1, std::memory_order_relaxed);
      metrics().bad_requests.add();
      job.conn->send_frame(
          error_payload(
              "bad_request",
              op.empty() ? std::string("missing \"op\" field")
                         : "unknown op '" + op +
                               "' (valid: ping, stats, predict, simulate, "
                               "inject, dse, search, sleep, "
                               "rolling_restart, shutdown)"),
          options_.max_frame_bytes);
    }
  } catch (const std::exception& e) {
    job.conn->send_frame(error_payload("internal", e.what()),
                         options_.max_frame_bytes);
  } catch (...) {
    job.conn->send_frame(error_payload("internal", "unknown error"),
                         options_.max_frame_bytes);
  }
  in_flight_.fetch_sub(1, std::memory_order_acq_rel);
}

std::string Router::forward_keyed(const std::string& key,
                                  const std::string& frame) {
  // One proxied round trip per distinct in-flight canonical key: followers
  // share the leader's reply bytes (the worker-side cache makes later
  // repeats hits anyway; this absorbs the concurrent burst).
  bool leader = false;
  const auto payload = single_flight_.run(
      key,
      [this, &key, &frame]() -> SingleFlight::Result {
        return std::make_shared<const std::string>(
            proxy_round_trip(ring_.lookup(key), frame,
                             /*journal_ok=*/true, key));
      },
      &leader);
  if (!leader) {
    coalesced_.fetch_add(1, std::memory_order_relaxed);
    metrics().coalesced.add();
  }
  return *payload;
}

std::string Router::forward_any(const std::string& frame) {
  // Uncacheable ops have no shard affinity: round-robin over healthy
  // workers.
  const std::size_t n = slots_.size();
  const std::size_t start = static_cast<std::size_t>(
      round_robin_.fetch_add(1, std::memory_order_relaxed));
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t index = (start + i) % n;
    if (!slots_[index]->healthy.load(std::memory_order_acquire)) continue;
    return proxy_round_trip(index, frame, /*journal_ok=*/false, {});
  }
  shed_degraded_.fetch_add(1, std::memory_order_relaxed);
  metrics().shed_degraded.add();
  return error_payload("overload", "no healthy worker; retry later");
}

std::string Router::proxy_round_trip(std::size_t index,
                                     const std::string& frame, bool journal_ok,
                                     const std::string& key) {
  Slot& slot = *slots_[index];
  for (int attempt = 0; attempt < 2; ++attempt) {
    if (!slot.healthy.load(std::memory_order_acquire)) break;
    try {
      Client link = [&]() -> Client {
        if (attempt == 0) {
          std::lock_guard<std::mutex> lock(slot.pool_mutex);
          if (!slot.idle.empty()) {
            Client pooled = std::move(slot.idle.back());
            slot.idle.pop_back();
            return pooled;
          }
        }
        // Retry always dials fresh: the pooled fd may predate a worker
        // restart.
        return Client::connect_unix(slot.spec.socket_path,
                                    options_.worker_timeout_s);
      }();
      std::string reply = link.exchange(frame, options_.max_frame_bytes);
      {
        std::lock_guard<std::mutex> lock(slot.pool_mutex);
        if (slot.healthy.load(std::memory_order_acquire) &&
            slot.idle.size() < kMaxPooledLinks)
          slot.idle.push_back(std::move(link));
      }
      routed_.fetch_add(1, std::memory_order_relaxed);
      metrics().routed.add();
      if (error_code(reply) == "shutting_down") {
        // The worker is draining under us (rolling restart): shed cleanly;
        // the client retries and lands on the respawned shard.
        shed_degraded_.fetch_add(1, std::memory_order_relaxed);
        metrics().shed_degraded.add();
        return error_payload("overload", "worker shard restarting; retry");
      }
      if (journal_ok && !key.empty())
        if (const auto bytes = extract_result_bytes(reply))
          journal_.record(key, *bytes);
      return reply;
    } catch (const std::exception&) {
      if (attempt == 0) {
        retries_.fetch_add(1, std::memory_order_relaxed);
        metrics().retries.add();
        continue;
      }
      mark_degraded(index);
    }
  }
  shed_degraded_.fetch_add(1, std::memory_order_relaxed);
  metrics().shed_degraded.add();
  return error_payload("overload", "worker shard degraded; retry later");
}

// ---------------------------------------------------------------------------
// Supervision

void Router::mark_degraded(std::size_t index) {
  Slot& slot = *slots_[index];
  if (slot.healthy.exchange(false, std::memory_order_acq_rel))
    slot.drop_pool();
  supervisor_cv_.notify_all();
}

void Router::supervise() {
  while (true) {
    {
      std::unique_lock<std::mutex> lock(supervisor_mutex_);
      supervisor_cv_.wait_for(
          lock,
          std::chrono::duration<double, std::milli>(
              options_.health_interval_ms),
          [this] { return supervisor_stop_; });
      if (supervisor_stop_) return;
    }
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (stopping_.load(std::memory_order_acquire)) return;
      Slot& slot = *slots_[i];
      if (slot.restarting.load(std::memory_order_acquire)) continue;
      // Reap a spawned worker that died (crash, kill -9): its exit is the
      // strongest health signal and frees the zombie immediately.
      pid_t pid = slot.pid.load(std::memory_order_acquire);
      if (pid > 0) {
        int status = 0;
        if (::waitpid(pid, &status, WNOHANG) == pid) {
          slot.pid.compare_exchange_strong(pid, -1,
                                           std::memory_order_acq_rel);
          mark_degraded(i);
        }
      }
      if (!slot.healthy.load(std::memory_order_acquire)) {
        revive(i);
      } else if (!ping_worker(slot)) {
        mark_degraded(i);
        revive(i);
      }
    }
  }
}

bool Router::ping_worker(const Slot& slot) {
  try {
    Client probe = Client::connect_unix(slot.spec.socket_path, 2.0);
    const std::string reply =
        probe.exchange("{\"op\":\"ping\"}", options_.max_frame_bytes);
    return extract_result_bytes(reply).has_value();
  } catch (const std::exception&) {
    return false;
  }
}

void Router::revive(std::size_t index) {
  Slot& slot = *slots_[index];
  std::unique_lock<std::mutex> lifecycle(slot.lifecycle_mutex,
                                         std::try_to_lock);
  if (!lifecycle.owns_lock()) return;  // another thread is already on it
  if (stopping_.load(std::memory_order_acquire)) return;
  if (!bring_up(slot, index)) return;
  slot.healthy.store(true, std::memory_order_release);
}

bool Router::bring_up(Slot& slot, std::size_t index) {
  if (!slot.spec.spawn_argv.empty()) {
    // Kill any previous incarnation first: two workers must never race for
    // one shard socket.
    const pid_t old = slot.pid.exchange(-1, std::memory_order_acq_rel);
    if (old > 0) {
      ::kill(old, SIGKILL);
      ::waitpid(old, nullptr, 0);
    }
    pid_t pid = -1;
    try {
      pid = spawn_process(slot.spec.spawn_argv, slot.spec.spawn_env);
    } catch (const std::exception&) {
      return false;  // spawn failed; the next supervisor tick retries
    }
    slot.pid.store(pid, std::memory_order_release);
    if (!wait_ready(slot)) return false;
    respawns_.fetch_add(1, std::memory_order_relaxed);
    metrics().respawns.add();
  } else if (!ping_worker(slot)) {
    return false;  // externally managed and still down
  }
  const std::size_t replayed = warm_worker(slot, index);
  journal_replayed_.fetch_add(replayed, std::memory_order_relaxed);
  metrics().journal_replayed.add(replayed);
  return true;
}

bool Router::wait_ready(Slot& slot) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(options_.ready_timeout_s);
  while (!stopping_.load(std::memory_order_acquire)) {
    const pid_t pid = slot.pid.load(std::memory_order_acquire);
    if (pid > 0) {
      int status = 0;
      if (::waitpid(pid, &status, WNOHANG) == pid) {
        slot.pid.store(-1, std::memory_order_release);
        return false;  // died during startup (bad registry, busy socket)
      }
    }
    if (ping_worker(slot)) return true;
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return false;
}

std::size_t Router::warm_worker(Slot& slot, std::size_t index) {
  const std::vector<WarmJournal::Entry> entries = journal_.snapshot();
  if (entries.empty()) return 0;
  std::size_t replayed = 0;
  JsonArray batch;
  std::size_t batch_bytes = 0;
  const std::size_t budget = options_.max_frame_bytes / 2;

  const auto flush = [&]() -> bool {
    if (batch.empty()) return true;
    const std::size_t count = batch.size();
    JsonObject request;
    request.emplace("op", Json(std::string("warm")));
    request.emplace("entries", Json(std::move(batch)));
    batch = JsonArray{};
    batch_bytes = 0;
    try {
      Client link = Client::connect_unix(slot.spec.socket_path,
                                         options_.worker_timeout_s);
      const std::string reply = link.exchange(
          Json(std::move(request)).dump(), options_.max_frame_bytes);
      if (!extract_result_bytes(reply).has_value()) return false;
      replayed += count;
      return true;
    } catch (const std::exception&) {
      return false;  // cold shard is degraded service, not an error
    }
  };

  for (const WarmJournal::Entry& entry : entries) {
    if (ring_.lookup(entry.key) != index) continue;
    const std::size_t approx = entry.key.size() + entry.result.size() + 32;
    if (!batch.empty() && batch_bytes + approx > budget && !flush())
      return replayed;
    JsonObject obj;
    obj.emplace("key", Json(entry.key));
    obj.emplace("result", Json(entry.result));
    batch.push_back(Json(std::move(obj)));
    batch_bytes += approx;
  }
  flush();
  return replayed;
}

std::uint64_t Router::rolling_restart() {
  std::lock_guard<std::mutex> rolling(rolling_mutex_);
  std::uint64_t restarted = 0;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (stopping_.load(std::memory_order_acquire)) break;
    Slot& slot = *slots_[i];
    if (slot.spec.spawn_argv.empty())
      continue;  // externally managed: nothing to restart
    slot.restarting.store(true, std::memory_order_release);
    {
      std::lock_guard<std::mutex> lifecycle(slot.lifecycle_mutex);
      // Degrade first: new keys for this shard shed cleanly while the old
      // worker drains its in-flight requests.
      if (slot.healthy.exchange(false, std::memory_order_acq_rel))
        slot.drop_pool();
      const pid_t old = slot.pid.exchange(-1, std::memory_order_acq_rel);
      if (old > 0) {
        ::kill(old, SIGTERM);  // graceful: drain, answer, exit
        if (!wait_exit(old, options_.worker_grace_s)) {
          ::kill(old, SIGKILL);
          ::waitpid(old, nullptr, 0);
        }
      }
      if (bring_up(slot, i)) {
        slot.healthy.store(true, std::memory_order_release);
        ++restarted;
      }
    }
    slot.restarting.store(false, std::memory_order_release);
  }
  rolling_restarts_.fetch_add(1, std::memory_order_relaxed);
  return restarted;
}

// ---------------------------------------------------------------------------
// Teardown

void Router::stop_workers() {
  // SIGTERM everyone first (they drain concurrently), then collect.
  for (const auto& slot : slots_) {
    const pid_t pid = slot->pid.load(std::memory_order_acquire);
    if (pid > 0) ::kill(pid, SIGTERM);
  }
  for (const auto& slot : slots_) {
    const pid_t pid = slot->pid.exchange(-1, std::memory_order_acq_rel);
    if (pid <= 0) continue;
    if (!wait_exit(pid, options_.worker_grace_s)) {
      ::kill(pid, SIGKILL);
      ::waitpid(pid, nullptr, 0);
    }
    if (!slot->spec.socket_path.empty())
      ::unlink(slot->spec.socket_path.c_str());
  }
}

void Router::closer_main() {
  for (std::thread& reader : reader_threads_) reader.join();
  // Readers exited: draining_ is set and in_flight_ hit 0, so the queue is
  // empty and every admitted request has been answered.
  stopping_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(supervisor_mutex_);
    supervisor_stop_ = true;
  }
  supervisor_cv_.notify_all();
  supervisor_thread_.join();
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    proxy_stop_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& proxy : proxy_threads_) proxy.join();

  stop_workers();
  for (const auto& slot : slots_) slot->drop_pool();

  for (int* fd : {&unix_listener_fd_, &tcp_listener_fd_}) {
    if (*fd >= 0) ::close(*fd);
    *fd = -1;
  }
  if (!options_.unix_socket_path.empty())
    ::unlink(options_.unix_socket_path.c_str());

  {
    std::lock_guard<std::mutex> lock(stop_mutex_);
    stopped_.store(true, std::memory_order_release);
  }
  stop_cv_.notify_all();
}

// ---------------------------------------------------------------------------
// Stats

std::string Router::stats_json() {
  const Stats s = stats();
  JsonObject obj;
  obj.emplace("role", Json(std::string("router")));
  obj.emplace("workers", Json(static_cast<std::uint64_t>(slots_.size())));
  obj.emplace("readers",
              Json(static_cast<std::uint64_t>(options_.readers)));
  obj.emplace("accepted_connections", Json(s.accepted_connections));
  obj.emplace("requests", Json(s.requests));
  obj.emplace("completed", Json(s.completed));
  obj.emplace("rejected_overload", Json(s.rejected_overload));
  obj.emplace("rejected_shutdown", Json(s.rejected_shutdown));
  obj.emplace("shed_degraded", Json(s.shed_degraded));
  obj.emplace("bad_requests", Json(s.bad_requests));
  obj.emplace("coalesced", Json(s.coalesced));
  obj.emplace("routed", Json(s.routed));
  obj.emplace("retries", Json(s.retries));
  obj.emplace("respawns", Json(s.respawns));
  obj.emplace("rolling_restarts", Json(s.rolling_restarts));
  obj.emplace("journal_replayed", Json(s.journal_replayed));
  obj.emplace("read_timeouts", Json(s.read_timeouts));
  obj.emplace("in_flight", Json(in_flight_.load(std::memory_order_relaxed)));
  obj.emplace("queue_capacity", Json(options_.queue_capacity));
  JsonObject journal;
  journal.emplace("entries",
                  Json(static_cast<std::uint64_t>(journal_.entries())));
  journal.emplace("bytes", Json(static_cast<std::uint64_t>(journal_.bytes())));
  journal.emplace("evictions", Json(journal_.evictions()));
  obj.emplace("journal", Json(std::move(journal)));

  JsonArray workers;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    const Slot& slot = *slots_[i];
    JsonObject w;
    w.emplace("index", Json(static_cast<std::uint64_t>(i)));
    w.emplace("socket", Json(slot.spec.socket_path));
    w.emplace("healthy",
              Json(slot.healthy.load(std::memory_order_acquire)));
    w.emplace("spawned", Json(!slot.spec.spawn_argv.empty()));
    w.emplace("pid", Json(static_cast<std::int64_t>(
                         slot.pid.load(std::memory_order_acquire))));
    // Live per-worker stats, best effort: a shard that cannot answer in
    // time reports null.
    Json worker_stats;
    if (slot.healthy.load(std::memory_order_acquire)) {
      try {
        Client probe = Client::connect_unix(slot.spec.socket_path, 2.0);
        const std::string reply =
            probe.exchange("{\"op\":\"stats\"}", options_.max_frame_bytes);
        if (const auto bytes = extract_result_bytes(reply))
          worker_stats = Json::parse(std::string(*bytes));
      } catch (const std::exception&) {
      }
    }
    w.emplace("stats", std::move(worker_stats));
    workers.push_back(Json(std::move(w)));
  }
  obj.emplace("worker_stats", Json(std::move(workers)));
  return Json(std::move(obj)).dump();
}

Router::Stats Router::stats() const {
  Stats s;
  s.accepted_connections =
      accepted_connections_.load(std::memory_order_relaxed);
  s.requests = requests_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.rejected_overload = rejected_overload_.load(std::memory_order_relaxed);
  s.rejected_shutdown = rejected_shutdown_.load(std::memory_order_relaxed);
  s.shed_degraded = shed_degraded_.load(std::memory_order_relaxed);
  s.bad_requests = bad_requests_.load(std::memory_order_relaxed);
  s.coalesced = coalesced_.load(std::memory_order_relaxed);
  s.routed = routed_.load(std::memory_order_relaxed);
  s.retries = retries_.load(std::memory_order_relaxed);
  s.respawns = respawns_.load(std::memory_order_relaxed);
  s.rolling_restarts = rolling_restarts_.load(std::memory_order_relaxed);
  s.journal_replayed = journal_replayed_.load(std::memory_order_relaxed);
  s.read_timeouts = read_timeouts_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace ftbesst::svc
