#include "svc/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace ftbesst::svc {

namespace {

[[noreturn]] void type_error(const char* want) {
  throw std::invalid_argument(std::string("json: value is not ") + want);
}

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    const auto u = static_cast<unsigned char>(c);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (u < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", u);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_number(std::string& out, double d) {
  if (!std::isfinite(d))
    throw std::invalid_argument("json: cannot serialize non-finite number");
  char buf[32];
  const auto r = std::to_chars(buf, buf + sizeof buf, d);
  out.append(buf, r.ptr);
}

class Parser {
 public:
  Parser(std::string_view text, int max_depth)
      : text_(text), max_depth_(max_depth) {}

  Json run() {
    Json v = value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument("json parse error at byte " +
                                std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Json value(int depth) {
    if (depth > max_depth_) fail("nesting too deep");
    skip_ws();
    switch (peek()) {
      case '{': return object(depth);
      case '[': return array(depth);
      case '"': return Json(string());
      case 't':
        if (consume_literal("true")) return Json(true);
        fail("bad literal");
      case 'f':
        if (consume_literal("false")) return Json(false);
        fail("bad literal");
      case 'n':
        if (consume_literal("null")) return Json(nullptr);
        fail("bad literal");
      default: return Json(number());
    }
  }

  Json object(int depth) {
    expect('{');
    JsonObject out;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Json(std::move(out));
    }
    while (true) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      out[std::move(key)] = value(depth + 1);
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return Json(std::move(out));
    }
  }

  Json array(int depth) {
    expect('[');
    JsonArray out;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Json(std::move(out));
    }
    while (true) {
      out.push_back(value(depth + 1));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return Json(std::move(out));
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20)
        fail("raw control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': out += unicode_escape(); break;
        default: fail("bad escape character");
      }
    }
  }

  std::string unicode_escape() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned cp = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      cp <<= 4;
      if (c >= '0' && c <= '9') cp |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') cp |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') cp |= static_cast<unsigned>(c - 'A' + 10);
      else fail("bad \\u escape digit");
    }
    if (cp >= 0xd800 && cp <= 0xdfff)
      fail("surrogate \\u escapes are not supported");
    // Encode the BMP code point as UTF-8.
    std::string out;
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xc0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3f));
    } else {
      out += static_cast<char>(0xe0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
      out += static_cast<char>(0x80 | (cp & 0x3f));
    }
    return out;
  }

  double number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    // JSON forbids leading zeros ("01"), which from_chars would accept.
    if (pos_ + 1 < text_.size() && text_[pos_] == '0' &&
        text_[pos_ + 1] >= '0' && text_[pos_ + 1] <= '9')
      fail("bad number (leading zero)");
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-')
        ++pos_;
      else
        break;
    }
    double out = 0.0;
    const auto r =
        std::from_chars(text_.data() + start, text_.data() + pos_, out);
    if (r.ec != std::errc{} || r.ptr != text_.data() + pos_ || pos_ == start) {
      pos_ = start;
      fail("bad number");
    }
    if (!std::isfinite(out)) {
      pos_ = start;
      fail("number out of range");
    }
    return out;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int max_depth_;
};

}  // namespace

Json::Json(double d) : value_(d) {
  if (!std::isfinite(d))
    throw std::invalid_argument("json: non-finite number");
}

Json Json::parse(std::string_view text, int max_depth) {
  return Parser(text, max_depth).run();
}

void Json::dump_to(std::string& out) const {
  if (is_null()) {
    out += "null";
  } else if (is_bool()) {
    out += std::get<bool>(value_) ? "true" : "false";
  } else if (is_number()) {
    append_number(out, std::get<double>(value_));
  } else if (is_string()) {
    append_escaped(out, std::get<std::string>(value_));
  } else if (is_array()) {
    out += '[';
    bool first = true;
    for (const Json& v : std::get<JsonArray>(value_)) {
      if (!first) out += ',';
      first = false;
      v.dump_to(out);
    }
    out += ']';
  } else {
    out += '{';
    bool first = true;
    for (const auto& [key, v] : std::get<JsonObject>(value_)) {
      if (!first) out += ',';
      first = false;
      append_escaped(out, key);
      out += ':';
      v.dump_to(out);
    }
    out += '}';
  }
}

std::string Json::dump() const {
  std::string out;
  dump_to(out);
  return out;
}

bool Json::as_bool() const {
  if (!is_bool()) type_error("a boolean");
  return std::get<bool>(value_);
}

double Json::as_number() const {
  if (!is_number()) type_error("a number");
  return std::get<double>(value_);
}

const std::string& Json::as_string() const {
  if (!is_string()) type_error("a string");
  return std::get<std::string>(value_);
}

const JsonArray& Json::as_array() const {
  if (!is_array()) type_error("an array");
  return std::get<JsonArray>(value_);
}

const JsonObject& Json::as_object() const {
  if (!is_object()) type_error("an object");
  return std::get<JsonObject>(value_);
}

JsonArray& Json::as_array() {
  if (!is_array()) type_error("an array");
  return std::get<JsonArray>(value_);
}

JsonObject& Json::as_object() {
  if (!is_object()) type_error("an object");
  return std::get<JsonObject>(value_);
}

const Json* Json::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  const auto& obj = std::get<JsonObject>(value_);
  const auto it = obj.find(std::string(key));
  return it == obj.end() ? nullptr : &it->second;
}

double Json::number_or(std::string_view key, double fallback) const {
  const Json* v = find(key);
  if (!v || v->is_null()) return fallback;
  if (!v->is_number())
    throw std::invalid_argument("json: field '" + std::string(key) +
                                "' must be a number");
  return v->as_number();
}

std::int64_t Json::int_or(std::string_view key, std::int64_t fallback) const {
  const double d = number_or(key, static_cast<double>(fallback));
  // Casting an out-of-range double to int64 is undefined behavior, so the
  // range check must come first. 2^63 is exactly representable as a
  // double; the open upper bound keeps the cast below in range.
  constexpr double kInt64Bound = 9223372036854775808.0;  // 2^63
  if (!(d >= -kInt64Bound && d < kInt64Bound))
    throw std::invalid_argument("json: field '" + std::string(key) +
                                "' is out of integer range");
  const auto i = static_cast<std::int64_t>(d);
  if (static_cast<double>(i) != d)
    throw std::invalid_argument("json: field '" + std::string(key) +
                                "' must be an integer");
  return i;
}

std::string Json::string_or(std::string_view key,
                            std::string_view fallback) const {
  const Json* v = find(key);
  if (!v || v->is_null()) return std::string(fallback);
  if (!v->is_string())
    throw std::invalid_argument("json: field '" + std::string(key) +
                                "' must be a string");
  return v->as_string();
}

bool Json::bool_or(std::string_view key, bool fallback) const {
  const Json* v = find(key);
  if (!v || v->is_null()) return fallback;
  if (!v->is_bool())
    throw std::invalid_argument("json: field '" + std::string(key) +
                                "' must be a boolean");
  return v->as_bool();
}

}  // namespace ftbesst::svc
