#pragma once
// Sharded, content-addressed result cache for the prediction service.
//
// The service's results are pure functions of the canonical request text
// (engines are bit-identical for a fixed seed regardless of thread count),
// so a request's canonical JSON dump is its identity and the serialized
// result payload can be replayed byte-for-byte. The cache maps
//   canonical request key -> shared_ptr<const std::string>  (result bytes)
// in N independently-locked shards (FNV-1a of the key picks the shard), so
// concurrent lookups from many request-handler tasks never contend on one
// mutex. Each shard keeps an LRU list; the cache enforces a global byte
// budget (split evenly across shards) and an optional TTL.
//
// Hits, misses, evictions, and resident bytes are exported through the
// obs metrics registry (svc.cache.*) and mirrored in local atomics so the
// server's `stats` op works even with obs disabled.
//
// SingleFlight complements the cache: concurrent requests for the same
// missing key are batched into ONE computation — the first arrival (the
// leader) computes, the rest block on a shared future and receive the same
// shared payload. Without it a burst of identical cold requests would
// duplicate an expensive ensemble once per client.

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace ftbesst::svc {

struct CacheConfig {
  std::size_t shards = 8;              ///< clamped to >= 1
  std::size_t max_bytes = 64u << 20;   ///< total budget across shards
  double ttl_seconds = 0.0;            ///< 0 = entries never expire
};

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;  ///< budget evictions + TTL expiries
  std::uint64_t entries = 0;
  std::uint64_t bytes = 0;
};

class ResultCache {
 public:
  explicit ResultCache(CacheConfig config = {});

  /// Lookup; bumps the entry to most-recently-used. Expired entries count
  /// as a miss (and an eviction).
  [[nodiscard]] std::shared_ptr<const std::string> get(std::string_view key);

  /// Insert/overwrite, then evict least-recently-used entries while the
  /// shard is over its budget share. A value larger than the whole shard
  /// budget is simply not retained.
  void put(std::string_view key, std::shared_ptr<const std::string> value);

  [[nodiscard]] CacheStats stats() const;
  void clear();

  [[nodiscard]] const CacheConfig& config() const noexcept { return config_; }

  /// FNV-1a 64-bit — the shard selector, exposed for tests.
  [[nodiscard]] static std::uint64_t hash_key(std::string_view key) noexcept;

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const std::string> value;
    std::uint64_t expires_ns = 0;  ///< 0 = never
    std::size_t bytes = 0;
  };
  struct Shard {
    std::mutex mutex;
    std::list<Entry> lru;  ///< front = most recently used
    std::unordered_map<std::string_view, std::list<Entry>::iterator> index;
    std::size_t bytes = 0;
  };

  Shard& shard_for(std::string_view key);
  void evict_over_budget(Shard& shard);  // caller holds shard.mutex
  void drop_entry(Shard& shard, std::list<Entry>::iterator it);

  CacheConfig config_;
  std::size_t per_shard_budget_;
  std::vector<std::unique_ptr<Shard>> shards_;

  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> entries_{0};
  std::atomic<std::uint64_t> bytes_{0};
};

/// Request batching for identical concurrent misses: `run` executes
/// `compute` for the first caller of a key and hands every concurrent
/// duplicate the same result (or rethrows the leader's exception).
/// `*leader` reports whether this caller did the work — the server counts
/// non-leaders as coalesced requests.
class SingleFlight {
 public:
  using Result = std::shared_ptr<const std::string>;

  Result run(const std::string& key, const std::function<Result()>& compute,
             bool* leader = nullptr);

 private:
  std::mutex mutex_;
  std::unordered_map<std::string, std::shared_future<Result>> inflight_;
};

}  // namespace ftbesst::svc
