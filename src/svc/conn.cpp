#include "svc/conn.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>

#include "obs/obs.hpp"
#include "svc/listen.hpp"

namespace ftbesst::svc {

Conn::~Conn() {
  if (fd >= 0) ::close(fd);
}

void Conn::close_socket() noexcept {
  if (open.exchange(false, std::memory_order_acq_rel))
    ::shutdown(fd, SHUT_RDWR);
}

void Conn::send_frame(std::string_view payload, std::uint32_t max_bytes) {
  std::lock_guard<std::mutex> lock(write_mutex);
  if (!open.load(std::memory_order_acquire)) return;
  try {
    write_frame(fd, payload, max_bytes);
  } catch (const std::exception&) {
    close_socket();  // peer gone mid-write; the loop sweeps it
  }
}

void Conn::try_send_frame(std::string_view payload) {
  std::unique_lock<std::mutex> lock(write_mutex, std::try_to_lock);
  if (!lock.owns_lock()) {
    close_socket();
    return;
  }
  if (!open.load(std::memory_order_acquire)) return;
  unsigned char header[4];
  encode_length(static_cast<std::uint32_t>(payload.size()), header);
  std::string frame(reinterpret_cast<const char*>(header), 4);
  frame += payload;
  const ssize_t n =
      ::send(fd, frame.data(), frame.size(), MSG_DONTWAIT | MSG_NOSIGNAL);
  if (n != static_cast<ssize_t>(frame.size())) close_socket();
}

ReadLoop::ReadLoop(ReadLoopOptions options, Hooks hooks)
    : options_(options), hooks_(std::move(hooks)) {}

void ReadLoop::accept_on(int listener_fd) {
  while (true) {
    const int fd = ::accept(listener_fd, nullptr, nullptr);
    if (fd < 0) {
      // EAGAIN: drained (or a sibling reader won the race for this
      // connection). Transient errors (ECONNABORTED, EMFILE): keep serving.
      return;
    }
    set_cloexec(fd);
    // Connection fds stay *blocking*: the loop issues exactly one read()
    // per POLLIN (never blocks with data pending) and responder tasks want
    // blocking write_full semantics for large responses.
    auto conn = std::make_shared<Conn>(fd);
    accepted_.fetch_add(1, std::memory_order_relaxed);
    if (hooks_.on_accept) hooks_.on_accept(conn);
    conns_.push_back(std::move(conn));
  }
}

void ReadLoop::handle_readable(const std::shared_ptr<Conn>& conn) {
  char buf[64 * 1024];
  const ssize_t n = ::read(conn->fd, buf, sizeof buf);
  if (n == 0) {  // peer closed
    conn->close_socket();
    return;
  }
  if (n < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
    conn->close_socket();
    return;
  }
  conn->buffer.append(buf, static_cast<std::size_t>(n));

  std::string frame;
  while (true) {
    try {
      if (!extract_frame(conn->buffer, frame, options_.max_frame_bytes)) break;
    } catch (const std::exception& e) {
      // Oversized frame announcement: the stream is unrecoverable (we
      // cannot resynchronize), so answer once and drop the connection.
      if (hooks_.on_frame_error)
        hooks_.on_frame_error(conn, e.what());
      else
        conn->close_socket();
      return;
    }
    hooks_.on_frame(conn, std::move(frame));
    if (!conn->open.load(std::memory_order_acquire)) return;
  }
  // Track how long a partial frame has been pending for the deadline sweep.
  if (conn->buffer.empty())
    conn->partial_since_ns = 0;
  else if (conn->partial_since_ns == 0)
    conn->partial_since_ns = obs::now_ns();
}

void ReadLoop::sweep_deadlines() {
  if (options_.read_deadline_ms <= 0.0) return;
  const std::uint64_t now = obs::now_ns();
  const std::uint64_t budget_ns =
      static_cast<std::uint64_t>(options_.read_deadline_ms * 1e6);
  for (const auto& conn : conns_) {
    if (!conn->open.load(std::memory_order_acquire)) continue;
    if (conn->partial_since_ns == 0 || now - conn->partial_since_ns < budget_ns)
      continue;
    read_timeouts_.fetch_add(1, std::memory_order_relaxed);
    if (hooks_.on_read_timeout)
      hooks_.on_read_timeout(conn);
    else
      conn->close_socket();
  }
}

void ReadLoop::run(const std::vector<int>& listener_fds, int wake_fd) {
  std::vector<pollfd> fds;
  while (true) {
    fds.clear();
    std::size_t wake_idx = 0;
    if (wake_fd >= 0) fds.push_back({wake_fd, POLLIN, 0});
    const std::size_t listener_base = fds.size();
    std::size_t listeners_polled = 0;
    if (accepting_.load(std::memory_order_acquire)) {
      for (int fd : listener_fds)
        if (fd >= 0) fds.push_back({fd, POLLIN, 0});
      listeners_polled = fds.size() - listener_base;
    }
    const std::size_t conn_base = fds.size();
    for (const auto& conn : conns_) fds.push_back({conn->fd, POLLIN, 0});

    const int rc =
        ::poll(fds.data(), static_cast<nfds_t>(fds.size()), options_.poll_ms);
    if (rc < 0 && errno != EINTR) break;  // unrecoverable poll failure

    if (rc > 0) {
      if (wake_fd >= 0 && (fds[wake_idx].revents & POLLIN)) {
        char buf[64];
        while (::read(wake_fd, buf, sizeof buf) > 0) {
        }
      }
      for (std::size_t i = 0; i < listeners_polled; ++i)
        if (fds[listener_base + i].revents & POLLIN)
          accept_on(fds[listener_base + i].fd);
      // accept_on() appends to conns_, so only the first fds.size() -
      // conn_base entries have poll results; new arrivals wait a tick.
      const std::size_t polled = fds.size() - conn_base;
      for (std::size_t i = 0; i < polled && i < conns_.size(); ++i) {
        const short revents = fds[conn_base + i].revents;
        if (revents & (POLLIN | POLLHUP | POLLERR)) handle_readable(conns_[i]);
      }
    }

    sweep_deadlines();
    std::erase_if(conns_, [](const std::shared_ptr<Conn>& conn) {
      return !conn->open.load(std::memory_order_acquire);
    });

    if (hooks_.tick(*this)) break;
  }

  for (const auto& conn : conns_) conn->close_socket();
  conns_.clear();
}

}  // namespace ftbesst::svc
