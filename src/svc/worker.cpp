#include "svc/worker.hpp"

#include <spawn.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <system_error>

extern char** environ;

namespace ftbesst::svc {

namespace {

ServerOptions to_server_options(const WorkerOptions& options) {
  ServerOptions server;
  server.unix_socket_path = options.socket_path;
  server.tcp_port = -1;  // tier workers are unix-socket only
  server.queue_capacity = options.queue_capacity;
  server.default_deadline_ms = options.default_deadline_ms;
  server.read_deadline_ms = options.read_deadline_ms;
  server.name = options.name;
  server.cache = options.cache;
  server.max_frame_bytes = options.max_frame_bytes;
  return server;
}

}  // namespace

Worker::Worker(std::shared_ptr<const Registry> registry, WorkerOptions options)
    : server_(std::move(registry), to_server_options(options)) {}

pid_t spawn_process(const std::vector<std::string>& argv,
                    const std::vector<std::string>& extra_env) {
  if (argv.empty()) throw std::invalid_argument("spawn_process: empty argv");

  std::vector<char*> argv_ptrs;
  argv_ptrs.reserve(argv.size() + 1);
  for (const std::string& arg : argv)
    argv_ptrs.push_back(const_cast<char*>(arg.c_str()));
  argv_ptrs.push_back(nullptr);

  // Inherited environment with extra_env overrides (an inherited key also
  // named in extra_env is dropped, so getenv in the child sees the
  // override regardless of lookup order).
  const auto key_of = [](const char* entry) {
    const char* eq = std::strchr(entry, '=');
    return std::string_view(entry,
                            eq ? static_cast<std::size_t>(eq - entry)
                               : std::strlen(entry));
  };
  std::vector<char*> env_ptrs;
  for (char** e = environ; e && *e; ++e) {
    bool overridden = false;
    for (const std::string& extra : extra_env)
      if (key_of(extra.c_str()) == key_of(*e)) {
        overridden = true;
        break;
      }
    if (!overridden) env_ptrs.push_back(*e);
  }
  for (const std::string& extra : extra_env)
    env_ptrs.push_back(const_cast<char*>(extra.c_str()));
  env_ptrs.push_back(nullptr);

  pid_t pid = -1;
  const int rc = ::posix_spawnp(&pid, argv_ptrs[0], nullptr, nullptr,
                                argv_ptrs.data(), env_ptrs.data());
  if (rc != 0)
    throw std::system_error(rc, std::generic_category(),
                            "posix_spawnp(" + argv.front() + ")");
  return pid;
}

}  // namespace ftbesst::svc
