#pragma once
// Length-prefixed framing for the prediction-service protocol.
//
// A frame is a 4-byte big-endian payload length followed by that many
// bytes of UTF-8 JSON. The length prefix lets both sides read messages
// with exactly two read_full() calls and makes partial reads detectable:
// EOF mid-frame is a protocol error, EOF on the boundary between frames is
// a clean disconnect. Frames above `max_bytes` are rejected before any
// allocation so a hostile peer cannot make the server reserve gigabytes.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace ftbesst::svc {

/// Default ceiling on a single frame's payload (16 MiB) — far above any
/// legitimate request or response, far below an allocation-of-death.
inline constexpr std::uint32_t kMaxFrameBytes = 16u << 20;

/// Write one frame. Throws std::system_error on I/O errors and
/// std::length_error if payload exceeds max_bytes.
void write_frame(int fd, std::string_view payload,
                 std::uint32_t max_bytes = kMaxFrameBytes);

/// Read one frame. Returns std::nullopt on a clean EOF (peer closed
/// between frames). Throws std::invalid_argument on an oversized length
/// prefix, std::runtime_error on EOF mid-frame, std::system_error on I/O
/// errors.
[[nodiscard]] std::optional<std::string> read_frame(
    int fd, std::uint32_t max_bytes = kMaxFrameBytes);

/// Frame codec for buffered/non-blocking readers: append whatever bytes
/// arrived to `buffer`; extract_frame() pops one complete frame if the
/// buffer holds one. Used by the server's event loop, which cannot block
/// in read_full per connection.
[[nodiscard]] bool extract_frame(std::string& buffer, std::string& out,
                                 std::uint32_t max_bytes = kMaxFrameBytes);

/// Serialize the 4-byte header for `payload_size` (exposed for tests).
[[nodiscard]] std::uint32_t decode_length(const unsigned char header[4]);
void encode_length(std::uint32_t n, unsigned char header[4]);

// ---- Reply envelopes ------------------------------------------------------
//
// Every reply payload is one of two canonical-JSON envelopes:
//   {"cached":<bool>,"ok":true,"result":<result-json>}
//   {"code":"<machine code>","error":"<message>","ok":false}
// Because canonical JSON sorts keys, both shapes are recognizable from a
// fixed prefix, which lets the router inspect and re-wrap proxied replies
// without parsing (and without perturbing the result bytes).

/// Build the error envelope for a machine-readable code plus message.
[[nodiscard]] std::string error_payload(std::string_view code,
                                        std::string_view message);

/// Build the success envelope around already-serialized result JSON. The
/// result is spliced in as raw text so a cache hit's result bytes are
/// identical to the cold computation's.
[[nodiscard]] std::string ok_payload(bool cached, std::string_view result_json);

/// If `payload` is a success envelope, a view of the raw result bytes
/// (everything after `"result":` minus the closing brace); std::nullopt
/// for error envelopes or foreign payloads. The view aliases `payload`.
[[nodiscard]] std::optional<std::string_view> extract_result_bytes(
    std::string_view payload);

/// If `payload` is an error envelope, the machine code (e.g. "overload");
/// empty for success envelopes or foreign payloads. The view aliases
/// `payload`.
[[nodiscard]] std::string_view error_code(std::string_view payload);

}  // namespace ftbesst::svc
