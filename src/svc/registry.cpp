#include "svc/registry.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "apps/kernels.hpp"
#include "apps/lulesh.hpp"
#include "apps/stencil3d.hpp"
#include "apps/testbed.hpp"
#include "core/engine_bsp.hpp"
#include "core/montecarlo.hpp"
#include "ft/checkpoint_cost.hpp"
#include "inject/campaign.hpp"
#include "model/expr_simd.hpp"
#include "model/serialize.hpp"
#include "net/topology.hpp"
#include "search/search.hpp"
#include "util/stats.hpp"

namespace ftbesst::svc {

namespace {

std::shared_ptr<core::ArchBEO> make_arch(const RegistryOptions& options) {
  auto topo = std::make_shared<net::TwoStageFatTree>(
      options.leaves, options.nodes_per_leaf, options.spines);
  net::CommParams comm;
  comm.bandwidth = options.bandwidth;
  auto arch = std::make_shared<core::ArchBEO>("quartz", topo, comm,
                                              options.ranks_per_node);
  arch->set_fti(options.fti);
  return arch;
}

/// Kernels the serving workloads can reference.
std::vector<std::string> serving_kernels() {
  std::vector<std::string> kernels{apps::kLuleshTimestep};
  for (int level = 1; level <= 4; ++level)
    kernels.push_back(apps::checkpoint_kernel(static_cast<ft::Level>(level)));
  return kernels;
}

std::uint64_t app_checkpoint_bytes(const std::string& app, int size) {
  return app == "lulesh" ? apps::lulesh_checkpoint_bytes(size)
                         : apps::stencil3d_checkpoint_bytes(size);
}

}  // namespace

RestartCostModel::RestartCostModel(std::string app, ft::Level level,
                                   ft::CheckpointCostModel cost)
    : app_(std::move(app)), level_(level), cost_(std::move(cost)) {}

double RestartCostModel::predict(std::span<const double> params) const {
  if (params.size() < 2)
    throw std::invalid_argument(
        "restart model expects {size, ranks} checkpoint params");
  return cost_.restart_cost(
      level_, app_checkpoint_bytes(app_, static_cast<int>(params[0])),
      static_cast<std::int64_t>(params[1]));
}

std::string RestartCostModel::describe() const {
  return "restart_cost(" + app_ + ", L" +
         std::to_string(static_cast<int>(level_)) + ")";
}

Registry::Registry(std::shared_ptr<const core::ArchBEO> arch)
    : arch_(std::move(arch)) {
  if (!arch_) throw std::invalid_argument("Registry: null architecture");
}

Registry Registry::analytic() {
  auto topo = std::make_shared<net::TwoStageFatTree>(4, 4, 2);
  auto arch =
      std::make_shared<core::ArchBEO>("test", topo, net::CommParams{}, 4);
  arch->bind_kernel(apps::kLuleshTimestep,
                    std::make_shared<model::ConstantModel>(0.01));
  arch->bind_kernel(apps::kStencilSweep,
                    std::make_shared<model::ConstantModel>(0.005));
  for (int level = 1; level <= 4; ++level)
    arch->bind_kernel(
        apps::checkpoint_kernel(static_cast<ft::Level>(level)),
        std::make_shared<model::ConstantModel>(0.002 * level));
  return Registry{std::shared_ptr<const core::ArchBEO>(std::move(arch))};
}

std::size_t Registry::save_models(const std::string& dir) const {
  std::filesystem::create_directories(dir);
  std::vector<std::string> kernels = serving_kernels();
  kernels.push_back(apps::kStencilSweep);
  std::size_t written = 0;
  for (const std::string& kernel : kernels) {
    if (!arch_->has_kernel(kernel)) continue;
    const std::string path = dir + "/" + kernel + ".model";
    std::ofstream os(path);
    if (!os) throw std::runtime_error("cannot write model file " + path);
    model::save_model(os, arch_->kernel(kernel));
    if (!os.good())
      throw std::runtime_error("short write on model file " + path);
    ++written;
  }
  return written;
}

Registry Registry::open(const RegistryOptions& options) {
  auto arch = make_arch(options);
  std::vector<core::KernelModelReport> reports;
  if (!options.models_dir.empty()) {
    // Persisted-model path: reload `ftbesst fit` artifacts. The timestep
    // model is mandatory; checkpoint levels and the stencil kernel are
    // bound when present and otherwise rejected per-request.
    bool any = false;
    auto try_load = [&](const std::string& kernel, bool required) {
      const std::string path = options.models_dir + "/" + kernel + ".model";
      std::ifstream is(path);
      if (!is) {
        if (required)
          throw std::invalid_argument("missing model file " + path +
                                      " (run `ftbesst fit` first)");
        return;
      }
      arch->bind_kernel(kernel, model::load_model(is));
      any = true;
    };
    try_load(apps::kLuleshTimestep, true);
    for (int level = 1; level <= 4; ++level)
      try_load(apps::checkpoint_kernel(static_cast<ft::Level>(level)), false);
    try_load(apps::kStencilSweep, false);
    (void)any;
  } else {
    // Calibrate mode: pay the full Model Development phase once, here.
    apps::QuartzTestbed testbed({}, options.fti);
    apps::CampaignSpec spec;
    spec.samples_per_point = options.samples;
    spec.seed = options.seed;
    const auto calibration =
        apps::run_campaign(testbed, spec, serving_kernels());
    model::FitOptions fit;
    fit.seed = options.seed;
    const core::ModelSuite suite = core::develop_models(calibration, fit);
    suite.bind_into(*arch);
    reports = suite.reports;
  }
  Registry registry{std::shared_ptr<const core::ArchBEO>(std::move(arch))};
  registry.reports_ = std::move(reports);
  return registry;
}

namespace {

std::vector<double> number_array(const Json& request, const char* field) {
  const Json* v = request.find(field);
  if (!v)
    throw std::invalid_argument(std::string("request missing '") + field +
                                "'");
  std::vector<double> out;
  for (const Json& x : v->as_array()) out.push_back(x.as_number());
  return out;
}

Json summarize_ensemble(const core::EnsembleResult& ens) {
  JsonObject out;
  out["trials"] = Json(ens.totals.size());
  out["mean"] = Json(ens.total.mean);
  out["stddev"] = Json(ens.total.stddev);
  out["min"] = Json(ens.total.min);
  out["max"] = Json(ens.total.max);
  out["median"] = Json(ens.total.median);
  out["p10"] = Json(util::quantile(ens.totals, 0.1));
  out["p90"] = Json(util::quantile(ens.totals, 0.9));
  out["mean_faults"] = Json(ens.mean_faults);
  out["mean_rollbacks"] = Json(ens.mean_rollbacks);
  out["mean_full_restarts"] = Json(ens.mean_full_restarts);
  out["incomplete_trials"] = Json(ens.incomplete_trials);
  return Json(std::move(out));
}

/// Shared simulate/dse knobs parsed straight off the request object.
struct WorkloadSpec {
  std::string app;
  int timesteps = 200;
  std::size_t trials = 20;
  std::uint64_t seed = 42;
  double mtbf_hours = 0.0;  ///< 0 = no fault injection
  double downtime = 10.0;
};

WorkloadSpec parse_workload(const Json& request) {
  WorkloadSpec spec;
  spec.app = request.string_or("app", "lulesh");
  if (spec.app != "lulesh" && spec.app != "stencil3d")
    throw std::invalid_argument("app must be lulesh|stencil3d, got '" +
                                spec.app + "'");
  spec.timesteps = static_cast<int>(request.int_or("timesteps", 200));
  if (spec.timesteps < 1)
    throw std::invalid_argument("timesteps must be >= 1");
  const std::int64_t trials = request.int_or("trials", 20);
  if (trials < 1 || trials > 100000)
    throw std::invalid_argument("trials must be in 1..100000");
  spec.trials = static_cast<std::size_t>(trials);
  spec.seed = static_cast<std::uint64_t>(request.int_or("seed", 42));
  spec.mtbf_hours = request.number_or("mtbf_hours", 0.0);
  if (spec.mtbf_hours < 0.0)
    throw std::invalid_argument("mtbf_hours must be >= 0");
  spec.downtime = request.number_or("downtime", 10.0);
  return spec;
}

/// Build the AppBEO for one (scenario plan, parameter point). Parameters
/// are {epr, ranks} for LULESH and {nx, ranks} for Stencil3D, matching the
/// calibration convention. Config validate() supplies the clean errors
/// (perfect-cube ranks, FTI divisibility).
core::AppBEO build_app(const std::string& app,
                       const std::vector<ft::PlanEntry>& plan,
                       const ft::FtiConfig& fti, double size_param,
                       double ranks_param, int timesteps) {
  const auto size = static_cast<int>(size_param);
  const auto ranks = static_cast<std::int64_t>(ranks_param);
  if (static_cast<double>(size) != size_param ||
      static_cast<double>(ranks) != ranks_param)
    throw std::invalid_argument("size/ranks parameters must be integers");
  if (app == "lulesh") {
    apps::LuleshConfig cfg;
    cfg.epr = size;
    cfg.ranks = ranks;
    cfg.timesteps = timesteps;
    cfg.plan = plan;
    cfg.fti = fti;
    cfg.validate();
    return apps::build_lulesh_fti(cfg);
  }
  apps::Stencil3dConfig cfg;
  cfg.nx = size;
  cfg.ranks = ranks;
  cfg.sweeps = timesteps;
  cfg.plan = plan;
  cfg.fti = fti;
  cfg.validate();
  return apps::build_stencil3d(cfg);
}

/// Every kernel the request's plans reference must have a bound model —
/// checked up front so the failure is a clean client error rather than a
/// std::out_of_range from inside the engine.
void require_kernels(const core::ArchBEO& arch, const std::string& app,
                     const std::vector<core::Scenario>& scenarios) {
  const std::string timestep_kernel =
      app == "lulesh" ? apps::kLuleshTimestep : apps::kStencilSweep;
  auto require = [&arch](const std::string& kernel) {
    if (!arch.has_kernel(kernel))
      throw std::invalid_argument("no model bound for kernel '" + kernel +
                                  "' in this registry");
  };
  require(timestep_kernel);
  for (const core::Scenario& scenario : scenarios)
    for (const ft::PlanEntry& entry : scenario.plan)
      require(apps::checkpoint_kernel(entry.level));
}

/// Engine options + (when faults are requested) a private ArchBEO copy
/// with the fault process and per-level restart models bound. Restart
/// models are RestartCostModel instances evaluated against each
/// checkpoint's own {size, ranks} params, so one prepared arch is valid
/// for every parameter point of a sweep.
struct PreparedRun {
  core::EngineOptions options;
  std::shared_ptr<const core::ArchBEO> arch;  ///< registry's or the copy
};

PreparedRun prepare_run(const Registry& registry, const WorkloadSpec& spec,
                        const std::vector<core::Scenario>& scenarios) {
  PreparedRun run;
  run.options.seed = spec.seed;
  run.arch = std::shared_ptr<const core::ArchBEO>(
      std::shared_ptr<const core::ArchBEO>{}, &registry.arch());
  if (spec.mtbf_hours <= 0.0) return run;

  run.options.inject_faults = true;
  run.options.downtime_seconds = spec.downtime;
  auto arch = std::make_shared<core::ArchBEO>(registry.arch());
  arch->set_fault_process(ft::FaultProcess(spec.mtbf_hours * 3600.0, 1.0));
  const ft::CheckpointCostModel cost({}, arch->fti());
  for (const core::Scenario& scenario : scenarios)
    for (const ft::PlanEntry& entry : scenario.plan)
      arch->bind_restart(entry.level, std::make_shared<RestartCostModel>(
                                          spec.app, entry.level, cost));
  run.arch = arch;
  return run;
}

Json op_predict(const Registry& registry, const Json& request) {
  const std::string kernel = request.string_or("kernel", "");
  if (kernel.empty())
    throw std::invalid_argument("predict needs a 'kernel' field");
  if (!registry.arch().has_kernel(kernel))
    throw std::invalid_argument("no model bound for kernel '" + kernel + "'");
  const model::PerfModel& model = registry.arch().kernel(kernel);

  // Batch form: "points": [[...], ...] prices the whole sweep through the
  // model's compiled batch path (the SIMD-backed eval_dataset for
  // ExprModel/FeatureModel) — bit-identical to per-point predict, one
  // column-major pass instead of len(points) tree walks.
  if (const Json* points_json = request.find("points")) {
    if (request.find("params"))
      throw std::invalid_argument("predict takes 'params' or 'points', not both");
    std::vector<std::vector<double>> points;
    for (const Json& p : points_json->as_array()) {
      std::vector<double> point;
      for (const Json& x : p.as_array()) point.push_back(x.as_number());
      if (point.empty())
        throw std::invalid_argument("each predict point needs >= 1 parameter");
      if (!points.empty() && point.size() != points.front().size())
        throw std::invalid_argument("predict points must share one arity");
      points.push_back(std::move(point));
    }
    if (points.empty())
      throw std::invalid_argument("predict needs at least one point");
    std::vector<std::string> names;
    for (std::size_t d = 0; d < points.front().size(); ++d)
      names.push_back("p" + std::to_string(d));
    model::Dataset data(std::move(names));
    for (auto& point : points) data.add_row(std::move(point), {0.0});
    std::vector<double> values;
    model.predict_batch(data, values);
    JsonArray out_values;
    for (const double v : values) out_values.push_back(Json(v));
    JsonObject out;
    out["values"] = Json(std::move(out_values));
    out["model"] = Json(model.describe());
    out["backend"] = Json(std::string(model::to_string(model::active_backend())));
    return Json(std::move(out));
  }

  const std::vector<double> params = number_array(request, "params");
  JsonObject out;
  out["value"] = Json(model.predict(params));
  out["model"] = Json(model.describe());
  return Json(std::move(out));
}

Json op_simulate(const Registry& registry, const Json& request) {
  const WorkloadSpec spec = parse_workload(request);
  const std::vector<ft::PlanEntry> plan =
      core::parse_plan(request.string_or("plan", ""));
  const double size = request.number_or(
      spec.app == "lulesh" ? "epr" : "nx", spec.app == "lulesh" ? 15 : 32);
  const double ranks = request.number_or("ranks", 64);

  const std::vector<core::Scenario> scenarios{{"request", plan}};
  require_kernels(registry.arch(), spec.app, scenarios);
  const PreparedRun run = prepare_run(registry, spec, scenarios);
  const core::AppBEO app = build_app(spec.app, plan, run.arch->fti(), size,
                                     ranks, spec.timesteps);
  const core::EnsembleResult ens =
      core::run_ensemble(app, *run.arch, run.options, spec.trials);
  return summarize_ensemble(ens);
}

Json op_inject(const Registry& registry, const Json& request) {
  const WorkloadSpec spec = parse_workload(request);
  if (spec.mtbf_hours <= 0.0)
    throw std::invalid_argument("inject needs mtbf_hours > 0");
  const std::vector<ft::PlanEntry> plan =
      core::parse_plan(request.string_or("plan", ""));
  const double size = request.number_or(
      spec.app == "lulesh" ? "epr" : "nx", spec.app == "lulesh" ? 15 : 32);
  const double ranks = request.number_or("ranks", 64);

  const std::vector<core::Scenario> scenarios{{"request", plan}};
  require_kernels(registry.arch(), spec.app, scenarios);
  const PreparedRun run = prepare_run(registry, spec, scenarios);
  const core::AppBEO app = build_app(spec.app, plan, run.arch->fti(), size,
                                     ranks, spec.timesteps);

  inject::CampaignOptions opt;
  opt.trials = spec.trials;
  opt.engine = run.options;
  opt.use_des = request.int_or("use_des", 1) != 0;
  // Bound the simulation horizon from a clean deterministic run (same
  // formula as verify::build). The DES materializes each node's fault
  // schedule across the whole horizon, so leaving the 1e8-second default
  // in place would sample millions of never-reached faults per trial at
  // service-scale MTBFs.
  core::EngineOptions clean = run.options;
  clean.inject_faults = false;
  clean.monte_carlo = false;
  const double clean_estimate =
      core::run_bsp(app, *run.arch, clean).total_seconds;
  opt.engine.max_sim_seconds =
      1000.0 * (clean_estimate + 10.0 * spec.downtime + 1.0);
  const inject::CampaignResult res =
      inject::run_campaign(app, *run.arch, opt);

  JsonObject out;
  out["trials"] = Json(res.totals.size());
  out["mean"] = Json(res.total.mean);
  out["stddev"] = Json(res.total.stddev);
  out["min"] = Json(res.total.min);
  out["max"] = Json(res.total.max);
  out["median"] = Json(res.total.median);
  out["p10"] = Json(res.p10);
  out["p90"] = Json(res.p90);
  out["mean_faults"] = Json(res.mean_faults);
  out["mean_rollbacks"] = Json(res.mean_rollbacks);
  out["mean_full_restarts"] = Json(res.mean_full_restarts);
  out["mean_lost_work"] = Json(res.mean_lost_work);
  JsonArray recoveries;
  for (const double r : res.mean_recoveries_by_level)
    recoveries.push_back(Json(r));
  out["mean_recoveries_by_level"] = Json(std::move(recoveries));
  out["incomplete_trials"] = Json(res.incomplete_trials);
  out["fault_records"] = Json(res.fault_log.size());
  return Json(std::move(out));
}

std::vector<core::Scenario> parse_scenarios(const Json& request,
                                            const char* op_name) {
  const Json* scenarios_json = request.find("scenarios");
  if (!scenarios_json)
    throw std::invalid_argument(std::string(op_name) +
                                " needs a 'scenarios' array");
  std::vector<core::Scenario> scenarios;
  for (const Json& s : scenarios_json->as_array()) {
    core::Scenario scenario;
    scenario.name = s.string_or("name", "");
    if (scenario.name.empty())
      throw std::invalid_argument("each scenario needs a 'name'");
    scenario.plan = core::parse_plan(s.string_or("plan", ""));
    scenarios.push_back(std::move(scenario));
  }
  if (scenarios.empty())
    throw std::invalid_argument(std::string(op_name) +
                                " needs at least one scenario");
  return scenarios;
}

/// Parameter points: explicit [[size, ranks], ...] or the cartesian grid
/// of "eprs"/"nxs" x "ranks" (Table II style sweep-grid requests).
std::vector<std::vector<double>> parse_points(const Json& request,
                                              const WorkloadSpec& spec,
                                              const char* op_name) {
  std::vector<std::vector<double>> points;
  if (request.find("points")) {
    for (const Json& p : request.find("points")->as_array()) {
      std::vector<double> point;
      for (const Json& x : p.as_array()) point.push_back(x.as_number());
      if (point.size() != 2)
        throw std::invalid_argument(std::string("each ") + op_name +
                                    " point must be [size, ranks]");
      points.push_back(std::move(point));
    }
  } else {
    const char* size_field = spec.app == "lulesh" ? "eprs" : "nxs";
    const std::vector<double> sizes = number_array(request, size_field);
    const std::vector<double> ranks = number_array(request, "ranks");
    for (const double s : sizes)
      for (const double r : ranks) points.push_back({s, r});
  }
  if (points.empty())
    throw std::invalid_argument(std::string(op_name) +
                                " needs at least one parameter point");
  return points;
}

/// The dse response body for a list of priced cells. The search op reuses
/// this for the single-cell entries it writes back to the cache, so those
/// bytes are identical to what the matching one-cell dse request would
/// compute.
Json dse_response(const std::vector<core::DsePoint>& points_result,
                  std::size_t scenario_count, std::size_t trials) {
  JsonArray out_points;
  for (const core::DsePoint& p : points_result) {
    JsonObject cell;
    cell["scenario"] = Json(p.scenario);
    JsonArray params;
    for (const double v : p.params) params.push_back(Json(v));
    cell["params"] = Json(std::move(params));
    cell["ensemble"] = summarize_ensemble(p.ensemble);
    out_points.push_back(Json(std::move(cell)));
  }
  JsonObject out;
  out["points"] = Json(std::move(out_points));
  out["scenarios"] = Json(scenario_count);
  out["trials"] = Json(trials);
  return Json(std::move(out));
}

/// Ensemble statistic used for top_k ranking.
double objective_value(const core::EnsembleResult& ens,
                       const std::string& objective) {
  if (objective == "mean") return ens.total.mean;
  if (objective == "median") return ens.total.median;
  if (objective == "p90") return util::quantile(ens.totals, 0.9);
  if (objective == "min") return ens.total.min;
  if (objective == "max") return ens.total.max;
  throw std::invalid_argument(
      "objective must be mean|median|p90|min|max, got '" + objective + "'");
}

Json op_dse(const Registry& registry, const Json& request) {
  const WorkloadSpec spec = parse_workload(request);
  const std::vector<core::Scenario> scenarios =
      parse_scenarios(request, "dse");
  const std::vector<std::vector<double>> points =
      parse_points(request, spec, "dse");
  if (points.size() * scenarios.size() > 10000)
    throw std::invalid_argument("dse sweep too large (> 10000 points)");
  const std::int64_t top_k = request.int_or("top_k", 0);
  if (top_k < 0) throw std::invalid_argument("top_k must be >= 0");
  const std::int64_t threads = request.int_or("threads", 0);
  if (threads < 0) throw std::invalid_argument("threads must be >= 0");
  const std::string objective = request.string_or("objective", "mean");
  if (objective != "mean" || request.find("objective")) {
    // Validate eagerly, before paying for the sweep.
    core::EnsembleResult probe;
    probe.totals = {0.0};
    (void)objective_value(probe, objective);
  }

  require_kernels(registry.arch(), spec.app, scenarios);
  const PreparedRun run = prepare_run(registry, spec, scenarios);
  // Validate every point eagerly so a bad cell fails the whole request with
  // a clean message instead of throwing inside a pool task mid-sweep.
  for (const auto& point : points)
    (void)build_app(spec.app, {}, run.arch->fti(), point[0], point[1], 1);

  const std::string app_name = spec.app;
  const ft::FtiConfig fti = run.arch->fti();
  const int timesteps = spec.timesteps;
  auto points_result = core::run_dse(
      scenarios, points,
      [&app_name, &fti, timesteps](const core::Scenario& scenario,
                                   const std::vector<double>& params) {
        return build_app(app_name, scenario.plan, fti, params[0], params[1],
                         timesteps);
      },
      *run.arch, run.options, spec.trials, static_cast<unsigned>(threads));

  if (top_k == 0) return dse_response(points_result, scenarios.size(), spec.trials);

  // Best-k filter: rank by the chosen ensemble statistic, ties broken by
  // grid (submission) order so the result is byte-identical at any thread
  // count, then ship only those cells — in rank order.
  std::vector<std::size_t> order(points_result.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::vector<double> values(points_result.size());
  for (std::size_t i = 0; i < points_result.size(); ++i)
    values[i] = objective_value(points_result[i].ensemble, objective);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (values[a] != values[b]) return values[a] < values[b];
    return a < b;
  });
  const std::size_t keep =
      std::min(points_result.size(), static_cast<std::size_t>(top_k));
  std::vector<core::DsePoint> best(keep);
  for (std::size_t i = 0; i < keep; ++i)
    best[i] = std::move(points_result[order[i]]);
  Json out = dse_response(best, scenarios.size(), spec.trials);
  out.as_object()["top_k"] = Json(keep);
  out.as_object()["objective"] = Json(objective);
  return out;
}

/// The canonical cache key of the one-cell dse request matching grid cell
/// `flat` of a search. Every workload field is materialized explicitly
/// (no omitted defaults) so the key is a pure function of the search
/// space, and the cell seed is offset by the flat index exactly as
/// run_dse's per-point seed derivation would do one level deeper — which
/// makes the stored single-cell response bit-identical to the matching
/// cell of the exhaustive sweep.
std::string cell_dse_key(const WorkloadSpec& spec,
                         const std::vector<core::Scenario>& scenarios,
                         const std::vector<std::vector<double>>& points,
                         std::size_t flat) {
  const core::Scenario& scenario = scenarios[flat / points.size()];
  const std::vector<double>& point = points[flat % points.size()];
  JsonObject req;
  req["op"] = Json(std::string("dse"));
  req["app"] = Json(spec.app);
  req["timesteps"] = Json(spec.timesteps);
  req["trials"] = Json(spec.trials);
  req["mtbf_hours"] = Json(spec.mtbf_hours);
  req["downtime"] = Json(spec.downtime);
  req["seed"] = Json(static_cast<double>(
      spec.seed + 0x9e37 * static_cast<std::uint64_t>(flat)));
  JsonObject scen;
  scen["name"] = Json(scenario.name);
  scen["plan"] = Json(core::format_plan(scenario.plan));
  JsonArray scens;
  scens.push_back(Json(std::move(scen)));
  req["scenarios"] = Json(std::move(scens));
  JsonArray coords;
  for (const double v : point) coords.push_back(Json(v));
  JsonArray pts;
  pts.push_back(Json(std::move(coords)));
  req["points"] = Json(std::move(pts));
  return canonical_key(Json(std::move(req)));
}

search::Method parse_method(const std::string& text) {
  if (text == "auto") return search::Method::kAuto;
  if (text == "gp") return search::Method::kGp;
  if (text == "bandit") return search::Method::kBandit;
  throw std::invalid_argument("method must be auto|gp|bandit, got '" + text +
                              "'");
}

search::Mode parse_mode(const std::string& text) {
  if (text == "single") return search::Mode::kSingle;
  if (text == "pareto") return search::Mode::kPareto;
  throw std::invalid_argument("mode must be single|pareto, got '" + text +
                              "'");
}

Json search_cell_json(const search::EvaluatedCell& cell) {
  JsonObject out;
  out["scenario"] = Json(cell.scenario);
  JsonArray params;
  for (const double v : cell.params) params.push_back(Json(v));
  out["params"] = Json(std::move(params));
  out["objective"] = Json(cell.objective);
  out["recoverability"] = Json(cell.recoverability);
  return Json(std::move(out));
}

Json op_search(const Registry& registry, const Json& request,
               const CacheHooks& hooks) {
  const WorkloadSpec spec = parse_workload(request);
  const std::vector<core::Scenario> scenarios =
      parse_scenarios(request, "search");
  const std::vector<std::vector<double>> points =
      parse_points(request, spec, "search");
  if (points.size() * scenarios.size() > 10000)
    throw std::invalid_argument("search space too large (> 10000 points)");

  search::SearchSpace space;
  space.scenarios = scenarios;
  space.points = points;

  search::SearchOptions sopt;
  sopt.seed = spec.seed;
  sopt.trials = spec.trials;
  sopt.budget_units = request.number_or("budget", 0.0);
  sopt.budget_fraction = request.number_or("budget_fraction", 0.10);
  sopt.method = parse_method(request.string_or("method", "auto"));
  sopt.mode = parse_mode(request.string_or("mode", "single"));
  const std::int64_t batch = request.int_or("batch", 4);
  const std::int64_t init = request.int_or("init", 0);
  if (batch < 1) throw std::invalid_argument("batch must be >= 1");
  if (init < 0) throw std::invalid_argument("init must be >= 0");
  sopt.batch = static_cast<std::size_t>(batch);
  sopt.init = static_cast<std::size_t>(init);
  const std::int64_t top_k = request.int_or("top_k", 0);
  if (top_k < 0) throw std::invalid_argument("top_k must be >= 0");
  const std::int64_t threads = request.int_or("threads", 0);
  if (threads < 0) throw std::invalid_argument("threads must be >= 0");
  sopt.threads = static_cast<unsigned>(threads);

  require_kernels(registry.arch(), spec.app, scenarios);
  const PreparedRun run = prepare_run(registry, spec, scenarios);
  sopt.fti = run.arch->fti();
  for (const auto& point : points)
    (void)build_app(spec.app, {}, run.arch->fti(), point[0], point[1], 1);

  // Warm start: probe the result cache for every cell's single-cell dse
  // entry. Hits become free surrogate observations (they carry the exact
  // objective a full-fidelity evaluation would recompute).
  std::vector<search::WarmObservation> warm;
  if (hooks.get) {
    for (std::size_t flat = 0; flat < space.size(); ++flat) {
      const auto hit = hooks.get(cell_dse_key(spec, scenarios, points, flat));
      if (!hit) continue;
      const Json value = Json::parse(*hit);
      const Json* cached_points = value.find("points");
      if (!cached_points || cached_points->as_array().empty()) continue;
      const Json* ensemble = cached_points->as_array()[0].find("ensemble");
      if (!ensemble) continue;
      warm.push_back(search::WarmObservation{
          flat, ensemble->number_or("mean", 0.0)});
    }
  }

  const std::string app_name = spec.app;
  const ft::FtiConfig fti = run.arch->fti();
  const int timesteps = spec.timesteps;
  const auto make_app = [&app_name, &fti, timesteps](
                            const core::Scenario& scenario,
                            const std::vector<double>& params) {
    return build_app(app_name, scenario.plan, fti, params[0], params[1],
                     timesteps);
  };
  // Engine seed: offset per cell inside run_dse_cells exactly as the
  // exhaustive sweep would; write-back stores each full-fidelity cell as
  // its single-cell dse response so later searches (and plain dse
  // clients) hit it byte-for-byte.
  core::EngineOptions engine = run.options;
  const auto evaluate =
      [&](const std::vector<core::DseCell>& cells) -> std::vector<double> {
    const std::vector<core::DsePoint> priced =
        core::run_dse_cells(space.scenarios, space.points, cells, make_app,
                            *run.arch, engine, spec.trials, sopt.threads);
    std::vector<double> values(priced.size());
    for (std::size_t i = 0; i < priced.size(); ++i) {
      values[i] = priced[i].ensemble.total.mean;
      const std::size_t cell_trials =
          cells[i].trials != 0 ? cells[i].trials : spec.trials;
      if (hooks.put && cell_trials == spec.trials) {
        const std::vector<core::DsePoint> one{priced[i]};
        hooks.put(cell_dse_key(spec, scenarios, points, cells[i].flat),
                  std::make_shared<const std::string>(
                      dse_response(one, 1, spec.trials).dump()));
      }
    }
    return values;
  };

  const search::SearchResult result =
      search::run_search(space, sopt, evaluate, warm);

  JsonObject out;
  out["best"] = search_cell_json(result.best);
  if (sopt.mode == search::Mode::kPareto) {
    JsonArray front;
    for (const search::EvaluatedCell& p : result.pareto)
      front.push_back(search_cell_json(p));
    out["pareto"] = Json(std::move(front));
  }
  if (top_k > 0) {
    // Best-k distinct cells among everything priced at full fidelity.
    std::vector<const search::EvaluatedCell*> full;
    for (const search::EvaluatedCell& h : result.history)
      if (h.trials == spec.trials) full.push_back(&h);
    std::sort(full.begin(), full.end(),
              [](const search::EvaluatedCell* a,
                 const search::EvaluatedCell* b) {
                if (a->objective != b->objective)
                  return a->objective < b->objective;
                return a->flat < b->flat;
              });
    JsonArray top;
    std::size_t taken = 0;
    std::size_t last_flat = space.size();
    for (const search::EvaluatedCell* h : full) {
      if (taken == static_cast<std::size_t>(top_k)) break;
      if (h->flat == last_flat) continue;
      top.push_back(search_cell_json(*h));
      last_flat = h->flat;
      ++taken;
    }
    out["top"] = Json(std::move(top));
  }
  out["cells"] = Json(space.size());
  out["evaluations"] = Json(result.evaluations);
  out["warm_hits"] = Json(result.warm_hits);
  out["budget_units"] = Json(result.budget_units);
  out["trial_units"] = Json(result.trial_units);
  out["method"] = Json(search::to_string(result.method_used));
  out["mode"] = Json(search::to_string(sopt.mode));
  return Json(std::move(out));
}

}  // namespace

Json handle_request(const Registry& registry, const Json& request,
                    const CacheHooks& hooks) {
  const std::string op = request.string_or("op", "");
  if (op == "predict") return op_predict(registry, request);
  if (op == "simulate") return op_simulate(registry, request);
  if (op == "inject") return op_inject(registry, request);
  if (op == "dse") return op_dse(registry, request);
  if (op == "search") return op_search(registry, request, hooks);
  throw std::invalid_argument(
      "unknown op '" + op + "' (expected predict|simulate|inject|dse|search)");
}

std::string canonical_key(const Json& request) {
  if (!request.is_object())
    throw std::invalid_argument("request must be a JSON object");
  Json stripped = request;
  stripped.as_object().erase("deadline_ms");
  stripped.as_object().erase("id");
  // Every op is bit-identical at any thread count, so requests differing
  // only in `threads` share a cache entry.
  stripped.as_object().erase("threads");
  return stripped.dump();
}

}  // namespace ftbesst::svc
