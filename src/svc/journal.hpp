#pragma once
// Bounded journal of recently cached responses, for warm-cache handoff.
//
// The router records every cacheable success it proxies as
// {canonical key -> result bytes}. When a worker is respawned (crash
// recovery or rolling restart), the journal entries whose keys hash to
// that worker's ring range are replayed through the tier-internal `warm`
// op, so the new shard answers its recent working set from cache instead
// of recomputing it. Bounded by entry count and total bytes (MRU keeps
// the hot set, eviction drops the cold tail) — this is a re-warm
// accelerator, not a durability log.

#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace ftbesst::svc {

class WarmJournal {
 public:
  WarmJournal(std::size_t max_entries, std::size_t max_bytes);

  /// Record (or refresh) one cached response. Thread-safe. A key already
  /// journaled moves to the MRU position and adopts the new bytes.
  void record(std::string_view key, std::string_view result_bytes);

  struct Entry {
    std::string key;
    std::string result;
  };
  /// MRU-first copy of the journal (taken under the lock; replay happens
  /// off-lock).
  [[nodiscard]] std::vector<Entry> snapshot() const;

  [[nodiscard]] std::size_t entries() const;
  [[nodiscard]] std::size_t bytes() const;
  [[nodiscard]] std::uint64_t evictions() const;

 private:
  void evict_over_budget();

  const std::size_t max_entries_;
  const std::size_t max_bytes_;
  mutable std::mutex mutex_;
  std::list<Entry> mru_;  ///< front = most recent
  /// Views into mru_ entries' keys — std::list iterators and the strings
  /// they point at are stable across splice/erase of *other* nodes.
  std::unordered_map<std::string_view, std::list<Entry>::iterator> index_;
  std::size_t bytes_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace ftbesst::svc
