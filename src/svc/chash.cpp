#include "svc/chash.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace ftbesst::svc {

std::uint64_t ring_hash(std::string_view bytes) noexcept {
  std::uint64_t h = 1469598103934665603ull;  // FNV offset basis
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;  // FNV prime
  }
  // splitmix64 finalizer
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ull;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebull;
  h ^= h >> 31;
  return h;
}

HashRing::HashRing(std::size_t workers, std::size_t vnodes)
    : workers_(workers), vnodes_(vnodes) {
  if (workers == 0) throw std::invalid_argument("HashRing needs >= 1 worker");
  if (vnodes == 0) throw std::invalid_argument("HashRing needs >= 1 vnode");
  points_.reserve(workers * vnodes);
  std::string label;
  for (std::size_t w = 0; w < workers; ++w) {
    for (std::size_t r = 0; r < vnodes; ++r) {
      label = "worker-" + std::to_string(w) + "#" + std::to_string(r);
      points_.push_back({ring_hash(label), static_cast<std::uint32_t>(w)});
    }
  }
  std::sort(points_.begin(), points_.end(),
            [](const Point& a, const Point& b) {
              // Worker index breaks hash ties so the ring is identical no
              // matter the insertion order.
              return a.hash != b.hash ? a.hash < b.hash : a.worker < b.worker;
            });
}

std::size_t HashRing::lookup(std::string_view key) const noexcept {
  const std::uint64_t h = ring_hash(key);
  const auto it = std::upper_bound(
      points_.begin(), points_.end(), h,
      [](std::uint64_t value, const Point& p) { return value < p.hash; });
  return it == points_.end() ? points_.front().worker : it->worker;
}

}  // namespace ftbesst::svc
