#pragma once
// Blocking client for the prediction service, used by `ftbesst client`,
// the service tests, and bench_ext_svc. One Client owns one connection and
// issues synchronous request/response calls; it is not thread-safe (use
// one Client per thread — the server multiplexes them).

#include <cstdint>
#include <string>
#include <string_view>

#include "svc/json.hpp"
#include "svc/wire.hpp"

namespace ftbesst::svc {

/// One decoded service reply.
struct ClientResponse {
  bool ok = false;
  bool cached = false;      ///< envelope flag: payload came from the cache
  std::string code;         ///< machine-readable error code when !ok
  std::string error;        ///< human-readable error when !ok
  Json result;              ///< parsed result when ok
  std::string result_bytes; ///< exact result JSON bytes (byte-identity tests)
  std::string raw;          ///< the full reply payload as received
};

class Client {
 public:
  /// Connect to a Unix-domain socket. timeout_seconds > 0 arms
  /// SO_RCVTIMEO/SO_SNDTIMEO so a wedged server surfaces as
  /// std::system_error(EAGAIN) instead of a hang.
  [[nodiscard]] static Client connect_unix(const std::string& path,
                                           double timeout_seconds = 0.0);
  /// Connect to 127.0.0.1:port.
  [[nodiscard]] static Client connect_tcp(int port,
                                          double timeout_seconds = 0.0);

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();

  /// Send one request and block for its reply. Throws std::system_error on
  /// transport errors and std::runtime_error if the server closes the
  /// connection without answering.
  ClientResponse call(const Json& request,
                      std::uint32_t max_frame_bytes = kMaxFrameBytes);
  /// Same, but sends pre-serialized bytes (for malformed-input tests).
  ClientResponse call_raw(std::string_view payload,
                          std::uint32_t max_frame_bytes = kMaxFrameBytes);
  /// Raw round trip: send pre-serialized bytes, return the reply payload
  /// verbatim without decoding the envelope. This is the router's proxy
  /// primitive — the reply bytes are forwarded to the client untouched, so
  /// tier responses stay byte-identical to single-process ones.
  std::string exchange(std::string_view payload,
                       std::uint32_t max_frame_bytes = kMaxFrameBytes);

  [[nodiscard]] int fd() const noexcept { return fd_; }

 private:
  explicit Client(int fd) : fd_(fd) {}
  int fd_ = -1;
};

}  // namespace ftbesst::svc
