#include "svc/wire.hpp"

#include <stdexcept>

#include "svc/json.hpp"
#include "util/io.hpp"

namespace ftbesst::svc {

std::uint32_t decode_length(const unsigned char header[4]) {
  return (static_cast<std::uint32_t>(header[0]) << 24) |
         (static_cast<std::uint32_t>(header[1]) << 16) |
         (static_cast<std::uint32_t>(header[2]) << 8) |
         static_cast<std::uint32_t>(header[3]);
}

void encode_length(std::uint32_t n, unsigned char header[4]) {
  header[0] = static_cast<unsigned char>(n >> 24);
  header[1] = static_cast<unsigned char>(n >> 16);
  header[2] = static_cast<unsigned char>(n >> 8);
  header[3] = static_cast<unsigned char>(n);
}

void write_frame(int fd, std::string_view payload, std::uint32_t max_bytes) {
  if (payload.size() > max_bytes)
    throw std::length_error("svc frame too large: " +
                            std::to_string(payload.size()) + " bytes");
  // One buffer, one write: interleaved header/payload writes from two
  // threads sharing a connection would corrupt framing, and callers
  // serialize whole-frame writes with a mutex.
  std::string frame;
  frame.reserve(4 + payload.size());
  unsigned char header[4];
  encode_length(static_cast<std::uint32_t>(payload.size()), header);
  frame.append(reinterpret_cast<const char*>(header), 4);
  frame.append(payload);
  util::write_full(fd, frame.data(), frame.size());
}

std::optional<std::string> read_frame(int fd, std::uint32_t max_bytes) {
  unsigned char header[4];
  const std::size_t got = util::read_full(fd, header, 4);
  if (got == 0) return std::nullopt;  // clean EOF between frames
  if (got < 4) throw std::runtime_error("svc: EOF inside frame header");
  const std::uint32_t n = decode_length(header);
  if (n > max_bytes)
    throw std::invalid_argument("svc: frame length " + std::to_string(n) +
                                " exceeds limit " + std::to_string(max_bytes));
  std::string payload(n, '\0');
  if (util::read_full(fd, payload.data(), n) != n)
    throw std::runtime_error("svc: EOF inside frame payload");
  return payload;
}

std::string error_payload(std::string_view code, std::string_view message) {
  JsonObject obj;
  obj.emplace("ok", Json(false));
  obj.emplace("code", Json(std::string(code)));
  obj.emplace("error", Json(std::string(message)));
  return Json(std::move(obj)).dump();
}

std::string ok_payload(bool cached, std::string_view result_json) {
  std::string out;
  out.reserve(result_json.size() + 40);
  out += cached ? "{\"cached\":true,\"ok\":true,\"result\":"
                : "{\"cached\":false,\"ok\":true,\"result\":";
  out += result_json;
  out += '}';
  return out;
}

std::optional<std::string_view> extract_result_bytes(std::string_view payload) {
  constexpr std::string_view kCold = "{\"cached\":false,\"ok\":true,\"result\":";
  constexpr std::string_view kHot = "{\"cached\":true,\"ok\":true,\"result\":";
  std::size_t prefix = 0;
  if (payload.starts_with(kCold))
    prefix = kCold.size();
  else if (payload.starts_with(kHot))
    prefix = kHot.size();
  else
    return std::nullopt;
  if (payload.size() <= prefix || payload.back() != '}') return std::nullopt;
  return payload.substr(prefix, payload.size() - prefix - 1);
}

std::string_view error_code(std::string_view payload) {
  constexpr std::string_view kPrefix = "{\"code\":\"";
  if (!payload.starts_with(kPrefix)) return {};
  const std::size_t end = payload.find('"', kPrefix.size());
  if (end == std::string_view::npos) return {};
  return payload.substr(kPrefix.size(), end - kPrefix.size());
}

bool extract_frame(std::string& buffer, std::string& out,
                   std::uint32_t max_bytes) {
  if (buffer.size() < 4) return false;
  const std::uint32_t n =
      decode_length(reinterpret_cast<const unsigned char*>(buffer.data()));
  if (n > max_bytes)
    throw std::invalid_argument("svc: frame length " + std::to_string(n) +
                                " exceeds limit " + std::to_string(max_bytes));
  if (buffer.size() < 4 + static_cast<std::size_t>(n)) return false;
  out.assign(buffer, 4, n);
  buffer.erase(0, 4 + static_cast<std::size_t>(n));
  return true;
}

}  // namespace ftbesst::svc
