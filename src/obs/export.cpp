#include <filesystem>
#include <fstream>
#include <system_error>

#include "obs/obs.hpp"

namespace ftbesst::obs {

void touch() {
  detail::metrics_touch();
  detail::trace_touch();
}

bool write_output_dir(const std::string& dir) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) return false;

  {
    std::ofstream os(fs::path(dir) / "metrics.json");
    if (!os) return false;
    scrape().write_json(os);
  }
  {
    std::ofstream os(fs::path(dir) / "trace.json");
    if (!os) return false;
    write_chrome_trace(os);
  }
  {
    std::ofstream os(fs::path(dir) / "summary.txt");
    if (!os) return false;
    write_flame_summary(os);
  }
  return true;
}

}  // namespace ftbesst::obs
