#include "obs/metrics.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <cstdlib>
#include <mutex>
#include <ostream>

namespace ftbesst::obs {

namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

namespace {

// Capacity limits.  Generous for a simulator (the built-in instrumentation
// uses a few dozen metrics); registration past a limit yields an inert
// handle rather than an abort.
constexpr std::uint32_t kMaxCounters = 256;
constexpr std::uint32_t kMaxGauges = 64;
constexpr std::uint32_t kMaxHistograms = 64;
constexpr std::uint32_t kMaxBucketSlots = 2048;  // shared bucket arena
constexpr std::uint32_t kMaxBoundsPerHist = 128;

struct Shard {
  std::array<std::atomic<std::uint64_t>, kMaxCounters> counters{};
  std::array<std::atomic<std::uint64_t>, kMaxBucketSlots> buckets{};
  // Per-histogram running sum, stored as bit-cast doubles.  The shard is
  // thread-private so the CAS below never loops in practice.
  std::array<std::atomic<std::uint64_t>, kMaxHistograms> sums{};

  void add_sum(std::uint32_t hist_id, double v) noexcept {
    auto& cell = sums[hist_id];
    std::uint64_t cur = cell.load(std::memory_order_relaxed);
    for (;;) {
      const double next = std::bit_cast<double>(cur) + v;
      if (cell.compare_exchange_weak(cur, std::bit_cast<std::uint64_t>(next),
                                     std::memory_order_relaxed))
        return;
    }
  }
};

// Immutable-after-registration histogram metadata, read lock-free on the
// hot path.  A Histogram handle can only exist after its registration
// completed, and handing the handle to another thread establishes the
// happens-before needed to see these writes.
struct HistMeta {
  std::uint32_t slot_offset = 0;
  std::uint32_t n_bounds = 0;
  std::array<double, kMaxBoundsPerHist> bounds{};
};

struct HistDef {
  std::string name;
  std::vector<double> bounds;
  std::uint32_t slot_offset = 0;
};

class Registry {
 public:
  std::uint32_t intern_counter(std::string_view name) {
    std::lock_guard<std::mutex> lk(mu_);
    for (std::uint32_t i = 0; i < counter_names_.size(); ++i)
      if (counter_names_[i] == name) return i;
    if (counter_names_.size() >= kMaxCounters) return detail::kInvalidId;
    counter_names_.emplace_back(name);
    return static_cast<std::uint32_t>(counter_names_.size() - 1);
  }

  std::uint32_t intern_gauge(std::string_view name) {
    std::lock_guard<std::mutex> lk(mu_);
    for (std::uint32_t i = 0; i < gauge_names_.size(); ++i)
      if (gauge_names_[i] == name) return i;
    if (gauge_names_.size() >= kMaxGauges) return detail::kInvalidId;
    gauge_names_.emplace_back(name);
    return static_cast<std::uint32_t>(gauge_names_.size() - 1);
  }

  std::uint32_t intern_histogram(std::string_view name,
                                 std::vector<double> bounds) {
    if (bounds.empty() || bounds.size() > kMaxBoundsPerHist)
      return detail::kInvalidId;
    if (!std::is_sorted(bounds.begin(), bounds.end()) ||
        std::adjacent_find(bounds.begin(), bounds.end()) != bounds.end())
      return detail::kInvalidId;  // must be strictly increasing
    std::lock_guard<std::mutex> lk(mu_);
    for (std::uint32_t i = 0; i < hists_.size(); ++i)
      if (hists_[i].name == name) return i;  // first bounds win
    const auto n_slots = static_cast<std::uint32_t>(bounds.size() + 1);
    if (hists_.size() >= kMaxHistograms ||
        next_slot_ + n_slots > kMaxBucketSlots)
      return detail::kInvalidId;
    const auto id = static_cast<std::uint32_t>(hists_.size());
    HistMeta& meta = hist_meta_[id];
    meta.slot_offset = next_slot_;
    meta.n_bounds = static_cast<std::uint32_t>(bounds.size());
    std::copy(bounds.begin(), bounds.end(), meta.bounds.begin());
    hists_.push_back(HistDef{std::string(name), std::move(bounds), next_slot_});
    next_slot_ += n_slots;
    return id;
  }

  void attach(Shard* s) {
    std::lock_guard<std::mutex> lk(mu_);
    shards_.push_back(s);
  }

  void detach(Shard* s) {
    std::lock_guard<std::mutex> lk(mu_);
    shards_.erase(std::remove(shards_.begin(), shards_.end(), s),
                  shards_.end());
    fold_into_retired(*s);
  }

  void gauge_store(std::uint32_t id, double v) noexcept {
    if (id >= kMaxGauges) return;
    gauge_bits_[id].store(std::bit_cast<std::uint64_t>(v),
                          std::memory_order_relaxed);
  }

  void gauge_raise(std::uint32_t id, double v) noexcept {
    if (id >= kMaxGauges) return;
    auto& cell = gauge_bits_[id];
    std::uint64_t cur = cell.load(std::memory_order_relaxed);
    while (v > std::bit_cast<double>(cur)) {
      if (cell.compare_exchange_weak(cur, std::bit_cast<std::uint64_t>(v),
                                     std::memory_order_relaxed))
        return;
    }
  }

  const HistMeta* hist_meta(std::uint32_t id) const noexcept {
    return id < kMaxHistograms ? &hist_meta_[id] : nullptr;
  }

  MetricsSnapshot scrape() {
    std::lock_guard<std::mutex> lk(mu_);
    MetricsSnapshot snap;
    snap.counters.reserve(counter_names_.size());
    for (std::uint32_t i = 0; i < counter_names_.size(); ++i) {
      std::uint64_t total = retired_.counters[i].load(std::memory_order_relaxed);
      for (const Shard* s : shards_)
        total += s->counters[i].load(std::memory_order_relaxed);
      snap.counters.emplace_back(counter_names_[i], total);
    }
    snap.gauges.reserve(gauge_names_.size());
    for (std::uint32_t i = 0; i < gauge_names_.size(); ++i) {
      snap.gauges.emplace_back(
          gauge_names_[i],
          std::bit_cast<double>(gauge_bits_[i].load(std::memory_order_relaxed)));
    }
    snap.histograms.reserve(hists_.size());
    for (std::uint32_t h = 0; h < hists_.size(); ++h) {
      const HistDef& def = hists_[h];
      HistogramSnapshot hs;
      hs.name = def.name;
      hs.bounds = def.bounds;
      hs.buckets.assign(def.bounds.size() + 1, 0);
      for (std::size_t b = 0; b < hs.buckets.size(); ++b) {
        const std::uint32_t slot = def.slot_offset + static_cast<std::uint32_t>(b);
        std::uint64_t total = retired_.buckets[slot].load(std::memory_order_relaxed);
        for (const Shard* s : shards_)
          total += s->buckets[slot].load(std::memory_order_relaxed);
        hs.buckets[b] = total;
        hs.count += total;
      }
      double sum =
          std::bit_cast<double>(retired_.sums[h].load(std::memory_order_relaxed));
      for (const Shard* s : shards_)
        sum += std::bit_cast<double>(s->sums[h].load(std::memory_order_relaxed));
      hs.sum = sum;
      snap.histograms.push_back(std::move(hs));
    }
    return snap;
  }

  void reset() {
    std::lock_guard<std::mutex> lk(mu_);
    zero_shard(retired_);
    for (Shard* s : shards_) zero_shard(*s);
    for (auto& g : gauge_bits_) g.store(0, std::memory_order_relaxed);
  }

 private:
  static void zero_shard(Shard& s) {
    for (auto& c : s.counters) c.store(0, std::memory_order_relaxed);
    for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
    for (auto& m : s.sums) m.store(0, std::memory_order_relaxed);
  }

  void fold_into_retired(Shard& s) {
    for (std::uint32_t i = 0; i < kMaxCounters; ++i)
      retired_.counters[i].fetch_add(
          s.counters[i].load(std::memory_order_relaxed),
          std::memory_order_relaxed);
    for (std::uint32_t i = 0; i < kMaxBucketSlots; ++i)
      retired_.buckets[i].fetch_add(
          s.buckets[i].load(std::memory_order_relaxed),
          std::memory_order_relaxed);
    for (std::uint32_t i = 0; i < kMaxHistograms; ++i)
      retired_.add_sum(i, std::bit_cast<double>(
                              s.sums[i].load(std::memory_order_relaxed)));
  }

  std::mutex mu_;
  std::vector<std::string> counter_names_;
  std::vector<std::string> gauge_names_;
  std::vector<HistDef> hists_;
  std::uint32_t next_slot_ = 0;
  std::vector<Shard*> shards_;
  Shard retired_;
  std::array<std::atomic<std::uint64_t>, kMaxGauges> gauge_bits_{};
  std::array<HistMeta, kMaxHistograms> hist_meta_{};
};

Registry& registry() {
  static Registry r;
  return r;
}

// Per-thread shard, attached on first use and folded into the retired shard
// at thread exit.  The registry is a function-local static constructed no
// later than the first attach, so it outlives every shard — provided
// long-lived worker threads (the shared TaskPool) force registry
// construction before the pool static is created; obs::detail::metrics_touch
// exists for exactly that.
struct ShardOwner {
  Shard shard;
  ShardOwner() { registry().attach(&shard); }
  ~ShardOwner() { registry().detach(&shard); }
};

Shard& local_shard() {
  thread_local ShardOwner owner;
  return owner.shard;
}

const bool g_env_init = [] {
  if (const char* e = std::getenv("FTBESST_OBS"); e && e[0] == '1') enable(true);
  return true;
}();

void json_escape(std::ostream& os, std::string_view s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default: os << c;
    }
  }
  os << '"';
}

}  // namespace

namespace detail {

void counter_add(std::uint32_t id, std::uint64_t delta) noexcept {
  if (id >= kMaxCounters) return;
  local_shard().counters[id].fetch_add(delta, std::memory_order_relaxed);
}

void gauge_set(std::uint32_t id, double value) noexcept {
  registry().gauge_store(id, value);
}

void gauge_max(std::uint32_t id, double value) noexcept {
  registry().gauge_raise(id, value);
}

void hist_observe(std::uint32_t id, double value) noexcept {
  const HistMeta* meta = registry().hist_meta(id);
  if (!meta || meta->n_bounds == 0) return;
  const double* first = meta->bounds.data();
  const double* last = first + meta->n_bounds;
  // Bucket i holds values <= bounds[i].  NaN has no rank (lower_bound's
  // comparisons are all false, which would drop it into bucket 0), so route
  // it to the overflow bucket explicitly and keep it out of the sum —
  // one poisoned observation must not erase the sum of all the others.
  const bool unrankable = std::isnan(value);
  const auto idx = unrankable
                       ? meta->n_bounds
                       : static_cast<std::uint32_t>(
                             std::lower_bound(first, last, value) - first);
  Shard& shard = local_shard();
  shard.buckets[meta->slot_offset + idx].fetch_add(1,
                                                   std::memory_order_relaxed);
  if (!unrankable) shard.add_sum(id, value);
}

void metrics_touch() { registry(); }

}  // namespace detail

void enable(bool on) {
  if constexpr (!compiled()) return;
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

Counter counter(std::string_view name) {
  return Counter(registry().intern_counter(name));
}

Gauge gauge(std::string_view name) {
  return Gauge(registry().intern_gauge(name));
}

Histogram histogram(std::string_view name, std::vector<double> bounds) {
  return Histogram(registry().intern_histogram(name, std::move(bounds)));
}

double HistogramSnapshot::quantile(double q) const {
  if (count == 0 || buckets.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const std::uint64_t prev = cum;
    cum += buckets[i];
    if (static_cast<double>(cum) >= target && buckets[i] > 0) {
      if (i >= bounds.size()) return bounds.back();  // overflow: clamp
      const double lo = (i == 0) ? 0.0 : bounds[i - 1];
      const double hi = bounds[i];
      const double frac =
          (target - static_cast<double>(prev)) / static_cast<double>(buckets[i]);
      return lo + std::clamp(frac, 0.0, 1.0) * (hi - lo);
    }
  }
  return bounds.back();
}

bool MetricsSnapshot::has_counter(std::string_view name) const {
  for (const auto& [n, v] : counters)
    if (n == name) return true;
  return false;
}

std::uint64_t MetricsSnapshot::counter(std::string_view name) const {
  for (const auto& [n, v] : counters)
    if (n == name) return v;
  return 0;
}

double MetricsSnapshot::gauge(std::string_view name) const {
  for (const auto& [n, v] : gauges)
    if (n == name) return v;
  return 0.0;
}

const HistogramSnapshot* MetricsSnapshot::histogram(
    std::string_view name) const {
  for (const auto& h : histograms)
    if (h.name == name) return &h;
  return nullptr;
}

void MetricsSnapshot::write_json(std::ostream& os) const {
  os << "{\n  \"counters\": {";
  for (std::size_t i = 0; i < counters.size(); ++i) {
    os << (i ? ",\n    " : "\n    ");
    json_escape(os, counters[i].first);
    os << ": " << counters[i].second;
  }
  os << (counters.empty() ? "},\n" : "\n  },\n");
  os << "  \"gauges\": {";
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    os << (i ? ",\n    " : "\n    ");
    json_escape(os, gauges[i].first);
    os << ": " << gauges[i].second;
  }
  os << (gauges.empty() ? "},\n" : "\n  },\n");
  os << "  \"histograms\": {";
  for (std::size_t h = 0; h < histograms.size(); ++h) {
    const HistogramSnapshot& hs = histograms[h];
    os << (h ? ",\n    " : "\n    ");
    json_escape(os, hs.name);
    os << ": {\"count\": " << hs.count << ", \"sum\": " << hs.sum
       << ", \"buckets\": [";
    for (std::size_t b = 0; b < hs.buckets.size(); ++b) {
      if (b) os << ", ";
      os << "{\"le\": ";
      if (b < hs.bounds.size())
        os << hs.bounds[b];
      else
        os << "null";
      os << ", \"n\": " << hs.buckets[b] << '}';
    }
    os << "]}";
  }
  os << (histograms.empty() ? "}\n" : "\n  }\n");
  os << "}\n";
}

MetricsSnapshot scrape() { return registry().scrape(); }

void reset() { registry().reset(); }

}  // namespace ftbesst::obs
