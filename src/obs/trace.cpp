#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <mutex>
#include <ostream>
#include <string>

#include "obs/clock.hpp"

namespace ftbesst::obs {

namespace {

constexpr std::size_t kRingCapacity = 8192;  // records per thread

struct Ring {
  std::mutex mu;  // uncontended except while an export walks the ring
  std::vector<SpanRecord> buf;
  std::size_t next = 0;      // write cursor
  std::uint64_t written = 0;  // lifetime record count (dropped = written - kept)
  std::uint32_t tid = 0;
  std::uint32_t depth = 0;  // current nesting depth, only touched by owner

  void push(const SpanRecord& r) {
    std::lock_guard<std::mutex> lk(mu);
    if (buf.size() < kRingCapacity) {
      buf.push_back(r);
    } else {
      buf[next] = r;
      next = (next + 1) % kRingCapacity;
    }
    ++written;
  }
};

class TraceRegistry {
 public:
  std::uint32_t attach(Ring* r) {
    std::lock_guard<std::mutex> lk(mu_);
    rings_.push_back(r);
    return next_tid_++;
  }

  void detach(Ring* r) {
    std::lock_guard<std::mutex> lk(mu_);
    rings_.erase(std::remove(rings_.begin(), rings_.end(), r), rings_.end());
    std::lock_guard<std::mutex> rlk(r->mu);
    append_ordered(*r, retired_);
    retired_dropped_ += r->written - r->buf.size();
  }

  TraceSnapshot collect() {
    std::lock_guard<std::mutex> lk(mu_);
    TraceSnapshot snap;
    snap.spans = retired_;
    snap.dropped = retired_dropped_;
    for (Ring* r : rings_) {
      std::lock_guard<std::mutex> rlk(r->mu);
      append_ordered(*r, snap.spans);
      snap.dropped += r->written - r->buf.size();
    }
    return snap;
  }

  void reset() {
    std::lock_guard<std::mutex> lk(mu_);
    retired_.clear();
    retired_dropped_ = 0;
    for (Ring* r : rings_) {
      std::lock_guard<std::mutex> rlk(r->mu);
      r->buf.clear();
      r->next = 0;
      r->written = 0;
    }
  }

 private:
  // Copy a ring's records oldest-first (the ring is a circular buffer once
  // full, so start at the write cursor).
  static void append_ordered(const Ring& r, std::vector<SpanRecord>& out) {
    const std::size_t n = r.buf.size();
    for (std::size_t i = 0; i < n; ++i)
      out.push_back(r.buf[(r.next + i) % n]);
  }

  std::mutex mu_;
  std::vector<Ring*> rings_;
  std::vector<SpanRecord> retired_;
  std::uint64_t retired_dropped_ = 0;
  std::uint32_t next_tid_ = 0;
};

TraceRegistry& trace_registry() {
  static TraceRegistry r;
  return r;
}

struct RingOwner {
  Ring ring;
  RingOwner() { ring.tid = trace_registry().attach(&ring); }
  ~RingOwner() { trace_registry().detach(&ring); }
};

Ring& local_ring() {
  thread_local RingOwner owner;
  return owner.ring;
}

}  // namespace

void Span::begin(const char* name) noexcept {
  name_ = name;
  start_ = now_ns();
  ++local_ring().depth;
}

namespace detail {

void span_end(const char* name, std::uint64_t start_ns) noexcept {
  const std::uint64_t end_ns = now_ns();
  Ring& ring = local_ring();
  if (ring.depth > 0) --ring.depth;
  SpanRecord rec;
  rec.name = name;
  rec.start_ns = start_ns;
  rec.dur_ns = end_ns > start_ns ? end_ns - start_ns : 0;
  rec.tid = ring.tid;
  rec.depth = ring.depth;
  ring.push(rec);
}

void trace_touch() { trace_registry(); }

}  // namespace detail

TraceSnapshot collect_spans() { return trace_registry().collect(); }

void trace_reset() { trace_registry().reset(); }

namespace {

// Span names are string literals chosen by instrumentation, but the export
// must stay valid JSON no matter what a caller picks.
void write_escaped(std::ostream& os, const char* s) {
  for (; *s; ++s) {
    const unsigned char c = static_cast<unsigned char>(*s);
    if (c == '"' || c == '\\') {
      os << '\\' << *s;
    } else if (c < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      os << buf;
    } else {
      os << *s;
    }
  }
}

}  // namespace

void write_chrome_trace(std::ostream& os) {
  const TraceSnapshot snap = collect_spans();
  os << "{\"traceEvents\": [";
  bool first = true;
  for (const SpanRecord& r : snap.spans) {
    if (!r.name) continue;
    os << (first ? "\n" : ",\n");
    first = false;
    os << "  {\"name\": \"";
    write_escaped(os, r.name);
    os << "\", \"cat\": \"ftbesst\", \"ph\": \"X\", \"ts\": "
       << static_cast<double>(r.start_ns) / 1000.0
       << ", \"dur\": " << static_cast<double>(r.dur_ns) / 1000.0
       << ", \"pid\": 1, \"tid\": " << r.tid << "}";
  }
  os << (first ? "]" : "\n]") << ", \"displayTimeUnit\": \"ms\"}\n";
}

void write_flame_summary(std::ostream& os) {
  const TraceSnapshot snap = collect_spans();
  struct Agg {
    std::uint64_t count = 0;
    std::uint64_t total_ns = 0;
    std::uint32_t min_depth = 0xffffffffu;
  };
  std::map<std::string, Agg> by_name;
  for (const SpanRecord& r : snap.spans) {
    if (!r.name) continue;
    Agg& a = by_name[r.name];
    ++a.count;
    a.total_ns += r.dur_ns;
    a.min_depth = std::min(a.min_depth, r.depth);
  }
  std::vector<std::pair<std::string, Agg>> rows(by_name.begin(), by_name.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    if (a.second.min_depth != b.second.min_depth)
      return a.second.min_depth < b.second.min_depth;
    return a.second.total_ns > b.second.total_ns;
  });
  os << "span                                      count      total_ms     mean_us\n";
  char line[160];
  for (const auto& [name, agg] : rows) {
    std::string label(static_cast<std::size_t>(agg.min_depth) * 2, ' ');
    label += name;
    const double total_ms = static_cast<double>(agg.total_ns) * 1e-6;
    const double mean_us =
        agg.count ? static_cast<double>(agg.total_ns) * 1e-3 /
                        static_cast<double>(agg.count)
                  : 0.0;
    std::snprintf(line, sizeof(line), "%-40s %7llu %13.3f %11.3f\n",
                  label.c_str(), static_cast<unsigned long long>(agg.count),
                  total_ms, mean_us);
    os << line;
  }
  if (snap.dropped)
    os << "(" << snap.dropped << " spans dropped to ring overwrite)\n";
}

}  // namespace ftbesst::obs
