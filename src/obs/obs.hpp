#pragma once
// Umbrella header for the observability layer.  Instrumented code includes
// this and uses:
//   obs::counter("pool.tasks")            — registration (cold, idempotent)
//   handle.add() / .set() / .observe()    — hot path, near-free when disabled
//   FTBESST_OBS_SPAN("core.run_des");     — RAII scoped span
//   obs::scrape() / obs::write_output_dir — export

#include <string>

#include "obs/clock.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace ftbesst::obs {

// Force construction of the metrics and trace registries.  Long-lived
// components that own worker threads (the shared TaskPool) call this in
// their constructor so the function-local-static registries are built
// first and therefore destroyed *after* the workers' thread-local shards
// detach.
void touch();

// Write metrics.json (scrape), trace.json (Chrome trace events), and
// summary.txt (flamegraph-style span aggregate) into `dir`, creating it if
// needed.  Returns false on filesystem errors.
bool write_output_dir(const std::string& dir);

}  // namespace ftbesst::obs

#define FTBESST_OBS_SPAN_CAT2(a, b) a##b
#define FTBESST_OBS_SPAN_CAT(a, b) FTBESST_OBS_SPAN_CAT2(a, b)
// Scoped span named after the enclosing region; `name` must be a string
// literal (the tracer stores only the pointer).
#define FTBESST_OBS_SPAN(name) \
  ::ftbesst::obs::Span FTBESST_OBS_SPAN_CAT(ftbesst_obs_span_, __LINE__)(name)
