#pragma once
// Monotonic clock shared by every observability consumer (metrics, spans,
// util::log timestamps).  All readings are nanoseconds since the process
// epoch, which is captured the first time anyone asks for the time; that
// keeps trace timestamps small and lets the Chrome trace viewer start at
// t ~= 0 instead of at an arbitrary steady_clock offset.

#include <cstdint>

namespace ftbesst::obs {

// Nanoseconds since the process epoch (first call wins the epoch).
std::uint64_t now_ns();

// The epoch itself, as a raw steady_clock reading in ns.  Exposed so tests
// can sanity-check monotonicity claims.
std::uint64_t epoch_steady_ns();

}  // namespace ftbesst::obs
