#pragma once
// Span tracing: RAII scoped spans recorded into per-thread ring buffers.
//
// A Span costs one enabled() check when tracing is off.  When on, entry
// stamps the monotonic clock and exit appends a fixed-size record to the
// calling thread's ring (bounded: the oldest records are overwritten, the
// drop count is kept).  Rings of exited threads are folded into a retired
// list so short-lived worker spans survive.
//
// Export formats:
//   * Chrome trace-event JSON ("traceEvents" array of ph:"X" complete
//     events, timestamps in microseconds) — loadable in Perfetto or
//     chrome://tracing.
//   * A plain-text flamegraph-style summary: one line per span name,
//     indented by nesting depth, with count / total / mean columns.
//
// Span names must be string literals (or otherwise outlive the trace
// registry); only the pointer is stored.

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <vector>

#include "obs/metrics.hpp"  // enabled(), compiled()

namespace ftbesst::obs {

namespace detail {
void span_end(const char* name, std::uint64_t start_ns) noexcept;
void trace_touch();
}  // namespace detail

class Span {
 public:
  explicit Span(const char* name) noexcept {
    if (enabled()) begin(name);
  }
  ~Span() {
    if (name_) detail::span_end(name_, start_);
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  void begin(const char* name) noexcept;
  const char* name_ = nullptr;
  std::uint64_t start_ = 0;
};

struct SpanRecord {
  const char* name = nullptr;
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
  std::uint32_t tid = 0;    // sequential per-thread id, 0 = first thread seen
  std::uint32_t depth = 0;  // nesting depth at entry, 0 = top level
};

// Snapshot of every retained span (retired threads first, then live rings),
// plus the number of records lost to ring overwrites.
struct TraceSnapshot {
  std::vector<SpanRecord> spans;
  std::uint64_t dropped = 0;
};

TraceSnapshot collect_spans();

// {"traceEvents":[...],"displayTimeUnit":"ms"} with ts/dur in microseconds.
void write_chrome_trace(std::ostream& os);

// Plain-text aggregate by span name, indented by minimum observed depth.
void write_flame_summary(std::ostream& os);

// Discard all retained spans (live rings and retired records).
void trace_reset();

}  // namespace ftbesst::obs
