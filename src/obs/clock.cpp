#include "obs/clock.hpp"

#include <chrono>

namespace ftbesst::obs {

namespace {

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

std::uint64_t epoch_steady_ns() {
  static const std::uint64_t epoch = steady_ns();
  return epoch;
}

std::uint64_t now_ns() {
  // epoch_steady_ns() is a function-local static: thread-safe init, and the
  // first caller anchors t=0.  Read the epoch *first* — sampling the clock
  // before anchoring would make the very first call return a (wrapped)
  // negative difference.
  const std::uint64_t epoch = epoch_steady_ns();
  const std::uint64_t t = steady_ns();
  return t >= epoch ? t - epoch : 0;
}

}  // namespace ftbesst::obs
