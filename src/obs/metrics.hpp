#pragma once
// Metrics registry: counters, gauges, and fixed-bucket histograms with
// thread-local sharded storage.
//
// Design
//   * Each thread that touches a counter or histogram owns a private shard
//     (an array of relaxed atomics).  Hot-path increments therefore never
//     contend; `scrape()` takes the registry mutex and sums across shards.
//     Shards of exited threads are folded into a `retired` shard so nothing
//     is lost.
//   * Handles (`Counter`, `Gauge`, `Histogram`) are trivially-copyable value
//     types holding a small id.  Registration (`obs::counter("name")`, ...)
//     is mutex-guarded and idempotent: the same name yields the same id, and
//     for histograms the first registration's bounds win.
//   * Disabled path: every handle operation starts with `if (!enabled())
//     return;` — a single relaxed atomic load and a predictable branch.
//     When the library is compiled out (`FTBESST_OBS=0`) `enabled()` is a
//     constant `false` and the calls vanish entirely.
//   * Exactness: increments use relaxed ordering; a scrape observes exact
//     totals for any work that happens-before it (e.g. everything submitted
//     to a TaskPool whose TaskGroup::wait returned, which synchronizes via
//     mutex/condvar).
//
// Metric names are plain strings; the convention used by the built-in
// instrumentation is dotted lower-case paths ("pool.tasks", "sim.events").

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#ifndef FTBESST_OBS
#define FTBESST_OBS 1
#endif

namespace ftbesst::obs {

// True when the observability layer was compiled in (FTBESST_OBS=1).
constexpr bool compiled() { return FTBESST_OBS != 0; }

namespace detail {

extern std::atomic<bool> g_enabled;

inline constexpr std::uint32_t kInvalidId = 0xffffffffu;

void counter_add(std::uint32_t id, std::uint64_t delta) noexcept;
void gauge_set(std::uint32_t id, double value) noexcept;
void gauge_max(std::uint32_t id, double value) noexcept;
void hist_observe(std::uint32_t id, double value) noexcept;
void metrics_touch();

}  // namespace detail

// Runtime switch.  No-op (stays false) when compiled() is false.
void enable(bool on);

inline bool enabled() {
  if constexpr (!compiled()) return false;
  return detail::g_enabled.load(std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Handles.  Default-constructed handles are inert (invalid id).

class Counter {
 public:
  Counter() = default;
  void add(std::uint64_t delta = 1) const noexcept {
    if (enabled()) detail::counter_add(id_, delta);
  }

 private:
  friend Counter counter(std::string_view name);
  explicit Counter(std::uint32_t id) : id_(id) {}
  std::uint32_t id_ = detail::kInvalidId;
};

class Gauge {
 public:
  Gauge() = default;
  void set(double value) const noexcept {
    if (enabled()) detail::gauge_set(id_, value);
  }
  // Raise the gauge to `value` if it is below it (load-mostly: a CAS is only
  // attempted on a new maximum, so repeated non-record observations stay
  // read-only).
  void max(double value) const noexcept {
    if (enabled()) detail::gauge_max(id_, value);
  }

 private:
  friend Gauge gauge(std::string_view name);
  explicit Gauge(std::uint32_t id) : id_(id) {}
  std::uint32_t id_ = detail::kInvalidId;
};

class Histogram {
 public:
  Histogram() = default;
  void observe(double value) const noexcept {
    if (enabled()) detail::hist_observe(id_, value);
  }

 private:
  friend Histogram histogram(std::string_view name,
                             std::vector<double> bounds);
  explicit Histogram(std::uint32_t id) : id_(id) {}
  std::uint32_t id_ = detail::kInvalidId;
};

// Registration.  Safe to call from any thread at any time; returns the same
// handle for the same name.  `bounds` are inclusive upper bucket bounds and
// must be strictly increasing; an implicit +inf overflow bucket is appended.
// Works even while disabled (registration is cold-path), so call sites can
// register once at startup and use the handles unconditionally.
Counter counter(std::string_view name);
Gauge gauge(std::string_view name);
Histogram histogram(std::string_view name, std::vector<double> bounds);

// ---------------------------------------------------------------------------
// Scraping.

struct HistogramSnapshot {
  std::string name;
  std::vector<double> bounds;          // upper bounds; buckets has one extra
  std::vector<std::uint64_t> buckets;  // size bounds.size() + 1 (overflow)
  std::uint64_t count = 0;
  double sum = 0.0;
  // Quantile estimate by linear interpolation inside the winning bucket
  // (overflow bucket clamps to its lower bound).  q in [0,1].  Returns 0
  // for an empty histogram.
  double quantile(double q) const;
};

struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramSnapshot> histograms;

  bool has_counter(std::string_view name) const;
  std::uint64_t counter(std::string_view name) const;  // 0 when absent
  double gauge(std::string_view name) const;           // 0 when absent
  const HistogramSnapshot* histogram(std::string_view name) const;

  // {"counters":{...},"gauges":{...},"histograms":{...}} — overflow bucket
  // is emitted with "le": null.
  void write_json(std::ostream& os) const;
};

// Sum all shards (live + retired) under the registry lock.
MetricsSnapshot scrape();

// Zero every shard, gauge, and histogram; names and ids survive.
void reset();

}  // namespace ftbesst::obs
